//! Co-allocated multi-replica retrieval: fetch a 500 MB replica from the
//! single best site, then co-allocated across both sites at once —
//! chunks sized by predicted bandwidth, stripes monitored mid-stream —
//! and finally with the best source killed mid-transfer, so the
//! co-allocator's failover re-plans the dead source's remaining bytes
//! onto the survivor without re-fetching a single delivered byte.
//!
//! Run with: `cargo run --release -p wanpred-core --example striped_transfer`

use std::any::Any;

use wanpred_core::gridftp::{TransferEvent, TransferManager};
use wanpred_core::prelude::*;
use wanpred_core::replica::coalloc::{
    CoallocEvent, CoallocPolicy, CoallocRequest, CoallocSource, Coallocator, CompletedCoalloc,
};
use wanpred_core::testbed::build_testbed;
use wanpred_simnet::fault::{FaultAction, FaultSchedule, TimedFault};

/// Predicted per-path bandwidths handed to the co-allocator (KB/s): what
/// a warmed broker would report for these paths under background load.
const LBL_PREDICTED_KBS: f64 = 9_000.0;
const ISI_PREDICTED_KBS: f64 = 7_000.0;

struct Demo {
    mgr: TransferManager,
    co: Coallocator,
    client: NodeId,
    sources: Vec<CoallocSource>,
    k: usize,
    completed: Option<CompletedCoalloc>,
    failed: bool,
    events: Vec<CoallocEvent>,
}

impl Demo {
    fn route_mgr_events(&mut self, ctx: &mut Ctx<'_>) {
        for ev in self.mgr.take_events() {
            if let TransferEvent::Failed {
                token,
                delivered_bytes,
                ..
            } = ev
            {
                self.co
                    .on_transfer_failed(ctx, &mut self.mgr, token, delivered_bytes);
            }
        }
        for ev in self.co.take_events() {
            if matches!(ev, CoallocEvent::Failed(_)) {
                self.failed = true;
            }
            self.events.push(ev);
        }
    }
}

impl Agent for Demo {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_secs(60), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        if self.mgr.on_timer(ctx, tag) {
            self.route_mgr_events(ctx);
            return;
        }
        if self.co.on_timer(ctx, &mut self.mgr, tag) {
            self.route_mgr_events(ctx);
            return;
        }
        let req = CoallocRequest {
            client: self.client,
            path: "/home/ftp/vazhkuda/500MB".into(),
            sources: self.sources.clone(),
            k: self.k,
            streams: 8,
            tcp_buffer: 1_000_000,
        };
        self.co
            .start(ctx, &mut self.mgr, req)
            .expect("file exists at both sites");
    }
    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
        if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
            if let Some(cc) = self.co.on_transfer_complete(ctx, &c) {
                self.completed = Some(cc);
            }
        }
        self.route_mgr_events(ctx);
    }
    fn on_flow_failed(&mut self, ctx: &mut Ctx<'_>, failed: FlowFailed) {
        self.mgr.on_flow_failed(ctx, &failed);
        self.route_mgr_events(ctx);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Run one retrieval scenario; `kill_lbl_at` injects a connection reset
/// on the LBL→ANL data link mid-transfer.
fn run(k: usize, kill_lbl_at: Option<u64>) -> Demo {
    let tb = build_testbed(MasterSeed(5), false);
    let mgr = tb.build_manager(996_642_000);
    let sources = vec![
        CoallocSource {
            node: tb.lbl,
            predicted_kbs: LBL_PREDICTED_KBS,
        },
        CoallocSource {
            node: tb.isi,
            predicted_kbs: ISI_PREDICTED_KBS,
        },
    ];
    let (client, lbl_link) = (tb.anl, tb.data_links[0]);
    let mut engine = Engine::new(tb.network);
    if let Some(at) = kill_lbl_at {
        engine.inject_faults(&FaultSchedule::from_events(vec![TimedFault {
            at: SimTime::from_secs(at),
            action: FaultAction::KillFlows(lbl_link),
        }]));
    }
    let id = engine.add_agent(Box::new(Demo {
        mgr,
        co: Coallocator::new(CoallocPolicy::wan_default()),
        client,
        sources,
        k,
        completed: None,
        failed: false,
        events: Vec::new(),
    }));
    engine.run_until(SimTime::from_secs(3_600));
    std::mem::replace(
        engine.agent_mut::<Demo>(id).expect("agent"),
        Demo {
            mgr: TransferManager::new(0),
            co: Coallocator::new(CoallocPolicy::wan_default()),
            client,
            sources: Vec::new(),
            k,
            completed: None,
            failed: false,
            events: Vec::new(),
        },
    )
}

fn report(label: &str, demo: &Demo) {
    let Some(cc) = &demo.completed else {
        println!("{label:<30} did not complete");
        return;
    };
    let secs = cc.finished.saturating_since(cc.submitted).as_secs_f64();
    println!(
        "{label:<30} {:>6.1} s   {:>8.0} KB/s   {} stripes, {} rebalances",
        secs, cc.bandwidth_kbs, cc.stripes, cc.rebalances
    );
}

fn main() {
    println!("== 500 MB retrieval, single-best vs co-allocated ==");
    let single = run(1, None);
    let coalloc = run(2, None);
    report("single best (LBL only)", &single);
    report("co-allocated (LBL+ISI)", &coalloc);
    if let (Some(a), Some(b)) = (&single.completed, &coalloc.completed) {
        println!(
            "speedup from co-allocation: {:.2}x",
            b.bandwidth_kbs / a.bandwidth_kbs
        );
    }

    println!("\n== same transfer, LBL killed 75 s in ==");
    let faulted = run(2, Some(75));
    report("co-allocated + mid-kill", &faulted);
    for ev in &faulted.events {
        match ev {
            CoallocEvent::Blacklisted {
                source,
                until,
                strikes,
            } => println!(
                "  source {source:?} blacklisted until t={:.0}s (strike {strikes})",
                until.as_secs_f64()
            ),
            CoallocEvent::Rebalanced {
                from,
                bytes_replanned,
                survivors,
                ..
            } => println!(
                "  rebalanced {:.1} MB away from {from:?} onto {survivors} survivor(s)",
                *bytes_replanned as f64 / 1e6
            ),
            _ => {}
        }
    }
    let cc = faulted.completed.as_ref().expect("failover completed it");
    cc.verify_tiling()
        .expect("covered ranges tile the file exactly — nothing fetched twice");
    println!(
        "  {:.1} MB salvaged from the dead stripe; covered ranges tile [0, {}) exactly",
        cc.bytes_salvaged as f64 / 1e6,
        cc.total_bytes
    );
}
