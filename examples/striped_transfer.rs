//! Striped transfers and live path forecasting: fetch a 500 MB replica
//! from one site, then striped across two sites at once (GridFTP's
//! SPAS striping), while NWS-style forecasting sensors watch both paths.
//!
//! Run with: `cargo run --release -p wanpred-core --example striped_transfer`

use std::any::Any;

use wanpred_core::gridftp::{CompletedTransfer, TransferKind, TransferManager, TransferRequest};
use wanpred_core::nws::{ForecastingSensor, ProbeConfig};
use wanpred_core::prelude::*;
use wanpred_core::testbed::build_testbed;

struct Comparer {
    mgr: TransferManager,
    client: NodeId,
    lbl: NodeId,
    isi: NodeId,
    phase: u8,
    results: Vec<(String, CompletedTransfer)>,
}

impl Comparer {
    fn submit_phase(&mut self, ctx: &mut Ctx<'_>) {
        let path = "/home/ftp/vazhkuda/500MB".to_string();
        let kind = match self.phase {
            0 => TransferKind::Get {
                server: self.lbl,
                path,
            },
            1 => TransferKind::StripedGet {
                servers: vec![self.lbl, self.isi],
                path,
            },
            _ => return,
        };
        self.mgr
            .submit(
                ctx,
                TransferRequest {
                    client: self.client,
                    kind,
                    streams: 8,
                    tcp_buffer: 1_000_000,
                    partial: None,
                },
            )
            .expect("file exists at both sites");
    }
}

impl Agent for Comparer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_secs(60), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        if self.mgr.on_timer(ctx, tag) {
            return;
        }
        self.submit_phase(ctx);
    }
    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
        if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
            let label = if self.phase == 0 {
                "plain GET (LBL only)"
            } else {
                "striped GET (LBL+ISI)"
            };
            self.results.push((label.to_string(), c));
            self.phase += 1;
            if self.phase <= 1 {
                // Start the next phase after a short pause.
                ctx.set_timer(SimDuration::from_secs(30), 0);
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    let epoch = 996_642_000;
    let tb = build_testbed(MasterSeed(5), false);
    let mgr = tb.build_manager(epoch);
    let (anl, lbl, isi) = (tb.anl, tb.lbl, tb.isi);
    let mut engine = Engine::new(tb.network);

    let comparer = engine.add_agent(Box::new(Comparer {
        mgr,
        client: anl,
        lbl,
        isi,
        phase: 0,
        results: Vec::new(),
    }));
    let lbl_sensor = engine.add_agent(Box::new(ForecastingSensor::new(
        ProbeConfig::paper_default(lbl, anl),
        epoch,
    )));
    let isi_sensor = engine.add_agent(Box::new(ForecastingSensor::new(
        ProbeConfig::paper_default(isi, anl),
        epoch,
    )));

    engine.run_until(SimTime::from_secs(2 * 3_600));

    println!("== plain vs striped 500 MB retrieval ==");
    let c = engine.agent::<Comparer>(comparer).expect("agent");
    for (label, r) in &c.results {
        let secs = r.finished.saturating_since(r.submitted).as_secs_f64();
        println!(
            "{label:<24} {:>6.1} s   {:>8.0} KB/s",
            secs, r.bandwidth_kbs
        );
    }
    if let [(_, plain), (_, striped)] = c.results.as_slice() {
        println!(
            "speedup from striping: {:.2}x",
            striped.bandwidth_kbs / plain.bandwidth_kbs
        );
    }

    println!("\n== path sensors after two hours ==");
    for (name, id) in [("LBL-ANL", lbl_sensor), ("ISI-ANL", isi_sensor)] {
        let s = engine.agent::<ForecastingSensor>(id).expect("sensor");
        let (min, mean, max) = s.series().summary().expect("probes ran");
        let (technique, forecast) = s.forecast().expect("warmed up");
        println!(
            "{name}: {} probes, {:.0}..{:.0}..{:.0} B/s; forecast {forecast:.0} B/s via {technique}",
            s.measurements().len(),
            min,
            mean,
            max,
        );
    }
}
