//! Replica selection end to end: the scenario from the paper's
//! introduction. A data set is replicated at LBL and ISI; an ANL client
//! asks which copy to fetch. Transfer logs from a simulated campaign
//! feed information providers, a GIIS aggregates them, and the broker
//! ranks replicas by predicted bandwidth — then we check the choice
//! against what the two paths actually delivered.
//!
//! Run with: `cargo run --release -p wanpred-core --example replica_selection`

use wanpred_core::prelude::*;

fn main() {
    // Two weeks of history on both paths.
    let cfg = CampaignConfig {
        seed: MasterSeed(7),
        duration: SimDuration::from_days(14),
        probes: false,
        ..CampaignConfig::august(7)
    };
    println!("simulating two weeks of transfer history...");
    let result = run_campaign(&cfg);
    let now = cfg.epoch_unix + 14 * 86_400;

    // Publish each server's log through the information service.
    let mut fw = PredictiveFramework::new();
    fw.publish_server_log(
        "dpsslx04.lbl.gov",
        "131.243.2.11",
        result.log(Pair::LblAnl).clone(),
        now,
    );
    fw.publish_server_log(
        "jet.isi.edu",
        "128.9.160.11",
        result.log(Pair::IsiAnl).clone(),
        now,
    );

    // The logical file exists at both sites.
    for (host, lfn_path) in [
        ("dpsslx04.lbl.gov", "/home/ftp/vazhkuda/500MB"),
        ("jet.isi.edu", "/home/ftp/vazhkuda/500MB"),
    ] {
        fw.register_replica(
            "lfn://hep/run2001/500MB",
            PhysicalReplica {
                host: host.into(),
                path: lfn_path.into(),
                size: 512_000_000,
            },
        )
        .expect("replicas agree on size");
    }

    // Ask the broker.
    let client = "140.221.65.69"; // the ANL host
    let sel = fw
        .select_replica(client, "lfn://hep/run2001/500MB", now)
        .expect("lfn registered");
    println!("\nbroker decision for {client}:");
    for (i, s) in sel.scores.iter().enumerate() {
        let marker = if i == sel.chosen { "-> " } else { "   " };
        println!(
            "{marker}{:<20} predicted {:>8} KB/s",
            s.replica.host,
            s.predicted_kbs
                .map(|p| format!("{p:.0}"))
                .unwrap_or("n/a".into())
        );
    }

    // Ground truth: mean measured bandwidth of 500MB-class transfers.
    println!("\nmeasured 500MB-class means over the campaign:");
    let mut truth: Vec<(String, f64)> = Vec::new();
    for pair in Pair::ALL {
        let obs = wanpred_core::testbed::observation_series(&result, pair);
        let class_obs = filter_class(&obs, SizeClass::C500MB);
        let mean = class_obs.iter().map(|o| o.bandwidth_kbs).sum::<f64>() / class_obs.len() as f64;
        let host = match pair {
            Pair::LblAnl => "dpsslx04.lbl.gov",
            Pair::IsiAnl => "jet.isi.edu",
        };
        println!("   {host:<20} {mean:>8.0} KB/s");
        truth.push((host.to_string(), mean));
    }
    truth.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let agree = truth[0].0 == sel.replica().host;
    println!(
        "\nbroker chose {} — {} the measured-best site",
        sel.replica().host,
        if agree { "matching" } else { "NOT matching" }
    );
}
