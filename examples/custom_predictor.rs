//! Extending the predictor suite: implement a custom [`Predictor`]
//! (a trimmed mean), run it against the paper's 15 on real campaign
//! logs, and let the NWS-style dynamic selector pick winners on the fly
//! (the paper's §7 future work).
//!
//! Run with: `cargo run --release -p wanpred-core --example custom_predictor`

use wanpred_core::prelude::*;
use wanpred_core::testbed::observation_series;

/// A 20%-trimmed mean over the last 25 values: drop the top and bottom
/// 20% of the window, average the rest — a robustness middle ground
/// between AVG25 and MED25.
struct TrimmedMean25;

impl Predictor for TrimmedMean25 {
    fn name(&self) -> &str {
        "TRIM25"
    }

    fn predict(&self, history: &[Observation], _now: u64) -> Option<f64> {
        let start = history.len().saturating_sub(25);
        let mut vals: Vec<f64> = history[start..].iter().map(|o| o.bandwidth_kbs).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let cut = vals.len() / 5;
        let kept = &vals[cut..vals.len() - cut];
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }
}

fn main() {
    let cfg = CampaignConfig {
        seed: MasterSeed(11),
        duration: SimDuration::from_days(14),
        probes: false,
        ..CampaignConfig::august(11)
    };
    println!("simulating the August campaign...");
    let result = run_campaign(&cfg);
    let obs = observation_series(&result, Pair::LblAnl);

    // Paper suite (classified) + the custom predictor (classified).
    let mut suite = paper_suite(true);
    suite.push(NamedPredictor::new(Box::new(TrimmedMean25), true));

    // The incremental engine transparently falls back to naive replay for
    // custom predictors it has no rolling state for.
    let reports = Evaluation::replay(
        &obs,
        &suite,
        EvalEngine::Incremental,
        EvalOptions::default(),
        &ObsSink::disabled(),
    );
    let mut table =
        Table::new("LBL-ANL, classified, all classes").headers(["predictor", "MAPE %", "answered"]);
    let mut ranked: Vec<(&str, Option<f64>, usize)> = reports
        .iter()
        .map(|r| (r.name.as_str(), r.mape(), r.outcomes.len()))
        .collect();
    ranked.sort_by(|a, b| {
        a.1.unwrap_or(f64::INFINITY)
            .partial_cmp(&b.1.unwrap_or(f64::INFINITY))
            .expect("finite")
    });
    for (name, mape, n) in &ranked {
        table.row([
            name.to_string(),
            mape.map(|m| format!("{m:.1}")).unwrap_or("-".into()),
            n.to_string(),
        ]);
    }
    println!("{}", table.render());
    let trim_rank = ranked
        .iter()
        .position(|(n, ..)| *n == "TRIM25+C")
        .expect("custom predictor evaluated");
    println!("TRIM25+C ranks #{} of {}", trim_rank + 1, ranked.len());

    // Dynamic selection: stream the log through the selector and report
    // which technique it would be using at the end.
    let mut selector = DynamicSelector::new(paper_suite(true), 15);
    for o in &obs {
        selector.observe(*o);
    }
    let (_, best) = selector.best_candidate();
    println!(
        "\ndynamic selector's running winner after {} transfers: {best}",
        obs.len()
    );
    if let Some((used, pred)) = selector.predict(cfg.epoch_unix + 15 * 86_400, 100 * PAPER_MB) {
        println!("next 100MB-class transfer predicted by {used}: {pred:.0} KB/s");
    }
}
