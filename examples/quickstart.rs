//! Quickstart: simulate a measurement campaign on the paper's testbed,
//! run the 30-predictor suite over the logs, and print a Figure 8-style
//! error table.
//!
//! Run with: `cargo run --release -p wanpred-core --example quickstart`

use wanpred_core::prelude::*;

fn main() {
    // A one-week August campaign (the full paper runs are two weeks;
    // one week keeps the quickstart subsecond).
    let cfg = CampaignConfig {
        seed: MasterSeed(42),
        duration: SimDuration::from_days(7),
        ..CampaignConfig::august(42)
    };
    println!("simulating one week of controlled GridFTP transfers + NWS probes...");
    let result = run_campaign(&cfg);

    for pair in Pair::ALL {
        let log = result.log(pair);
        println!(
            "\n{}: {} transfers logged, {} NWS probes",
            pair.label(),
            log.len(),
            result.probes(pair).len()
        );

        // Evaluate the full suite (15 predictors x {plain, classified}).
        let eval = Evaluation::builder().build();
        let reports = eval.run_log(log);
        let suite = eval.predictors();

        let mut table = Table::new(format!("{} mean absolute % error", pair.label())).headers([
            "predictor",
            "unclassified",
            "classified",
        ]);
        for i in 0..15 {
            let (u, c) = (&reports[i], &reports[i + 15]);
            table.row([
                suite[i].name().to_string(),
                u.mape().map(|m| format!("{m:.1}")).unwrap_or("-".into()),
                c.mape().map(|m| format!("{m:.1}")).unwrap_or("-".into()),
            ]);
        }
        println!("{}", table.render());
    }

    // A sample of the underlying log, in the paper's ULM format.
    let sample: String = result
        .log(Pair::LblAnl)
        .to_ulm_string()
        .lines()
        .take(3)
        .collect::<Vec<_>>()
        .join("\n");
    println!("first log lines (ULM):\n{sample}");
}
