//! The delivery infrastructure walkthrough (paper §5, Figures 5–6):
//! a GridFTP control-channel session, the information provider's LDIF
//! output, soft-state GRIS→GIIS registration, and LDAP-filter inquiries.
//!
//! Run with: `cargo run --release -p wanpred-core --example information_service`

use std::sync::Arc;

use wanpred_core::gridftp::protocol::{parse, Command};
use wanpred_core::gridftp::Session;
use wanpred_core::infod::{
    run_open_loop, Dn, Giis, GridFtpPerfProvider, Gris, InquiryRequest, InquiryService,
    OpenLoopConfig, ProviderConfig, Registration, Schema, ServeConfig, ShardedServer,
};
use wanpred_core::prelude::*;

fn main() {
    // --- 1. A control-channel session negotiating a transfer. -----------
    println!("== GridFTP control channel ==");
    let storage = StorageServer::vintage_with_paper_fileset("lbl-disk");
    let mut session = Session::new();
    for line in [
        "AUTH GSSAPI",
        "USER :globus-mapping:",
        "PASS",
        "TYPE I",
        "MODE E",
        "SBUF 1000000",
        "OPTS RETR Parallelism=8,8,8;",
        "SPAS",
        "SIZE /home/ftp/vazhkuda/100MB",
        "RETR /home/ftp/vazhkuda/100MB",
    ] {
        let cmd: Command = match parse(line) {
            Ok(c) => c,
            Err(e) => {
                println!("C> {line}\nS> parse error: {e}");
                continue;
            }
        };
        let (reply, plan) = session.handle(&cmd, &storage);
        println!("C> {line}");
        println!("S> {reply}");
        if let Some(p) = plan {
            println!(
                "   negotiated: {} bytes, {} streams, {} B buffers",
                p.bytes, p.streams, p.tcp_buffer
            );
        }
    }

    // --- 2. Logs -> provider -> LDIF (Figure 6). -------------------------
    println!("\n== information provider output (Figure 6 style) ==");
    let cfg = CampaignConfig {
        seed: MasterSeed(3),
        duration: SimDuration::from_days(3),
        probes: false,
        ..CampaignConfig::august(3)
    };
    let result = run_campaign(&cfg);
    let now = cfg.epoch_unix + 3 * 86_400;
    let provider = GridFtpPerfProvider::from_snapshot(
        ProviderConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
        result.log(Pair::LblAnl).clone(),
    );
    let entries = provider.build_entries(now);
    let schema = Schema::standard();
    for e in &entries {
        schema
            .validate(e)
            .expect("provider output obeys the schema");
        println!("{}", e.to_ldif());
    }

    // --- 3. GRIS -> GIIS soft-state registration + inquiry (Figure 5). --
    println!("== GIIS inquiry ==");
    let mut gris = Gris::new(Dn::parse("o=grid").expect("constant"));
    gris.register_provider(Box::new(provider));
    let gris = Arc::new(gris);
    let giis = Giis::new("grid-index");
    giis.register_service(
        Registration {
            id: "dpsslx04.lbl.gov".into(),
            ttl_secs: 300,
        },
        gris.clone(),
        now,
    );
    let inquiry = "(&(objectclass=GridFTPPerfInfo)(avgrdbandwidth>=1000))";
    let req = InquiryRequest::parse(inquiry, now).expect("well-formed");
    let resp = giis.inquire(&req).expect("giis answers");
    println!(
        "query {inquiry} -> {} entr{} (served by {:?}, staleness {}s)",
        resp.entries.len(),
        if resp.entries.len() == 1 { "y" } else { "ies" },
        resp.provenance.source,
        resp.staleness_secs,
    );
    for h in &resp.entries {
        println!(
            "  cn={} avgrdbandwidth={} predictrdbandwidth={}",
            h.get("cn").unwrap_or("?"),
            h.get("avgrdbandwidth").unwrap_or("?"),
            h.get("predictrdbandwidth").unwrap_or("?"),
        );
    }

    // Registrations are soft state: without renewal they expire.
    let later = now + 301;
    let req = InquiryRequest::parse(inquiry, later).expect("well-formed");
    assert!(giis.inquire(&req).expect("giis answers").entries.is_empty());
    println!("after ttl expiry with no renewal: 0 entries (soft state)");

    // --- 4. The sharded serving layer under open-loop load. --------------
    println!("\n== sharded serving layer ==");
    let server = ShardedServer::new(ServeConfig {
        admission: Some(Default::default()),
        ..ServeConfig::default()
    });
    server.register_site("dpsslx04.lbl.gov", 600, gris, now);
    server.refresh(now);
    let report = run_open_loop(
        &server,
        &OpenLoopConfig {
            seed: 7,
            rate_per_sec: 2_000.0,
            duration_secs: 5,
            start_unix: now,
            filters: vec![inquiry.to_string(), "(objectclass=GridFTPPerfInfo)".into()],
        },
        |sec| server.refresh(sec),
    );
    println!(
        "open-loop 2000/s for 5s: offered {} answered {} shed {} coalesced {}",
        report.offered, report.answered, report.shed, report.coalesced
    );
    println!(
        "sustained {} qps, latency p50/p95/p99 = {}/{}/{} us",
        report.sustained_qps,
        report.percentile_us(50.0),
        report.percentile_us(95.0),
        report.percentile_us(99.0),
    );
}
