#![allow(clippy::all)]
//! Offline stand-in for `rand` 0.8's API surface as used by this
//! workspace: `StdRng` (seeded, deterministic), `SeedableRng::seed_from_u64`,
//! `RngCore::next_u32/next_u64/fill_bytes` and `Rng::gen_range` over
//! integer and float ranges.
//!
//! `StdRng` is xoshiro256** seeded via SplitMix64 — not the same stream
//! as the real `rand::rngs::StdRng` (ChaCha12), but every consumer in
//! this workspace only relies on *determinism per seed*, which holds.

use std::ops::{Range, RangeInclusive};

/// Low-level random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range uniform values can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling methods.
pub trait Rng: RngCore {
    /// Uniform draw from a range (`0..10`, `0.5..1.5`, `1..=6`, ...).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniformly random bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (0.0f64..1.0).sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as xoshiro recommends.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&x));
            let n = r.gen_range(0usize..7);
            assert!(n < 7);
            let m = r.gen_range(1u32..=6);
            assert!((1..=6).contains(&m));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn fill_bytes_covers_slice() {
        let mut r = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
