#![allow(clippy::all)]
//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API surface, implemented over `std::sync`. A poisoned std lock (a
//! panic while held) is recovered transparently, matching parking_lot's
//! poison-free semantics.

use std::fmt;
use std::sync::{self, TryLockError};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
