#![allow(clippy::all)]
//! Offline stand-in for `serde_json`: renders the vendored serde's
//! [`Value`] model to JSON text and parses it back.

pub use serde::Error;
pub use serde::Value;

use serde::{DeserializeOwned, Serialize};

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a value.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

/// Lower any serializable value to the [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Lift a [`Value`] into a deserializable type.
pub fn from_value<T: DeserializeOwned>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

// ----------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip Display; force a fractional
                // marker so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn roundtrip_float_precision() {
        for f in [0.1, 1e300, -2.2250738585072014e-308, 12345.6789] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "{s}");
        }
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_indents() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
