#![allow(clippy::all)]
//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Mirrors the subset of the criterion 0.5 API this workspace uses
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, `BenchmarkId`, `BatchSize`) and reports wall-clock
//! timings to stdout. Sampling is deliberately small so `cargo bench`
//! stays fast; `CRITERION_SAMPLE_MS` overrides the per-benchmark
//! measurement budget in milliseconds.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim times setup and
/// routine together per invocation regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifies one benchmark within a group, e.g. `AVG25+C/1000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs timing loops for one benchmark.
pub struct Bencher {
    budget: Duration,
    /// Mean wall-clock time of one routine invocation.
    pub(crate) mean: Duration,
    pub(crate) iters: u64,
}

impl Bencher {
    fn measure(&mut self, mut once: impl FnMut()) {
        // Warm-up invocation, also the fallback measurement.
        let t0 = Instant::now();
        once();
        let first = t0.elapsed();
        let mut total = first;
        let mut iters = 1u64;
        while total < self.budget {
            let t = Instant::now();
            once();
            total += t.elapsed();
            iters += 1;
        }
        self.mean = total / iters as u32;
        self.iters = iters;
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.measure(|| {
            black_box(routine());
        });
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.measure(|| {
            let input = setup();
            black_box(routine(input));
        });
    }

    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        self.measure(|| {
            let mut input = setup();
            black_box(routine(&mut input));
        });
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget.min(Duration::from_millis(500));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            budget: self.criterion.budget,
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&self.name, &id.id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            budget: self.criterion.budget,
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&self.name, &id.id, &b);
        self
    }

    pub fn finish(self) {}
}

fn report(group: &str, id: &str, b: &Bencher) {
    println!(
        "{group}/{id}: mean {:>12} over {} iters",
        format_ns(b.mean.as_nanos()),
        b.iters
    );
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Top-level harness state.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// CLI arguments (`--bench`, filters) are accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: String::new(),
            criterion: self,
        };
        g.bench_function(id, f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_mean() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("shim");
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum", 8usize), &8usize, |b, &n| {
            b.iter_batched(
                || vec![1u64; n],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }
}
