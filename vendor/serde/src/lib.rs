#![allow(clippy::all)]
//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this minimal replacement. Instead of serde's visitor-based data model
//! it uses one JSON-like [`Value`] enum: `Serialize` lowers a type to a
//! `Value`, `Deserialize` lifts it back. The companion `serde_json` shim
//! renders `Value` to and from JSON text. The derive macros (re-exported
//! from the vendored `serde_derive`) cover plain structs and enums —
//! exactly what this workspace uses; `#[serde(...)]` attributes and
//! generics are unsupported.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-like data model every (de)serializable type maps through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when a value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map if this is one.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence if this is one.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a key in a `Value::Map` body, erroring when absent.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// (De)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower a value into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Lift a value out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Alias matching serde's owned-deserialization bound.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ------------------------------------------------------------ primitives

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u64;
                if n <= i64::MAX as u64 {
                    Value::I64(n as i64)
                } else {
                    Value::U64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::custom("integer out of range")),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected seq"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| Error::custom("expected seq"))?;
        if seq.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                seq.len()
            )));
        }
        let items: Vec<T> = seq.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

/// Canonical total ordering over values — used to make map encodings
/// deterministic regardless of `HashMap` iteration order.
fn cmp_value(a: &Value, b: &Value) -> std::cmp::Ordering {
    fn tag(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) => 2,
            Value::U64(_) => 3,
            Value::F64(_) => 4,
            Value::Str(_) => 5,
            Value::Seq(_) => 6,
            Value::Map(_) => 7,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::I64(x), Value::I64(y)) => x.cmp(y),
        (Value::U64(x), Value::U64(y)) => x.cmp(y),
        (Value::F64(x), Value::F64(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => {
            for (xi, yi) in x.iter().zip(y) {
                let o = cmp_value(xi, yi);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((kx, vx), (ky, vy)) in x.iter().zip(y) {
                let o = kx.cmp(ky).then_with(|| cmp_value(vx, vy));
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => tag(a).cmp(&tag(b)),
    }
}

/// Encode map entries: string keys become a JSON object; other key
/// types become a sequence of `[key, value]` pairs. Both forms are
/// sorted by key so the encoding is deterministic.
fn map_entries_to_value(entries: Vec<(Value, Value)>) -> Value {
    if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        let mut out: Vec<(String, Value)> = entries
            .into_iter()
            .map(|(k, v)| match k {
                Value::Str(s) => (s, v),
                _ => unreachable!("checked all keys are strings"),
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(out)
    } else {
        let mut out = entries;
        out.sort_by(|a, b| cmp_value(&a.0, &b.0));
        Value::Seq(
            out.into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

/// Decode either map encoding back into `(key, value)` value pairs.
fn map_entries_from_value(v: &Value) -> Result<Vec<(Value, Value)>, Error> {
    match v {
        Value::Map(m) => Ok(m
            .iter()
            .map(|(k, v)| (Value::Str(k.clone()), v.clone()))
            .collect()),
        Value::Seq(s) => s
            .iter()
            .map(|e| match e {
                Value::Seq(p) if p.len() == 2 => Ok((p[0].clone(), p[1].clone())),
                _ => Err(Error::custom("expected [key, value] pair")),
            })
            .collect(),
        _ => Err(Error::custom("expected map")),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_entries_to_value(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_entries_from_value(v)?
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_entries_to_value(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_entries_from_value(v)?
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple seq"))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| Error::custom("tuple too short"))?
                )?,)+))
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
