#![allow(clippy::all)]
//! Offline stand-in for `rayon`, covering the API surface this workspace
//! uses: [`join`], and `par_iter().map(..).collect()` / `for_each` over
//! slices. Parallelism comes from `std::thread::scope` with one chunk
//! per available core — no work stealing, but the call sites here are
//! embarrassingly parallel with coarse items, where static chunking is
//! within noise of a real deque scheduler.

use std::num::NonZeroUsize;

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: joined closure panicked"))
    })
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `items` in parallel, preserving order.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let workers = threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon shim: worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A pending parallel iterator over a slice.
pub struct ParIter<'a, T>(&'a [T]);

/// A pending parallel map over a slice.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap { items: self.0, f }
    }

    /// Run `f` on every item in parallel for its side effects.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let _ = self.map(|t| f(t)).collect::<Vec<()>>();
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Execute the map and gather results in order.
    pub fn collect<C: FromParallel<R>>(self) -> C {
        let n = self.items.len();
        let workers = threads().min(n.max(1));
        let results = if workers <= 1 || n <= 1 {
            self.items.iter().map(&self.f).collect()
        } else {
            let chunk = n.div_ceil(workers);
            let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk)
                    .map(|c| s.spawn(|| c.iter().map(&self.f).collect::<Vec<R>>()))
                    .collect();
                for h in handles {
                    out.push(h.join().expect("rayon shim: worker panicked"));
                }
            });
            out.into_iter().flatten().collect()
        };
        C::from_ordered(results)
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallel<R> {
    /// Build the collection from in-order results.
    fn from_ordered(v: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_ordered(v: Vec<R>) -> Self {
        v
    }
}

/// Extension trait providing `.par_iter()` on slices.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Sync + 'a;

    /// A parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter(self)
    }
}

/// Glob-import target mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(super::par_map(&items, |x| x + 1)[999], 1000);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(empty.par_iter().map(|x| *x).collect::<Vec<u8>>().is_empty());
        assert_eq!(
            vec![7].par_iter().map(|x| x * 3).collect::<Vec<i32>>(),
            vec![21]
        );
    }
}
