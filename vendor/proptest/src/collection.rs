//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` targeting a size in `size` (the
/// result may be smaller when the element domain is too narrow).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let want = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < want && attempts < want.saturating_mul(20) + 100 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        // Respect the lower bound even under heavy duplication.
        while out.len() < self.size.lo {
            out.insert(self.element.sample(rng));
        }
        out
    }
}
