//! The `Strategy` trait, combinators, ranges, tuples and unions.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from random bits.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard values failing a predicate (bounded resampling).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Generate a value, then a strategy from it, then sample that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Build recursive structures: `recurse` receives a strategy for
    /// subtrees (leaves or deeper recursion) and returns the strategy
    /// for one more level. `depth` bounds nesting; the size hints are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![base.clone(), deeper]).boxed();
        }
        cur
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among alternative strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from non-empty alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

// ----------------------------------------------------------------- ranges

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ----------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8, 9 S9)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8, 9 S9, 10 S10)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8, 9 S9, 10 S10, 11 S11)
}

/// Literal string patterns are strategies for matching strings
/// (character-class subset, e.g. `"[ -~]{0,256}"`).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy `{self}`: {e:?}"))
            .sample(rng)
    }
}
