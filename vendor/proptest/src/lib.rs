#![allow(clippy::all)]
//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API this workspace uses —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `Strategy` with `prop_map`/`prop_filter`/`prop_flat_map`/
//! `prop_recursive`/`boxed`, range and tuple strategies, `any::<T>()`,
//! `prop::collection::{vec, btree_set}`, `prop::option::of`, and
//! `string::string_regex` for character-class patterns.
//!
//! Differences from the real crate: inputs are sampled from a
//! deterministic per-test PRNG (seeded from the test's module path and
//! case number, so failures are reproducible run-to-run), and failing
//! cases are *not* shrunk — the assertion failure reports the case
//! number instead.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirroring `proptest::prop::*` paths used via the prelude
/// (`prop::collection::vec`, `prop::option::of`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::string;
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold.
/// (The shim simply returns from the case closure's loop body.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Union of alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples and runs `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __strat = ($($strat,)+);
                let __seed = $crate::test_runner::hash_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&__strat, &mut __rng);
                    // Bodies run inside a loop so prop_assume! can `continue`.
                    $body
                }
            }
        )*
    };
}
