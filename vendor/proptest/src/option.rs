//! `prop::option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`: `None` about a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
