//! Deterministic PRNG and configuration for the shim test runner.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// FNV-1a hash of a test path, for stable per-test seeds.
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 — small, fast, and deterministic.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}
