//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// That strategy's type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (all values, uniformly).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform over the whole domain of a primitive.
pub struct FullRange<T>(PhantomData<T>);

impl<T> Default for FullRange<T> {
    fn default() -> Self {
        FullRange(PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange::default()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange::default()
    }
}

impl Strategy for FullRange<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}
impl Arbitrary for f64 {
    type Strategy = FullRange<f64>;
    fn arbitrary() -> Self::Strategy {
        FullRange::default()
    }
}
