//! `string_regex` — string strategies from a character-class regex
//! subset: concatenations of `[...]` classes or literal characters, each
//! optionally quantified with `{n}` or `{lo,hi}` (enough for patterns
//! like `"[a-z][a-z0-9]{0,15}"` used in this workspace).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Error from an unsupported or malformed pattern.
#[derive(Debug, Clone)]
pub struct Error(pub String);

#[derive(Debug, Clone)]
struct Atom {
    /// Inclusive character ranges this atom may produce.
    ranges: Vec<(char, char)>,
    lo: usize,
    hi: usize,
}

/// A compiled pattern; see [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = atom.lo + rng.below(atom.hi - atom.lo + 1);
            let total: u32 = atom
                .ranges
                .iter()
                .map(|&(a, b)| b as u32 - a as u32 + 1)
                .sum();
            for _ in 0..n {
                let mut k = (rng.next_u64() % total as u64) as u32;
                for &(a, b) in &atom.ranges {
                    let span = b as u32 - a as u32 + 1;
                    if k < span {
                        out.push(char::from_u32(a as u32 + k).expect("in-range char"));
                        break;
                    }
                    k -= span;
                }
            }
        }
        out
    }
}

/// Compile a character-class pattern into a string strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or_else(|| Error("unterminated character class".into()))?
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                parse_class(class)?
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .ok_or_else(|| Error("dangling escape".into()))?;
                i += 2;
                vec![(c, c)]
            }
            '.' => {
                i += 1;
                vec![(' ', '~')]
            }
            c if !"{}()|*+?".contains(c) => {
                i += 1;
                vec![(c, c)]
            }
            c => return Err(Error(format!("unsupported regex construct `{c}`"))),
        };
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or_else(|| Error("unterminated quantifier".into()))?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            let parts: Vec<&str> = body.split(',').collect();
            match parts.as_slice() {
                [n] => {
                    let n = n.trim().parse().map_err(|_| Error("bad {n}".into()))?;
                    (n, n)
                }
                [lo, hi] => (
                    lo.trim().parse().map_err(|_| Error("bad {lo,hi}".into()))?,
                    hi.trim().parse().map_err(|_| Error("bad {lo,hi}".into()))?,
                ),
                _ => return Err(Error("bad quantifier".into())),
            }
        } else {
            (1, 1)
        };
        if lo > hi {
            return Err(Error("quantifier lo > hi".into()));
        }
        atoms.push(Atom { ranges, lo, hi });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

fn parse_class(class: &[char]) -> Result<Vec<(char, char)>, Error> {
    if class.is_empty() {
        return Err(Error("empty character class".into()));
    }
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < class.len() {
        let a = if class[i] == '\\' {
            i += 1;
            *class
                .get(i)
                .ok_or_else(|| Error("dangling class escape".into()))?
        } else {
            class[i]
        };
        // `x-y` range (a trailing `-` is a literal).
        if class.get(i + 1) == Some(&'-') && i + 2 < class.len() {
            let b = class[i + 2];
            if b < a {
                return Err(Error(format!("inverted range {a}-{b}")));
            }
            ranges.push((a, b));
            i += 3;
        } else {
            ranges.push((a, a));
            i += 1;
        }
    }
    Ok(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn printable_class_stays_printable() {
        let s = string_regex("[ -~]{0,64}").unwrap();
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() <= 64);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn concatenation_and_fixed_counts() {
        let s = string_regex("[a-z][a-z0-9]{0,15}").unwrap();
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(!v.is_empty() && v.len() <= 16);
            assert!(v.chars().next().unwrap().is_ascii_lowercase());
        }
        let s = string_regex("[01]{8}").unwrap();
        assert_eq!(s.sample(&mut rng).len(), 8);
    }

    #[test]
    fn literal_dash_in_class() {
        let s = string_regex("[a-zA-Z0-9._/-]{1,24}").unwrap();
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..=24).contains(&v.len()));
            assert!(v
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "._/-".contains(c)));
        }
    }
}
