#![allow(clippy::all)]
//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment,
//! so the workspace vendors a minimal `serde` whose data model is a
//! single JSON-like [`Value`] enum. This proc-macro crate derives that
//! model's `Serialize`/`Deserialize` traits for plain structs and enums
//! (no generics, no `#[serde(...)]` attributes — the workspace uses
//! neither).
//!
//! Encoding conventions (mirroring serde's externally-tagged defaults):
//! * named struct        -> `Value::Map([(field, value), ...])`
//! * tuple struct        -> `Value::Seq([...])`
//! * unit enum variant   -> `Value::Str(variant)`
//! * tuple enum variant  -> `Value::Map([(variant, Seq([...]))])`
//! * struct enum variant -> `Value::Map([(variant, Map([...]))])`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derive `serde::Serialize` for a plain struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derive `serde::Deserialize` for a plain struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected item name, found {t}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                t => panic!("unexpected struct body: {t:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                t => panic!("unexpected enum body: {t:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        k => panic!("cannot derive for `{k}` items"),
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consume one field type: everything until a comma at angle-bracket
/// depth zero (groups are atomic token trees, but `<...>` are bare
/// puncts, so commas inside generics must be depth-tracked).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let fname = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected field name, found {t}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("expected `:` after field `{fname}`, found {t}"),
        }
        skip_type(&toks, &mut i);
        i += 1; // the comma (or past the end)
        out.push(fname);
    }
    out
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    let mut n = 0usize;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        i += 1;
        n += 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let vname = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected variant name, found {t}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` up to the separating comma.
        while let Some(t) = toks.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        out.push((vname, fields));
    }
    out
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::Struct { name, fields } => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Unit => s.push_str("        ::serde::Value::Null\n"),
                Fields::Named(fs) => {
                    s.push_str("        ::serde::Value::Map(::std::vec![\n");
                    for f in fs {
                        s.push_str(&format!(
                            "            (::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),\n"
                        ));
                    }
                    s.push_str("        ])\n");
                }
                Fields::Tuple(n) => {
                    s.push_str("        ::serde::Value::Seq(::std::vec![\n");
                    for k in 0..*n {
                        s.push_str(&format!(
                            "            ::serde::Serialize::to_value(&self.{k}),\n"
                        ));
                    }
                    s.push_str("        ])\n");
                }
            }
            s.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => s.push_str(&format!(
                        "            {name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        s.push_str(&format!(
                            "            {name}::{v}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Seq(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        s.push_str(&format!(
                            "            {name}::{v} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Map(::std::vec![{}]))]),\n",
                            fs.join(", "),
                            fs.iter()
                                .map(|f| format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                }
            }
            s.push_str("        }\n    }\n}\n");
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::Struct { name, fields } => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                Fields::Unit => s.push_str(&format!("        Ok({name})\n")),
                Fields::Named(fs) => {
                    s.push_str(&format!(
                        "        let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\n        Ok({name} {{\n"
                    ));
                    for f in fs {
                        s.push_str(&format!(
                            "            {f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\")?)?,\n"
                        ));
                    }
                    s.push_str("        })\n");
                }
                Fields::Tuple(n) => {
                    s.push_str(&format!(
                        "        let __q = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected seq for {name}\"))?;\n        if __q.len() != {n} {{ return Err(::serde::Error::custom(\"wrong seq arity for {name}\")); }}\n        Ok({name}(\n"
                    ));
                    for k in 0..*n {
                        s.push_str(&format!(
                            "            ::serde::Deserialize::from_value(&__q[{k}])?,\n"
                        ));
                    }
                    s.push_str("        ))\n");
                }
            }
            s.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            s.push_str(
                "        if let Some(__s) = __v.as_str() {\n            return match __s {\n",
            );
            for (v, fields) in variants {
                if matches!(fields, Fields::Unit) {
                    s.push_str(&format!("                \"{v}\" => Ok({name}::{v}),\n"));
                }
            }
            s.push_str(&format!(
                "                other => Err(::serde::Error::custom(::std::format!(\"unknown {name} variant {{other}}\"))),\n            }};\n        }}\n"
            ));
            s.push_str(&format!(
                "        let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected variant map for {name}\"))?;\n        let (__tag, __payload) = __m.first().ok_or_else(|| ::serde::Error::custom(\"empty variant map for {name}\"))?;\n        match __tag.as_str() {{\n"
            ));
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        // Also accept the map form for unit variants.
                        s.push_str(&format!("            \"{v}\" => Ok({name}::{v}),\n"));
                    }
                    Fields::Tuple(n) => {
                        s.push_str(&format!(
                            "            \"{v}\" => {{\n                let __q = __payload.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected seq payload for {name}::{v}\"))?;\n                if __q.len() != {n} {{ return Err(::serde::Error::custom(\"wrong payload arity for {name}::{v}\")); }}\n                Ok({name}::{v}(\n"
                        ));
                        for k in 0..*n {
                            s.push_str(&format!(
                                "                    ::serde::Deserialize::from_value(&__q[{k}])?,\n"
                            ));
                        }
                        s.push_str("                ))\n            }\n");
                    }
                    Fields::Named(fs) => {
                        s.push_str(&format!(
                            "            \"{v}\" => {{\n                let __fm = __payload.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map payload for {name}::{v}\"))?;\n                Ok({name}::{v} {{\n"
                        ));
                        for f in fs {
                            s.push_str(&format!(
                                "                    {f}: ::serde::Deserialize::from_value(::serde::map_get(__fm, \"{f}\")?)?,\n"
                            ));
                        }
                        s.push_str("                })\n            }\n");
                    }
                }
            }
            s.push_str(&format!(
                "            other => Err(::serde::Error::custom(::std::format!(\"unknown {name} variant {{other}}\"))),\n        }}\n    }}\n}}\n"
            ));
        }
    }
    s
}
