//! Integration tests for the beyond-the-paper extensions: seasonal
//! prediction, the protocol-level client, striped transfers through the
//! campaign substrate, and the rotating log writer on real logs.

use wanpred_core::gridftp::{ClientSettings, GridFtpClient, TransferKind};
use wanpred_core::logfmt::{RotatingLogWriter, RotationConfig};
use wanpred_core::predict::seasonal::SeasonalPredictor;
use wanpred_core::prelude::*;
use wanpred_core::testbed::observation_series;

fn campaign(days: u64) -> CampaignResult {
    run_campaign(&CampaignConfig {
        seed: MasterSeed(321),
        duration: SimDuration::from_days(days),
        probes: false,
        ..CampaignConfig::august(321)
    })
}

#[test]
fn seasonal_wrapper_answers_inside_the_experiment_window() {
    let r = campaign(7);
    let obs = observation_series(&r, Pair::LblAnl);
    assert!(obs.len() > 50);

    // The campaign transfers all happen 6pm-8am; a seasonal predictor
    // asked at 10pm (inside the window) answers, one asked at noon has
    // no matching history and declines.
    let p = SeasonalPredictor::new(MeanPredictor::new(Window::All), 2);
    let evening = r.epoch_unix + 8 * 86_400 + 22 * 3_600;
    let noon = r.epoch_unix + 8 * 86_400 + 12 * 3_600;
    let at_evening = p.predict(&obs, evening);
    assert!(at_evening.is_some());
    assert!(p.predict(&obs, noon).is_none(), "no midday history exists");

    // The seasonal estimate stays within the observed bandwidth range.
    let v = at_evening.unwrap();
    let lo = obs
        .iter()
        .map(|o| o.bandwidth_kbs)
        .fold(f64::INFINITY, f64::min);
    let hi = obs.iter().map(|o| o.bandwidth_kbs).fold(0.0f64, f64::max);
    assert!(v >= lo && v <= hi);
}

#[test]
fn protocol_client_plan_matches_campaign_logging() {
    // The client negotiates exactly the parameters the campaign logs.
    let storage = StorageServer::vintage_with_paper_fileset("x");
    let mut client = GridFtpClient::new(ClientSettings::paper_tuned());
    let plan = client.get("/home/ftp/vazhkuda/250MB", &storage).unwrap();

    let r = campaign(2);
    let rec = r
        .lbl_log
        .records()
        .iter()
        .find(|rec| rec.file_name.ends_with("250MB"))
        .expect("250MB transferred within two days");
    assert_eq!(plan.streams, rec.streams);
    assert_eq!(plan.tcp_buffer, rec.tcp_buffer);
    assert_eq!(plan.bytes, rec.file_size);
    // The transcript shows the full negotiated sequence.
    assert!(client
        .transcript()
        .iter()
        .any(|e| e.command == "SBUF 1000000"));
    assert!(client
        .transcript()
        .iter()
        .any(|e| e.command.contains("Parallelism=8")));
}

#[test]
fn rotating_writer_handles_a_campaign_log() {
    let r = campaign(5);
    let dir = std::env::temp_dir().join(format!("wanpred-ext-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut w = RotatingLogWriter::open(
        dir.join("transfers.ulm"),
        RotationConfig::with_max_entries(40),
    )
    .unwrap();
    for rec in r.lbl_log.records() {
        w.append(rec).unwrap();
    }
    let n = r.lbl_log.len();
    assert_eq!(w.segments(), n / 40);
    // Full reload equals the original log.
    let all = w.load_all().unwrap();
    assert_eq!(all.len(), n);
    assert_eq!(all.records(), r.lbl_log.records());
    // Active window holds the most recent remainder — the NetLogger
    // restart view a predictor would consume.
    let active = w.load_active().unwrap();
    assert_eq!(active.len(), n % 40);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn striped_get_through_testbed_substrate() {
    use std::any::Any;
    use wanpred_core::gridftp::{CompletedTransfer, TransferManager, TransferRequest};
    use wanpred_core::testbed::build_testbed;

    struct One {
        mgr: TransferManager,
        req: Option<TransferRequest>,
        done: Option<CompletedTransfer>,
    }
    impl Agent for One {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
            if self.mgr.on_timer(ctx, tag) {
                return;
            }
            if let Some(req) = self.req.take() {
                self.mgr.submit(ctx, req).expect("valid striped request");
            }
        }
        fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
            if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
                self.done = Some(c);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let tb = build_testbed(MasterSeed(2), true);
    let mgr = tb.build_manager(996_642_000);
    let req = TransferRequest {
        client: tb.anl,
        kind: TransferKind::StripedGet {
            servers: vec![tb.lbl, tb.isi],
            path: "/home/ftp/vazhkuda/400MB".into(),
        },
        streams: 8,
        tcp_buffer: 1_000_000,
        partial: None,
    };
    let (lbl, isi) = (tb.lbl, tb.isi);
    let mut eng = Engine::new(tb.network);
    let id = eng.add_agent(Box::new(One {
        mgr,
        req: Some(req),
        done: None,
    }));
    eng.run_until(SimTime::from_secs(600));
    let agent = eng.agent::<One>(id).unwrap();
    let done = agent.done.as_ref().expect("striped transfer finished");
    assert_eq!(done.bytes, 409_600_000);
    // On two quiet disjoint 12.5 MB/s paths the aggregate approaches
    // 25 MB/s (minus setup/slow-start).
    assert!(
        done.bandwidth_kbs > 18_000.0,
        "aggregate {} KB/s",
        done.bandwidth_kbs
    );
    // Both stripe servers logged their half.
    assert_eq!(agent.mgr.server_log(lbl).unwrap().len(), 1);
    assert_eq!(agent.mgr.server_log(isi).unwrap().len(), 1);
}
