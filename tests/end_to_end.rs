//! Cross-crate integration: campaign → logs → predictors → information
//! service → replica broker, exercised as one pipeline.

use std::sync::Arc;

use wanpred_core::infod::{
    Dn, Giis, GridFtpPerfProvider, Gris, InquiryRequest, InquiryService, ProviderConfig,
    Registration, Schema,
};
use wanpred_core::prelude::*;
use wanpred_core::testbed::observation_series;

fn campaign(days: u64) -> (CampaignConfig, CampaignResult) {
    let cfg = CampaignConfig {
        seed: MasterSeed(555),
        duration: SimDuration::from_days(days),
        ..CampaignConfig::august(555)
    };
    let r = run_campaign(&cfg);
    (cfg, r)
}

#[test]
fn logs_survive_ulm_disk_roundtrip_and_still_predict() {
    let (_, result) = campaign(3);
    let dir = std::env::temp_dir().join("wanpred-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lbl.ulm");
    result.log(Pair::LblAnl).save_ulm(&path).unwrap();
    let loaded = TransferLog::load_ulm(&path).unwrap();
    assert_eq!(loaded.len(), result.log(Pair::LblAnl).len());

    let reports = Evaluation::builder().build().run_log(&loaded);
    let answered: usize = reports.iter().map(|r| r.outcomes.len()).sum();
    assert!(answered > 0, "predictors ran on reloaded log");
    std::fs::remove_file(&path).ok();
}

#[test]
fn provider_entries_from_campaign_logs_validate_and_answer_queries() {
    let (cfg, result) = campaign(3);
    let now = cfg.epoch_unix + 3 * 86_400;
    let schema = Schema::standard();

    let giis = Giis::new("top");
    for (host, addr, pair) in [
        ("dpsslx04.lbl.gov", "131.243.2.11", Pair::LblAnl),
        ("jet.isi.edu", "128.9.160.11", Pair::IsiAnl),
    ] {
        let provider = GridFtpPerfProvider::from_snapshot(
            ProviderConfig::new(host, addr),
            result.log(pair).clone(),
        );
        for e in provider.build_entries(now) {
            schema.validate(&e).unwrap_or_else(|err| {
                panic!("schema violation for {host}: {err}\n{}", e.to_ldif())
            });
        }
        let mut gris = Gris::new(Dn::parse("o=grid").unwrap());
        gris.register_provider(Box::new(provider));
        giis.register_service(
            Registration {
                id: host.into(),
                ttl_secs: 3_600,
            },
            Arc::new(gris),
            now,
        );
    }

    // The ANL client appears in both sites' published data.
    let req =
        InquiryRequest::parse("(&(objectclass=GridFTPPerfInfo)(cn=140.221.65.69))", now).unwrap();
    let hits = giis.inquire(&req).unwrap().entries;
    assert_eq!(hits.len(), 2, "one perf entry per server");
    for h in &hits {
        let avg: f64 = h.get("avgrdbandwidth").unwrap().parse().unwrap();
        assert!(avg > 500.0, "plausible KB/s: {avg}");
    }
}

#[test]
fn framework_selects_a_replica_consistent_with_published_predictions() {
    let (cfg, result) = campaign(5);
    let now = cfg.epoch_unix + 5 * 86_400;

    let mut fw = PredictiveFramework::new();
    fw.publish_server_log(
        "dpsslx04.lbl.gov",
        "131.243.2.11",
        result.log(Pair::LblAnl).clone(),
        now,
    );
    fw.publish_server_log(
        "jet.isi.edu",
        "128.9.160.11",
        result.log(Pair::IsiAnl).clone(),
        now,
    );
    for host in ["dpsslx04.lbl.gov", "jet.isi.edu"] {
        fw.register_replica(
            "lfn://x/1GB",
            PhysicalReplica {
                host: host.into(),
                path: "/home/ftp/vazhkuda/1GB".into(),
                size: 1_024_000_000,
            },
        )
        .unwrap();
    }
    let sel = fw
        .select_replica("140.221.65.69", "lfn://x/1GB", now)
        .unwrap();
    // Both candidates informed; the chosen one has the max prediction.
    let preds: Vec<f64> = sel
        .scores
        .iter()
        .map(|s| s.predicted_kbs.unwrap())
        .collect();
    let max = preds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(sel.scores[sel.chosen].predicted_kbs.unwrap(), max);

    // Baseline policies pick too, without information requirements.
    for mut policy in [
        SelectionPolicy::random(1),
        SelectionPolicy::round_robin(),
        SelectionPolicy::first_listed(),
    ] {
        let s = fw
            .select_replica_with("140.221.65.69", "lfn://x/1GB", &mut policy, now)
            .unwrap();
        assert!(s.chosen < 2);
    }
}

#[test]
fn nws_probes_and_gridftp_disagree_as_in_figures_1_and_2() {
    let (_, result) = campaign(3);
    for pair in Pair::ALL {
        let s = fig01_02(&result, pair);
        let nws_max = s.nws.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        let ftp: Vec<f64> = s.gridftp.iter().map(|&(_, v)| v).collect();
        let ftp_max = ftp.iter().copied().fold(0.0f64, f64::max);
        let ftp_min = ftp.iter().copied().fold(f64::INFINITY, f64::min);
        // The paper's qualitative claims:
        assert!(nws_max < 0.3, "NWS stays under 0.3 MB/s ({nws_max})");
        assert!(ftp_max > 5.0, "GridFTP reaches multi-MB/s ({ftp_max})");
        assert!(
            ftp_max / ftp_min > 2.0,
            "GridFTP shows real spread ({ftp_min}..{ftp_max})"
        );
    }
}

#[test]
fn dynamic_selector_streams_campaign_logs() {
    let (cfg, result) = campaign(3);
    let obs = observation_series(&result, Pair::IsiAnl);
    let mut sel = DynamicSelector::new(full_suite(), 15);
    for o in &obs {
        sel.observe(*o);
    }
    assert_eq!(sel.observed(), obs.len());
    let (used, pred) = sel
        .predict(cfg.epoch_unix + 4 * 86_400, 500 * PAPER_MB)
        .expect("enough history");
    assert!(!used.is_empty());
    assert!(pred > 0.0 && pred.is_finite());
}
