//! Wire/disk format integration: ULM logs, LDIF entries and the GridFTP
//! control protocol all round-trip on real campaign data.

use wanpred_core::gridftp::protocol::{format as fmt_cmd, parse as parse_cmd, Command};
use wanpred_core::infod::{Entry, GridFtpPerfProvider, ProviderConfig};
use wanpred_core::prelude::*;

fn short_campaign() -> CampaignResult {
    run_campaign(&CampaignConfig {
        seed: MasterSeed(77),
        duration: SimDuration::from_days(2),
        probes: false,
        ..CampaignConfig::august(77)
    })
}

#[test]
fn every_campaign_record_roundtrips_through_ulm() {
    let r = short_campaign();
    for log in [&r.lbl_log, &r.isi_log] {
        let doc = log.to_ulm_string();
        let back = TransferLog::from_ulm_str(&doc).unwrap();
        assert_eq!(back.len(), log.len());
        for (a, b) in log.records().iter().zip(back.records()) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.file_size, b.file_size);
            assert_eq!(a.start_unix, b.start_unix);
            assert!((a.total_time_s - b.total_time_s).abs() < 0.001);
            assert_eq!(a.streams, b.streams);
        }
        // The paper's size bound holds for every line.
        for line in doc.lines() {
            assert!(line.len() < 512, "{} bytes", line.len());
        }
    }
}

#[test]
fn every_provider_entry_roundtrips_through_ldif() {
    let r = short_campaign();
    let provider = GridFtpPerfProvider::from_snapshot(
        ProviderConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
        r.lbl_log.clone(),
    );
    for e in provider.build_entries(996_900_000) {
        let text = e.to_ldif();
        let back = Entry::from_ldif(&text).unwrap();
        assert_eq!(back, e, "LDIF roundtrip\n{text}");
    }
}

#[test]
fn control_protocol_commands_roundtrip() {
    let cmds = [
        Command::AuthGssapi,
        Command::User(":globus-mapping:".into()),
        Command::Sbuf(1_000_000),
        Command::OptsParallelism(8),
        Command::Spas,
        Command::Retr("/home/ftp/vazhkuda/500MB".into()),
        Command::EretPartial(0, 1_024, "/home/ftp/vazhkuda/1GB".into()),
    ];
    for c in cmds {
        assert_eq!(parse_cmd(&fmt_cmd(&c)).unwrap(), c);
    }
}

#[test]
fn protocol_session_negotiates_what_the_campaign_used() {
    // Drive a session with the workload's parameters and confirm the
    // negotiated plan matches what the campaign logs record.
    use wanpred_core::gridftp::server::standard_preamble;
    use wanpred_core::gridftp::Session;

    let storage = StorageServer::vintage_with_paper_fileset("x");
    let mut session = Session::new();
    let replies = standard_preamble(&mut session, &storage, 1_000_000, 8);
    assert!(replies.iter().all(|r| r.is_ok()));
    let (reply, plan) = session.handle(&Command::Retr("/home/ftp/vazhkuda/100MB".into()), &storage);
    assert_eq!(reply.code, 150);
    let plan = plan.unwrap();

    let r = short_campaign();
    let rec = r
        .lbl_log
        .records()
        .iter()
        .find(|rec| rec.file_name.ends_with("100MB"))
        .expect("100MB transferred in two days");
    assert_eq!(plan.streams, rec.streams);
    assert_eq!(plan.tcp_buffer, rec.tcp_buffer);
    assert_eq!(plan.bytes, rec.file_size);
    assert_eq!(plan.volume, rec.volume);
}
