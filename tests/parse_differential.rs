//! The parse hot path's acceptance gate: on real campaign output, the
//! zero-copy decode pipeline must be *byte-identical* to the allocating
//! oracle at every level — records, re-encoded documents, extracted
//! observation series, and full predictor-suite reports.
//!
//! Unit and property tests (`crates/logfmt/tests/proptest_ulm.rs`) cover
//! hostile inputs line by line; this test closes the loop end to end:
//! whatever the simulated GridFTP servers actually write, both paths
//! agree on all of it.

use wanpred_core::logfmt::ulm;
use wanpred_core::logfmt::{SalvageReason, TransferColumns, TransferLog};
use wanpred_core::predict::observations_from_ulm;
use wanpred_core::prelude::*;

fn config(seed: u64, days: u64) -> CampaignConfig {
    CampaignConfig {
        seed: MasterSeed(seed),
        duration: SimDuration::from_days(days),
        probes: seed % 2 == 0,
        ..CampaignConfig::august(seed)
    }
}

/// Parse `doc` with the allocating oracle decoder, line by line.
fn oracle_parse(doc: &str) -> TransferLog {
    let mut log = TransferLog::new();
    for line in doc.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        log.append(ulm::decode(t).expect("campaign output is well-formed"));
    }
    log
}

#[test]
fn campaign_documents_parse_identically_on_both_paths() {
    for seed in [42u64, 77] {
        let result = run_campaign(&config(seed, 2));
        for pair in Pair::ALL {
            let doc = result.log(pair).to_ulm_string();

            let oracle = oracle_parse(&doc);
            let rows = TransferLog::from_ulm_str(&doc).expect("borrowed path parses");
            let cols = TransferColumns::from_ulm_str(&doc).expect("columnar path parses");

            assert_eq!(
                oracle, rows,
                "seed {seed} {pair:?}: row-wise parse diverged"
            );
            assert_eq!(
                oracle,
                cols.to_log(),
                "seed {seed} {pair:?}: columnar parse diverged"
            );
            // Re-encoding is byte-identical too, so the paths are
            // interchangeable anywhere in a load/store cycle.
            assert_eq!(oracle.to_ulm_string(), doc);
            assert_eq!(cols.to_log().to_ulm_string(), doc);
        }
    }
}

#[test]
fn observation_ingest_matches_log_extraction_on_campaign_output() {
    let result = run_campaign(&config(42, 2));
    for pair in Pair::ALL {
        let log = result.log(pair);
        let doc = log.to_ulm_string();
        let direct = observations_from_ulm(&doc).expect("campaign output parses");
        let via_log = observations_from_log(&oracle_parse(&doc));
        assert_eq!(direct, via_log, "{pair:?}: ingest paths diverged");
        assert_eq!(direct.len(), log.len());
    }
}

#[test]
fn evaluation_reports_are_identical_through_either_ingest() {
    let result = run_campaign(&config(42, 2));
    let eval = Evaluation::builder().build();
    for pair in Pair::ALL {
        let doc = result.log(pair).to_ulm_string();
        let via_log = eval.run_log(&oracle_parse(&doc));
        let via_ulm = eval.run_ulm(&doc).expect("campaign output parses");
        // Byte-identical reports, predictor by predictor: serialize both
        // and compare the JSON so every outcome float is covered.
        let a = serde_json::to_string(&via_log).expect("serialize");
        let b = serde_json::to_string(&via_ulm).expect("serialize");
        assert_eq!(a, b, "{pair:?}: evaluation reports diverged");
    }
}

#[test]
fn salvage_quarantines_identically_after_corruption() {
    // Chaos-corrupted campaign output exercises the decoders' error
    // paths; the salvage layer (which now decodes borrowed) must keep
    // and quarantine exactly what a per-line oracle walk would.
    let result = run_campaign(&config(42, 2).with_chaos(0.08));
    for pair in Pair::ALL {
        let report = result.salvage(pair).expect("chaos was enabled");
        let salvaged = result.log(pair);
        assert_eq!(report.kept, salvaged.len());
        // Every quarantined parse failure must also fail the oracle,
        // with the same rendered reason.
        for q in &report.quarantined {
            if let SalvageReason::Parse(reason) = &q.reason {
                let (content, _) = wanpred_core::logfmt::check_line(&q.content);
                match ulm::decode(content) {
                    Err(e) => assert_eq!(&e.to_string(), reason, "{pair:?} line {}", q.line),
                    Ok(_) => panic!(
                        "{pair:?} line {}: quarantined as parse failure but oracle accepts: {}",
                        q.line, q.content
                    ),
                }
            }
        }
    }
}
