//! Acceptance test for the observability tentpole: metrics are keyed on
//! simulated time, so two campaigns with the same seed must export
//! byte-identical snapshots — even with fault injection, retries and
//! chaos corruption all switched on, and even across the rayon-parallel
//! evaluation path.

use wanpred_core::gridftp::RetryPolicy;
use wanpred_core::prelude::*;
use wanpred_core::simnet::fault::FaultConfig;

fn hostile_campaign(seed: u64) -> CampaignResult {
    run_campaign(
        &CampaignConfig::builder(seed)
            .duration_days(3)
            .probes(false)
            .faults(FaultConfig::wan_default())
            .retry(RetryPolicy::wan_default())
            .chaos(0.1)
            .obs(ObsSink::enabled())
            .build(),
    )
}

#[test]
fn same_seed_campaigns_export_byte_identical_snapshots() {
    let a = hostile_campaign(77);
    let b = hostile_campaign(77);
    let sa = a.metrics.as_ref().expect("obs enabled");
    let sb = b.metrics.as_ref().expect("obs enabled");
    assert_eq!(sa, sb);
    // Byte-for-byte on both export formats, not just structural equality.
    assert_eq!(sa.to_json(), sb.to_json());
    assert_eq!(sa.to_ulm_lines(), sb.to_ulm_lines());
    // The snapshot is not trivially empty: the campaign recorded real
    // activity on every layer it instruments.
    assert!(sa.counter("campaign.transfers") > 0);
    assert!(sa.counter("simnet.engine.events") > 0);
    assert!(sa.counter("gridftp.transfers.completed") > 0);
}

#[test]
fn coalloc_campaigns_export_byte_identical_snapshots() {
    // The co-allocation path has its own instrument points (stripes,
    // rebalances, salvaged bytes, blacklist churn); they must be as
    // replayable as the rest of the stack, faults and chaos included.
    let run = || {
        run_campaign(
            &CampaignConfig::builder(19)
                .duration_days(3)
                .probes(false)
                .faults(FaultConfig {
                    kill_mean_interarrival: wanpred_core::simnet::time::SimDuration::from_mins(40),
                    ..FaultConfig::wan_default()
                })
                .chaos(0.1)
                .coalloc(2)
                .obs(ObsSink::enabled())
                .build(),
        )
    };
    let a = run();
    let b = run();
    let sa = a.metrics.as_ref().expect("obs enabled");
    let sb = b.metrics.as_ref().expect("obs enabled");
    assert_eq!(sa.to_json(), sb.to_json());
    assert_eq!(sa.to_ulm_lines(), sb.to_ulm_lines());
    // The co-allocation layer recorded real activity, and the snapshot
    // counters agree with the campaign's own summary.
    let s = a.coalloc.as_ref().expect("coalloc mode");
    assert_eq!(sa.counter("replica.coalloc.completed"), s.completed as u64);
    let stripes = sa
        .histogram("replica.coalloc.stripes")
        .expect("stripe distribution recorded");
    assert_eq!(stripes.sum, s.stripes);
    assert_eq!(stripes.count, s.completed as u64);
    assert_eq!(sa.counter("replica.coalloc.rebalances"), s.rebalances);
    assert!(sa.counter("replica.broker.selections") > 0);
}

#[test]
fn same_seed_load_generator_runs_export_byte_identical_snapshots() {
    // The serving layer's open-loop driver runs on sim time, so a load
    // run is a pure function of its seed: arrivals, filter choices,
    // coalescing, shedding and every obs emission must replay exactly.
    use std::sync::Arc;
    use wanpred_core::infod::{
        run_open_loop, Dn, GridFtpPerfProvider, Gris, OpenLoopConfig, ProviderConfig, ServeConfig,
        ShardedServer,
    };
    use wanpred_core::testbed::{serving_filters, serving_now_unix, serving_sites};

    let load_snapshot = |seed: u64| {
        let sites = serving_sites(4, 15, 3);
        let now = serving_now_unix(15);
        let sink = ObsSink::enabled();
        let mut server = ShardedServer::new(ServeConfig {
            admission: Some(Default::default()),
            ..ServeConfig::default()
        });
        server.set_obs(sink.clone());
        for s in &sites {
            let mut g = Gris::new(Dn::parse("o=grid").unwrap());
            g.register_provider(Box::new(GridFtpPerfProvider::from_snapshot(
                ProviderConfig::new(&s.host, &s.address),
                s.log.clone(),
            )));
            server.register_site(s.host.clone(), u64::MAX, Arc::new(g), now);
        }
        server.refresh(now);
        run_open_loop(
            &server,
            &OpenLoopConfig {
                seed,
                rate_per_sec: 1_500.0,
                duration_secs: 3,
                start_unix: now,
                filters: serving_filters(&sites),
            },
            |sec| server.refresh(sec),
        );
        sink.snapshot()
    };
    let a = load_snapshot(21);
    let b = load_snapshot(21);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_ulm_lines(), b.to_ulm_lines());
    assert!(a.counter("infod.serve.inquiries") > 1_000);
    assert!(a.counter("infod.serve.cache_hits") > 0);
    // A different seed is a different workload.
    assert_ne!(a.to_json(), load_snapshot(22).to_json());
}

#[test]
fn different_seeds_export_different_snapshots() {
    let a = hostile_campaign(77);
    let b = hostile_campaign(78);
    let sa = a.metrics.as_ref().expect("obs enabled");
    let sb = b.metrics.as_ref().expect("obs enabled");
    assert_ne!(sa.to_json(), sb.to_json(), "snapshots must reflect the run");
}

#[test]
fn evaluation_metrics_are_replay_invariant() {
    // The predict layer's emissions are derived from log time, so feeding
    // the same salvaged log through two evaluations must produce equal
    // snapshots too.
    let r = hostile_campaign(42);
    let snap_of = || {
        let sink = ObsSink::enabled();
        let eval = Evaluation::builder().obs(sink.clone()).build();
        let _ = eval.run_log(r.log(Pair::LblAnl));
        sink.snapshot()
    };
    assert_eq!(snap_of().to_json(), snap_of().to_json());
}
