//! Acceptance tests for the sharded serving layer: answers must be
//! byte-identical to the unsharded oracle, every response must come from
//! a single refresh generation (the staleness-bug regression), overload
//! must shed deterministically with a typed rejection, and a dead
//! registrant must be served stale — correctly stamped — rather than
//! dropped or blocked on.

use std::sync::Arc;

use wanpred_core::infod::{
    run_open_loop, AdmissionConfig, CacheStatus, Dn, Entry, Error, Giis, GridFtpPerfProvider, Gris,
    InfoProvider, InquiryRequest, InquiryService, OpenLoopConfig, ProviderConfig, ProviderError,
    Registration, ServeConfig, ServedBy, ShardedServer,
};
use wanpred_core::testbed::{serving_filters, serving_now_unix, serving_sites};

fn site_grises(sites: usize, records: usize, seed: u64) -> Vec<(String, Arc<Gris>)> {
    serving_sites(sites, records, seed)
        .iter()
        .map(|s| {
            let mut g = Gris::new(Dn::parse("o=grid").unwrap());
            g.register_provider(Box::new(GridFtpPerfProvider::from_snapshot(
                ProviderConfig::new(&s.host, &s.address),
                s.log.clone(),
            )));
            (s.host.clone(), Arc::new(g))
        })
        .collect()
}

fn sorted_ldif(svc: &dyn InquiryService, filter: &str, now: u64) -> Vec<String> {
    let req = InquiryRequest::parse(filter, now).unwrap();
    let mut out: Vec<String> = svc
        .inquire(&req)
        .expect("inquiry answered")
        .entries
        .iter()
        .map(|e| e.to_ldif())
        .collect();
    out.sort();
    out
}

#[test]
fn sharded_answers_match_the_unsharded_oracle_byte_for_byte() {
    let grises = site_grises(9, 25, 4);
    let now = serving_now_unix(25);

    let server = ShardedServer::new(ServeConfig::default());
    let oracle = Giis::new("oracle");
    for (host, g) in &grises {
        server.register_site(host.clone(), u64::MAX, g.clone(), now);
        oracle.register_service(
            Registration {
                id: host.clone(),
                ttl_secs: u64::MAX,
            },
            g.clone(),
            now,
        );
    }
    server.refresh(now);

    let mut nonempty = 0;
    for f in serving_filters(&serving_sites(9, 25, 4)) {
        for t in [now, now + 3] {
            let a = sorted_ldif(&server, &f, t);
            assert_eq!(a, sorted_ldif(&oracle, &f, t), "diverged on {f} at {t}");
            nonempty += usize::from(!a.is_empty());
        }
    }
    assert!(nonempty > 6, "the pool exercised real answers");
}

/// The regression the snapshot read path exists for: a provider whose
/// every materialization is tagged with a refresh-generation marker;
/// concurrent readers hammering the server across refreshes must never
/// observe a response mixing two generations — under the old inline
/// `&mut self` refresh a filter could see entries from both sides of a
/// mid-refresh window.
struct GenerationMarked {
    calls: u64,
    entries: usize,
}

impl InfoProvider for GenerationMarked {
    fn name(&self) -> &str {
        "generation-marked"
    }
    fn provide(&mut self, _now: u64) -> Result<Vec<Entry>, ProviderError> {
        self.calls += 1;
        Ok((0..self.entries)
            .map(|i| {
                let mut e = Entry::new(Dn::parse(&format!("cn=e{i}, o=grid")).unwrap());
                e.add("objectclass", "GenProbe");
                e.add("generation", self.calls.to_string());
                e
            })
            .collect())
    }
    fn ttl_secs(&self) -> u64 {
        1 // re-provide on every advancing-second refresh
    }
}

#[test]
fn responses_never_mix_refresh_generations() {
    let mut g = Gris::new(Dn::parse("o=grid").unwrap());
    g.register_provider(Box::new(GenerationMarked {
        calls: 0,
        entries: 50,
    }));
    let server = ShardedServer::new(ServeConfig {
        cache_ttl_secs: 0, // force the filter path every read
        ..ServeConfig::default()
    });
    server.register_site("gen", u64::MAX, Arc::new(g), 0);
    server.refresh(0);

    let rounds = 400u64;
    std::thread::scope(|scope| {
        let server = &server;
        let readers: Vec<_> = (0..2)
            .map(|r| {
                scope.spawn(move || {
                    let mut observed = Vec::new();
                    for t in 0..rounds {
                        let req = InquiryRequest::parse("(objectclass=GenProbe)", t + r).unwrap();
                        let resp = server.inquire(&req).unwrap();
                        assert_eq!(resp.entries.len(), 50);
                        let gens: Vec<&str> = resp
                            .entries
                            .iter()
                            .filter_map(|e| e.get("generation"))
                            .collect();
                        let first = gens[0];
                        assert!(
                            gens.iter().all(|g| *g == first),
                            "response mixed refresh generations: {gens:?}"
                        );
                        observed.push(first.parse::<u64>().unwrap());
                    }
                    observed
                })
            })
            .collect();
        for t in 1..=rounds {
            server.refresh(t);
        }
        for r in readers {
            let observed = r.join().unwrap();
            // Readers really did span many distinct refresh generations.
            let (min, max) = (
                observed.iter().min().unwrap(),
                observed.iter().max().unwrap(),
            );
            assert!(max > min, "reader never crossed a refresh boundary");
        }
    });
}

#[test]
fn overload_sheds_deterministically_with_a_typed_rejection() {
    let mk = || {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(GenerationMarked {
            calls: 0,
            entries: 3,
        }));
        let server = ShardedServer::new(ServeConfig {
            admission: Some(AdmissionConfig {
                servers: 1,
                mean_service_us: 2_000,
                max_queue: 4,
                coalesce: false,
                seed: 0,
            }),
            ..ServeConfig::default()
        });
        server.register_site("gen", u64::MAX, Arc::new(g), 1_000_000);
        server.refresh(1_000_000);
        server
    };
    let cfg = OpenLoopConfig {
        seed: 11,
        rate_per_sec: 2_000.0, // 4x the 500/s modeled capacity
        duration_secs: 3,
        start_unix: 1_000_000,
        filters: vec!["(objectclass=GenProbe)".into(), "(cn=e1)".into()],
    };
    let a = run_open_loop(&mk(), &cfg, |_| {});
    let b = run_open_loop(&mk(), &cfg, |_| {});
    assert!(a.shed > 0, "over-capacity stream must shed");
    assert!(a.answered > 0, "admitted work still answers");
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.latencies_us, b.latencies_us);
    assert_eq!(a.offered, a.answered + a.shed, "no inquiry vanished");

    // The rejection is a typed error the caller can match on, not a stall.
    let server = mk();
    let req = InquiryRequest::parse("(objectclass=GenProbe)", 1_000_000).unwrap();
    let mut saw_overload = false;
    for _ in 0..50 {
        match server.inquire(&req) {
            Ok(_) => {}
            Err(Error::Overloaded { queued, limit }) => {
                assert_eq!(queued, limit);
                saw_overload = true;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(saw_overload, "hammering one instant must hit the queue cap");
}

#[test]
fn dead_registrant_is_served_stale_with_an_exact_stamp() {
    let grises = site_grises(2, 15, 8);
    let now = serving_now_unix(15);
    let server = ShardedServer::new(ServeConfig::default());
    server.register_site(grises[0].0.clone(), 40, grises[0].1.clone(), now);
    server.register_site(grises[1].0.clone(), u64::MAX, grises[1].1.clone(), now);
    let dead = format!("(&(objectclass=GridFTPPerfInfo)(hostname={}))", grises[0].0);

    let mut last_live = now;
    for t in now..now + 100 {
        let live = server.live_sites(t).iter().any(|s| s == &grises[0].0);
        server.refresh(t);
        let resp = server
            .inquire(&InquiryRequest::parse(&dead, t).unwrap())
            .expect("serve-stale never errors");
        assert!(!resp.entries.is_empty(), "dead site dropped at t={t}");
        if live {
            last_live = t;
            assert_eq!(resp.staleness_secs, 0);
        } else {
            assert_eq!(resp.staleness_secs, t - last_live, "wrong stamp at t={t}");
            for e in &resp.entries {
                assert_eq!(
                    e.get("stalenesssecs"),
                    Some((t - last_live).to_string().as_str())
                );
            }
        }
    }
    assert!(now + 99 - last_live > 50, "the lease never died");
}

#[test]
fn cache_and_shard_provenance_is_reported() {
    let grises = site_grises(3, 10, 5);
    let now = serving_now_unix(10);
    let server = ShardedServer::new(ServeConfig::default());
    for (host, g) in &grises {
        server.register_site(host.clone(), u64::MAX, g.clone(), now);
    }
    server.refresh(now);

    let req = InquiryRequest::parse("(objectclass=GridFTPPerfInfo)", now).unwrap();
    let first = server.inquire(&req).unwrap();
    assert_eq!(first.provenance.source, ServedBy::ShardedServer);
    assert_eq!(first.provenance.cache, CacheStatus::Miss);
    assert!(!first.provenance.shards.is_empty());
    let again = server.inquire(&req).unwrap();
    assert_eq!(again.provenance.cache, CacheStatus::Hit);
    assert_eq!(again.entries.len(), first.entries.len());
}
