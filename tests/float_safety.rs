//! NaN robustness of the replay path.
//!
//! A fault-injected or corrupt log can yield a NaN bandwidth observation
//! (e.g. a zero-duration or unparsable record). Every predictor sort used
//! to order on `partial_cmp().expect(..)`, so one such observation
//! aborted the whole 30-predictor replay. The sorts are now
//! `f64::total_cmp` — these regressions feed NaN all the way through
//! the full log replay and must complete without panicking.

use wanpred_core::prelude::*;
use wanpred_logfmt::sample_record;

/// A log of `n` well-formed records on one (source, host) pair, with a
/// NaN-bandwidth record spliced in after the training window so it is
/// both an evaluation target and part of later histories.
fn log_with_nan(n: usize) -> TransferLog {
    let mut log = TransferLog::new();
    for i in 0..n {
        let mut r = sample_record();
        r.start_unix += (i as u64) * 600;
        r.end_unix = r.start_unix + 110;
        r.file_size = 1_000_000_000 + (i as u64 % 7) * 50_000_000;
        if i == 20 {
            // bandwidth_kbs() = size / NaN = NaN.
            r.total_time_s = f64::NAN;
        }
        log.append(r);
    }
    log
}

#[test]
fn evaluate_log_survives_a_nan_observation() {
    let log = log_with_nan(40);
    let eval = Evaluation::builder().build();
    let reports = eval.run_log(&log);
    assert_eq!(reports.len(), eval.predictors().len());
    assert!(!reports.is_empty());
    // The evaluation saw targets on both sides of the NaN record.
    assert!(reports.iter().any(|r| !r.outcomes.is_empty()));
}

#[test]
fn dynamic_selector_survives_a_nan_observation() {
    let mut sel = DynamicSelector::new(full_suite(), 5);
    for i in 0..30u64 {
        let mut bw = 5_000.0 + (i % 5) as f64 * 100.0;
        if i == 12 {
            bw = f64::NAN;
        }
        sel.observe(Observation {
            at_unix: 996_642_000 + i * 600,
            file_size: 1_000_000_000,
            bandwidth_kbs: bw,
            streams: 1,
            tcp_buffer: 0,
        });
    }
    // Ranking by running MAPE must stay total even though one candidate
    // history is NaN-tainted; prediction must not panic.
    let _ = sel.predict(996_642_000 + 31 * 600, 1_000_000_000);
}
