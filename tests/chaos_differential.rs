//! Differential acceptance tests for the corruption-chaos harness: the
//! paper's prediction pipeline must keep working on logs that survived
//! real damage. A campaign is run clean and with the seeded injector at a
//! realistic corruption rate; the salvaged logs must preserve both the
//! record stream (≥95% recovery at ≤5% damage) and the prediction quality
//! (per-predictor MAPE within 2 percentage points of clean).

use wanpred_core::prelude::*;

fn base_config(days: u64) -> CampaignConfig {
    CampaignConfig {
        seed: MasterSeed(2001),
        duration: SimDuration::from_days(days),
        probes: false,
        ..CampaignConfig::august(2001)
    }
}

/// Suite MAPEs keyed by predictor name.
fn mapes(log: &TransferLog) -> Vec<(String, Option<f64>)> {
    let reports = Evaluation::builder().build().run_log(log);
    reports
        .into_iter()
        .map(|r| {
            let m = r.mape();
            (r.name, m)
        })
        .collect()
}

#[test]
fn five_percent_corruption_keeps_predictors_within_two_points() {
    let clean = run_campaign(&base_config(30));
    let chaotic = run_campaign(&base_config(30).with_chaos(0.05));

    for pair in Pair::ALL {
        let salvage = chaotic.salvage(pair).expect("chaos was enabled");
        let original = clean.log(pair).len();
        let kept = chaotic.log(pair).len();
        assert_eq!(salvage.kept, kept);
        assert!(
            kept as f64 >= 0.95 * original as f64,
            "{}: salvaged {kept} of {original} records",
            pair.label()
        );

        // Every predictor that answers on both logs must land within two
        // percentage points of its clean-log error.
        let a = mapes(clean.log(pair));
        let b = mapes(chaotic.log(pair));
        assert_eq!(a.len(), b.len());
        for ((name, ma), (name_b, mb)) in a.iter().zip(&b) {
            assert_eq!(name, name_b);
            if let (Some(x), Some(y)) = (ma, mb) {
                assert!(
                    (x - y).abs() < 2.0,
                    "{}: predictor {name} clean MAPE {x:.2} vs salvaged {y:.2}",
                    pair.label()
                );
            }
        }
    }
}

#[test]
fn chaos_replays_byte_identical_from_the_seed() {
    let cfg = base_config(2).with_chaos(0.05);
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    for pair in Pair::ALL {
        // Byte-identical salvaged documents, not just equal record lists.
        assert_eq!(a.log(pair).to_ulm_string(), b.log(pair).to_ulm_string());
        assert_eq!(a.salvage(pair), b.salvage(pair));
    }
    // A different campaign seed produces different damage.
    let c = run_campaign(
        &CampaignConfig {
            seed: MasterSeed(2002),
            ..base_config(2)
        }
        .with_chaos(0.05),
    );
    assert_ne!(
        a.log(Pair::LblAnl).to_ulm_string(),
        c.log(Pair::LblAnl).to_ulm_string()
    );
}

#[test]
fn chaos_coalloc_never_double_counts_a_byte_range() {
    // Under the aggressive kill schedule plus log corruption, the
    // co-allocator keeps re-planning dead stripes' remaining bytes onto
    // survivors. The invariant that failover must never violate: every
    // completed transfer's covered ranges tile [0, size) exactly — no
    // byte fetched twice, none dropped — and the whole chaotic history
    // replays byte-identically from the seed.
    use wanpred_core::simnet::fault::FaultConfig;
    use wanpred_core::simnet::time::SimDuration as SimDur;

    // No retry policy: the first kill is a stripe's death, so every
    // landed fault exercises the failover re-planning path.
    let cfg = || {
        CampaignConfig::builder(2003)
            .duration_days(3)
            .probes(false)
            .faults(FaultConfig {
                kill_mean_interarrival: SimDur::from_mins(40),
                ..FaultConfig::wan_default()
            })
            .chaos(0.1)
            .coalloc(2)
            .build()
    };
    let a = run_campaign(&cfg());
    let s = a.coalloc.as_ref().expect("coalloc mode");
    assert!(s.completed > 10, "campaign moved too few files");
    assert!(
        s.rebalances > 0 && s.bytes_salvaged > 0,
        "kill schedule never exercised failover"
    );
    assert_eq!(
        s.tiling_violations, 0,
        "a completed transfer double-fetched or dropped a byte range"
    );
    let b = run_campaign(&cfg());
    assert_eq!(a.coalloc, b.coalloc);
    for pair in Pair::ALL {
        assert_eq!(a.log(pair).to_ulm_string(), b.log(pair).to_ulm_string());
        assert_eq!(a.salvage(pair), b.salvage(pair));
    }
}

#[test]
fn dead_information_source_still_yields_a_selection() {
    use std::sync::Arc;
    use wanpred_core::infod::{Dn, GridFtpPerfProvider, ProviderConfig};
    use wanpred_core::replica::{GiisPerfSource, PhysicalReplica};

    // A GRIS whose provider reads a log file that never existed: every
    // refresh fails, there is no cache to fall back on, and the broker
    // must still return a selection rather than panic.
    let mut gris = Gris::new(Dn::parse("o=grid").expect("constant dn"));
    gris.register_provider(Box::new(GridFtpPerfProvider::from_file(
        ProviderConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
        std::path::Path::new("/nonexistent/never-written.ulm"),
    )));
    let giis = Arc::new(Giis::new("top"));
    giis.register_service(
        Registration {
            id: "lbl".into(),
            ttl_secs: 3_600,
        },
        Arc::new(gris),
        1_000,
    );

    let reps = vec![
        PhysicalReplica {
            host: "dpsslx04.lbl.gov".into(),
            path: "/home/ftp/vazhkuda/100MB".into(),
            size: 102_400_000,
        },
        PhysicalReplica {
            host: "jet.isi.edu".into(),
            path: "/home/ftp/vazhkuda/100MB".into(),
            size: 102_400_000,
        },
    ];
    let mut broker = Broker::new(GiisPerfSource::new(giis));
    let mut policy = SelectionPolicy::predicted_bandwidth();
    let sel = broker
        .select("140.221.65.69", &reps, &mut policy, 1_200)
        .expect("a selection is made even with zero information");
    assert!(sel.scores.iter().all(|s| s.predicted_kbs.is_none()));
    // The empty candidate list is a clean error, not a panic.
    assert!(broker.select("x", &[], &mut policy, 0).is_err());
}
