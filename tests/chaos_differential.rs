//! Differential acceptance tests for the corruption-chaos harness: the
//! paper's prediction pipeline must keep working on logs that survived
//! real damage. A campaign is run clean and with the seeded injector at a
//! realistic corruption rate; the salvaged logs must preserve both the
//! record stream (≥95% recovery at ≤5% damage) and the prediction quality
//! (per-predictor MAPE within 2 percentage points of clean).

use wanpred_core::prelude::*;

fn base_config(days: u64) -> CampaignConfig {
    CampaignConfig {
        seed: MasterSeed(2001),
        duration: SimDuration::from_days(days),
        probes: false,
        ..CampaignConfig::august(2001)
    }
}

/// Suite MAPEs keyed by predictor name.
fn mapes(log: &TransferLog) -> Vec<(String, Option<f64>)> {
    let reports = Evaluation::builder().build().run_log(log);
    reports
        .into_iter()
        .map(|r| {
            let m = r.mape();
            (r.name, m)
        })
        .collect()
}

#[test]
fn five_percent_corruption_keeps_predictors_within_two_points() {
    let clean = run_campaign(&base_config(30));
    let chaotic = run_campaign(&base_config(30).with_chaos(0.05));

    for pair in Pair::ALL {
        let salvage = chaotic.salvage(pair).expect("chaos was enabled");
        let original = clean.log(pair).len();
        let kept = chaotic.log(pair).len();
        assert_eq!(salvage.kept, kept);
        assert!(
            kept as f64 >= 0.95 * original as f64,
            "{}: salvaged {kept} of {original} records",
            pair.label()
        );

        // Every predictor that answers on both logs must land within two
        // percentage points of its clean-log error.
        let a = mapes(clean.log(pair));
        let b = mapes(chaotic.log(pair));
        assert_eq!(a.len(), b.len());
        for ((name, ma), (name_b, mb)) in a.iter().zip(&b) {
            assert_eq!(name, name_b);
            if let (Some(x), Some(y)) = (ma, mb) {
                assert!(
                    (x - y).abs() < 2.0,
                    "{}: predictor {name} clean MAPE {x:.2} vs salvaged {y:.2}",
                    pair.label()
                );
            }
        }
    }
}

#[test]
fn chaos_replays_byte_identical_from_the_seed() {
    let cfg = base_config(2).with_chaos(0.05);
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    for pair in Pair::ALL {
        // Byte-identical salvaged documents, not just equal record lists.
        assert_eq!(a.log(pair).to_ulm_string(), b.log(pair).to_ulm_string());
        assert_eq!(a.salvage(pair), b.salvage(pair));
    }
    // A different campaign seed produces different damage.
    let c = run_campaign(
        &CampaignConfig {
            seed: MasterSeed(2002),
            ..base_config(2)
        }
        .with_chaos(0.05),
    );
    assert_ne!(
        a.log(Pair::LblAnl).to_ulm_string(),
        c.log(Pair::LblAnl).to_ulm_string()
    );
}

#[test]
fn dead_information_source_still_yields_a_selection() {
    use parking_lot::Mutex;
    use std::sync::Arc;
    use wanpred_core::infod::{Dn, GridFtpPerfProvider, ProviderConfig};
    use wanpred_core::replica::{GiisPerfSource, PhysicalReplica};

    // A GRIS whose provider reads a log file that never existed: every
    // refresh fails, there is no cache to fall back on, and the broker
    // must still return a selection rather than panic.
    let mut gris = Gris::new(Dn::parse("o=grid").expect("constant dn"));
    gris.register_provider(Box::new(GridFtpPerfProvider::from_file(
        ProviderConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
        std::path::Path::new("/nonexistent/never-written.ulm"),
    )));
    let giis = Arc::new(Mutex::new(Giis::new("top")));
    giis.lock().register(
        Registration {
            id: "lbl".into(),
            ttl_secs: 3_600,
        },
        Arc::new(Mutex::new(gris)),
        1_000,
    );

    let reps = vec![
        PhysicalReplica {
            host: "dpsslx04.lbl.gov".into(),
            path: "/home/ftp/vazhkuda/100MB".into(),
            size: 102_400_000,
        },
        PhysicalReplica {
            host: "jet.isi.edu".into(),
            path: "/home/ftp/vazhkuda/100MB".into(),
            size: 102_400_000,
        },
    ];
    let mut broker = Broker::new(GiisPerfSource::new(giis));
    let mut policy = SelectionPolicy::predicted_bandwidth();
    let sel = broker
        .select("140.221.65.69", &reps, &mut policy, 1_200)
        .expect("a selection is made even with zero information");
    assert!(sel.scores.iter().all(|s| s.predicted_kbs.is_none()));
    // The empty candidate list is a clean error, not a panic.
    assert!(broker.select("x", &[], &mut policy, 0).is_err());
}
