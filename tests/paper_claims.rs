//! The paper's headline quantitative claims, checked against a full
//! two-week reproduction campaign. These are the assertions EXPERIMENTS.md
//! reports; if calibration drifts, this file fails first.

use wanpred_core::prelude::*;
use wanpred_core::testbed::{observation_series, summary};
use wanpred_gridftp::{measure_logging_cost, PAPER_LOGGING_OVERHEAD_MS};
use wanpred_logfmt::sample_record;

fn august() -> (CampaignConfig, CampaignResult) {
    let cfg = CampaignConfig::august(42);
    let r = run_campaign(&cfg);
    (cfg, r)
}

#[test]
fn figure7_transfer_counts_in_band() {
    // Paper: 350-450 transfers per pair per two-week campaign, with the
    // 10MB class the most populous and the 1GB class the smallest.
    let (_, r) = august();
    for pair in Pair::ALL {
        let c = fig07(&r, pair);
        assert!(
            (300..=520).contains(&c.all),
            "{}: {} transfers",
            c.pair,
            c.all
        );
        assert_eq!(c.per_class.iter().sum::<usize>(), c.all);
        let max_class = *c.per_class.iter().max().unwrap();
        assert_eq!(c.per_class[0], max_class, "10MB class most populous");
        let min_class = *c.per_class.iter().min().unwrap();
        assert_eq!(c.per_class[3], min_class, "1GB class least populous");
    }
}

#[test]
fn figures_1_2_bandwidth_regimes() {
    // Paper: NWS < 0.3 MB/s; GridFTP ~1.5-10.2 MB/s with large spread.
    let (_, r) = august();
    for pair in Pair::ALL {
        let s = fig01_02(&r, pair);
        let nws_max = s.nws.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        assert!(nws_max < 0.3, "{}: NWS max {nws_max}", pair.label());
        let ftp: Vec<f64> = s.gridftp.iter().map(|&(_, v)| v).collect();
        let max = ftp.iter().copied().fold(0.0f64, f64::max);
        let min = ftp.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max > 8.0 && max < 14.0, "{}: max {max}", pair.label());
        assert!(min < 2.5, "{}: min {min}", pair.label());
        // GridFTP mean far above the NWS ceiling (the Figures 1-2 gap).
        let mean = ftp.iter().sum::<f64>() / ftp.len() as f64;
        assert!(
            mean > 10.0 * nws_max,
            "{}: mean {mean} vs nws {nws_max}",
            pair.label()
        );
    }
}

#[test]
fn simple_techniques_at_worst_about_25_percent_on_large_classes() {
    // Paper §6.2: "even simple techniques are at worst off by about 25%"
    // (their per-class figures cover >=100MB well; we allow a modest
    // band above 25 for seed variance).
    let (_, r) = august();
    for pair in Pair::ALL {
        let s = summary(&r, pair);
        assert!(
            s.worst_large_class_mape < 40.0,
            "{}: worst large-class MAPE {}",
            pair.label(),
            s.worst_large_class_mape
        );
    }
}

#[test]
fn classification_reduces_error_for_most_predictors() {
    // Paper §4.3/Figures 12-13: 5-10% average improvement from file-size
    // classification; in our reproduction the effect is larger because
    // the size-bandwidth correlation is strong.
    let (_, r) = august();
    for pair in Pair::ALL {
        let cells = fig12_13(&r, pair);
        let improved = cells
            .iter()
            .filter(|c| match (c.unclassified, c.classified) {
                (Some(u), Some(cl)) => cl < u,
                _ => false,
            })
            .count();
        assert!(
            improved >= 13,
            "{}: only {improved}/15 predictors improved",
            pair.label()
        );
        let s = summary(&r, pair);
        assert!(
            s.mean_classification_benefit > 5.0,
            "{}: benefit {} points",
            pair.label(),
            s.mean_classification_benefit
        );
    }
}

#[test]
fn large_files_more_predictable_than_small() {
    // Paper §6.2: "large file transfers seem to be more predictable than
    // smaller file transfers."
    let (_, r) = august();
    for pair in Pair::ALL {
        let mean_mape = |class| {
            let cells = fig08_11(&r, pair, class);
            let v: Vec<f64> = cells.iter().filter_map(|c| c.mape).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let small = mean_mape(SizeClass::C10MB);
        let big = mean_mape(SizeClass::C1GB);
        assert!(
            big < small,
            "{}: 1GB {} vs 10MB {}",
            pair.label(),
            big,
            small
        );
    }
}

#[test]
fn ar_models_do_not_beat_simple_means() {
    // Paper §6.2: "the ARIMA models do not see improved performance for
    // our data, although they are significantly more expensive."
    let (_, r) = august();
    for pair in Pair::ALL {
        let obs = observation_series(&r, pair);
        let reports = Evaluation::builder()
            .suite(paper_suite(true))
            .build()
            .run(&obs);
        let mape_of = |name: &str| {
            reports
                .iter()
                .find(|x| x.name == name)
                .and_then(|x| x.mape())
                .expect("predictor answered")
        };
        let ar = mape_of("AR+C")
            .min(mape_of("AR5d+C"))
            .min(mape_of("AR10d+C"));
        let avg = mape_of("AVG+C");
        // AR is not decisively better: no more than a couple points.
        assert!(ar > avg - 3.0, "{}: AR {} vs AVG {}", pair.label(), ar, avg);
    }
}

#[test]
fn windowing_shows_no_decisive_advantage() {
    // Paper §6.2: "we did not see a noticeable advantage in limiting
    // either average or median techniques by sliding window or time
    // frames" (controlled workload).
    let (_, r) = august();
    let obs = observation_series(&r, Pair::LblAnl);
    let reports = Evaluation::builder()
        .suite(paper_suite(true))
        .build()
        .run(&obs);
    let mape_of = |name: &str| {
        reports
            .iter()
            .find(|x| x.name == name)
            .and_then(|x| x.mape())
            .expect("answered")
    };
    let all = mape_of("AVG+C");
    for windowed in ["AVG5+C", "AVG15+C", "AVG25+C", "AVG25hr+C"] {
        let w = mape_of(windowed);
        assert!(
            (w - all).abs() < 12.0,
            "{windowed} ({w}) vs AVG ({all}) differ wildly"
        );
    }
}

#[test]
fn logging_overhead_far_below_papers_25ms() {
    let cost = measure_logging_cost(&sample_record(), 2_000);
    assert!(
        cost.mean_ms < PAPER_LOGGING_OVERHEAD_MS / 10.0,
        "logging {} ms/record",
        cost.mean_ms
    );
    assert!(cost.entry_bytes < 512);
}

#[test]
fn relative_best_and_worst_tallies_anticorrelate_weakly() {
    // Paper §6.2: predictors that are most often best also tend to be
    // often worst (high-variance techniques), "median-based predictors
    // seemed to vary more". We assert the structural property: the
    // best-tally leader is not uniformly dominant (its worst tally is
    // nonzero on at least one class).
    let (_, r) = august();
    let mut leader_sometimes_worst = false;
    for class in [SizeClass::C100MB, SizeClass::C500MB, SizeClass::C1GB] {
        let rel = fig14_21(&r, Pair::IsiAnl, class);
        if rel.iter().all(|x| x.targets == 0) {
            continue;
        }
        let best = rel
            .iter()
            .max_by(|a, b| a.best_pct.partial_cmp(&b.best_pct).unwrap())
            .unwrap();
        if best.worst_pct > 0.0 {
            leader_sometimes_worst = true;
        }
    }
    assert!(
        leader_sometimes_worst,
        "no class showed the best-tally leader ever being worst"
    );
}
