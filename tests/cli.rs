//! End-to-end tests of the `wanpred` command-line tool: drive the real
//! binary through a campaign → evaluate → predict → provider → select
//! session on a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn wanpred(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wanpred"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn out_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("wanpred-cli-{tag}"));
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).to_string()
}

#[test]
fn campaign_then_evaluate_then_predict() {
    let dir = out_dir("flow");
    let dir_s = dir.to_str().expect("utf-8 temp path");

    // campaign: writes per-pair logs + probe CSVs.
    let o = wanpred(&["campaign", "--days", "3", "--seed", "7", "--out", dir_s]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let log_path = dir.join("lbl-anl.ulm");
    assert!(log_path.exists());
    assert!(dir.join("isi-anl-probes.csv").exists());
    let log_s = log_path.to_str().expect("utf-8");

    // evaluate: full table with the 30 variants.
    let o = wanpred(&["evaluate", "--log", log_s]);
    assert!(o.status.success());
    let text = stdout(&o);
    assert!(text.contains("AVG25+C"), "{text}");
    assert!(text.contains("MAPE %"));

    // evaluate restricted to one class.
    let o = wanpred(&["evaluate", "--log", log_s, "--class", "100mb"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("100MB class"));

    // predict: a 500 MB transfer.
    let o = wanpred(&["predict", "--log", log_s, "--size-mb", "500"]);
    assert!(o.status.success());
    let text = stdout(&o);
    assert!(text.contains("dynamic selection"), "{text}");
    assert!(
        text.contains("500MB class") || text.contains("500 MB"),
        "{text}"
    );
}

#[test]
fn provider_and_select() {
    let dir = out_dir("select");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let o = wanpred(&["campaign", "--days", "2", "--seed", "9", "--out", dir_s]);
    assert!(o.status.success());
    let lbl = dir.join("lbl-anl.ulm");
    let isi = dir.join("isi-anl.ulm");

    // provider: LDIF with the Figure 6 attribute family.
    let o = wanpred(&[
        "provider",
        "--log",
        lbl.to_str().unwrap(),
        "--host",
        "dpsslx04.lbl.gov",
        "--address",
        "131.243.2.11",
    ]);
    assert!(o.status.success());
    let ldif = stdout(&o);
    assert!(
        ldif.contains("dn: cn=140.221.65.69, hostname=dpsslx04.lbl.gov"),
        "{ldif}"
    );
    assert!(ldif.contains("avgrdbandwidth:"));
    assert!(ldif.contains("objectclass: GridFTPPerfInfo"));

    // select: a broker decision across both logs.
    let o = wanpred(&[
        "select",
        "--replica",
        &format!("{}:lbl.gov", lbl.display()),
        "--replica",
        &format!("{}:isi.edu", isi.display()),
        "--size-mb",
        "500",
        "--client",
        "140.221.65.69",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = stdout(&o);
    assert!(text.contains("-> "), "a choice is marked: {text}");
    assert!(text.contains("KB/s predicted"), "{text}");
}

#[test]
fn errors_are_reported_cleanly() {
    // Unknown subcommand.
    let o = wanpred(&["transmogrify"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown subcommand"));

    // Missing required argument.
    let o = wanpred(&["evaluate"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("missing --log"));

    // Nonexistent log file.
    let o = wanpred(&["evaluate", "--log", "/nonexistent/x.ulm"]);
    assert!(!o.status.success());

    // Bad class label.
    let dir = out_dir("err");
    let o = wanpred(&["campaign", "--days", "1", "--out", dir.to_str().unwrap()]);
    assert!(o.status.success());
    let log = dir.join("lbl-anl.ulm");
    let o = wanpred(&["evaluate", "--log", log.to_str().unwrap(), "--class", "2tb"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown class"));

    // Help exits zero.
    let o = wanpred(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("usage:"));
}
