//! Determinism guarantees: everything downstream of a seed is a pure
//! function of that seed. Reproducibility is what lets the evaluation
//! compare 30 predictors on *identical* histories.

use wanpred_core::prelude::*;

fn run(seed: u64, days: u64) -> CampaignResult {
    run_campaign(&CampaignConfig {
        seed: MasterSeed(seed),
        duration: SimDuration::from_days(days),
        ..CampaignConfig::august(seed)
    })
}

/// A faulty variant of [`run`]: same campaign plus the calibrated fault
/// profile and retry policy.
fn run_faulty(seed: u64, days: u64) -> CampaignResult {
    run_campaign(
        &CampaignConfig {
            seed: MasterSeed(seed),
            duration: SimDuration::from_days(days),
            ..CampaignConfig::august(seed)
        }
        .with_faults(),
    )
}

#[test]
fn identical_seeds_identical_everything() {
    let a = run(9, 2);
    let b = run(9, 2);
    assert_eq!(a.lbl_log, b.lbl_log);
    assert_eq!(a.isi_log, b.isi_log);
    assert_eq!(a.lbl_probes.len(), b.lbl_probes.len());
    for (x, y) in a.lbl_probes.iter().zip(&b.lbl_probes) {
        assert_eq!(x, y);
    }
    // And therefore identical evaluation results.
    let ra = Evaluation::builder().build().run_log(&a.lbl_log);
    let rb = Evaluation::builder().build().run_log(&b.lbl_log);
    for (x, y) in ra.iter().zip(&rb) {
        assert_eq!(x.mape(), y.mape(), "{}", x.name);
    }
}

#[test]
fn faulty_campaigns_replay_identically() {
    // Fault schedules, retry backoff jitter and resumed transfers are
    // all derived from the master seed: a faulty run replays bit for
    // bit, which is what makes fault scenarios debuggable at all.
    let a = run_faulty(9, 3);
    let b = run_faulty(9, 3);
    assert!(a.fault_events > 0);
    assert_eq!(a.lbl_log, b.lbl_log);
    assert_eq!(a.isi_log, b.isi_log);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.failed_transfers, b.failed_transfers);
    assert_eq!(a.lbl_probes.len(), b.lbl_probes.len());
    // And the injected faults actually change history relative to the
    // clean run of the same seed (on at least one path; short horizons
    // may leave the other untouched).
    let clean = run(9, 3);
    assert!(
        clean.lbl_log != a.lbl_log || clean.isi_log != a.isi_log,
        "faults left both logs untouched"
    );
}

#[test]
fn faulty_double_run_is_byte_identical() {
    // Stronger than structural equality: the exact ULM text and the
    // serialized CampaignResult must match byte for byte, so a re-run
    // can be diffed against an archived artifact. This is what the
    // BTreeMap decision paths and the modeled (wall-clock-free) logging
    // cost buy us — and what the tidy pass guards.
    let a = run_faulty(11, 2);
    let b = run_faulty(11, 2);

    let ulm_bytes = |log: &wanpred_core::logfmt::TransferLog| -> Vec<u8> {
        let mut s = String::new();
        for r in log.records() {
            s.push_str(&wanpred_core::logfmt::encode(r));
            s.push('\n');
        }
        s.into_bytes()
    };
    assert_eq!(ulm_bytes(&a.lbl_log), ulm_bytes(&b.lbl_log));
    assert_eq!(ulm_bytes(&a.isi_log), ulm_bytes(&b.isi_log));

    let ja = serde_json::to_string(&a).expect("serialize campaign result");
    let jb = serde_json::to_string(&b).expect("serialize campaign result");
    assert_eq!(ja.into_bytes(), jb.into_bytes());
}

#[test]
fn coalloc_faulty_campaigns_replay_byte_identically() {
    // The co-allocating client adds stripe planning, EWMA progress
    // monitoring, failover re-planning and blacklist decay on top of the
    // transfer manager — all of it keyed on sim time and seed-derived
    // randomness, so a faulty co-allocated campaign must replay bit for
    // bit like any other.
    use wanpred_core::gridftp::RetryPolicy;
    use wanpred_core::simnet::fault::FaultConfig;

    let cfg = || {
        CampaignConfig::builder(13)
            .duration_days(3)
            .probes(false)
            .faults(FaultConfig {
                kill_mean_interarrival: SimDuration::from_mins(40),
                ..FaultConfig::wan_default()
            })
            .retry(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::wan_default()
            })
            .coalloc(2)
            .build()
    };
    let a = run_campaign(&cfg());
    let b = run_campaign(&cfg());
    let sa = a.coalloc.as_ref().expect("coalloc mode");
    assert!(sa.completed > 0, "campaign moved no files");
    assert_eq!(sa.tiling_violations, 0, "byte range double-counted");
    assert_eq!(a.coalloc, b.coalloc);
    assert_eq!(a.lbl_log, b.lbl_log);
    assert_eq!(a.isi_log, b.isi_log);
    // Byte-for-byte on the serialized result, stripe counters included.
    let ja = serde_json::to_string(&a).expect("serialize campaign result");
    let jb = serde_json::to_string(&b).expect("serialize campaign result");
    assert_eq!(ja.into_bytes(), jb.into_bytes());
}

#[test]
fn different_seeds_different_histories() {
    let a = run(1, 2);
    let b = run(2, 2);
    assert_ne!(a.lbl_log, b.lbl_log);
}

#[test]
fn longer_run_extends_shorter_run() {
    // The first N transfers of a longer campaign equal the shorter
    // campaign's transfers: time evolution does not depend on the
    // horizon.
    let short = run(5, 2);
    let long = run(5, 4);
    let s = short.lbl_log.records();
    let l = &long.lbl_log.records()[..s.len()];
    // Transfers still in flight at the short horizon are absent from the
    // short log, so compare the common prefix minus the final entry.
    let n = s.len().saturating_sub(1);
    assert!(n > 10);
    assert_eq!(&s[..n], &l[..n]);
}

#[test]
fn august_and_december_produce_distinct_but_plausible_logs() {
    let aug = run_campaign(&CampaignConfig {
        duration: SimDuration::from_days(3),
        ..CampaignConfig::august(7)
    });
    let dec = run_campaign(&CampaignConfig {
        duration: SimDuration::from_days(3),
        ..CampaignConfig::december(7)
    });
    assert_ne!(aug.lbl_log, dec.lbl_log);
    // Timestamps live in their respective months.
    assert!(aug
        .lbl_log
        .records()
        .iter()
        .all(|r| (996_642_000..999_320_400).contains(&r.start_unix)));
    assert!(dec
        .lbl_log
        .records()
        .iter()
        .all(|r| r.start_unix >= 1_007_186_400));
}

#[test]
fn paper_suite_evaluation_is_pure() {
    // Evaluating twice over the same series gives identical reports
    // (predictors hold no hidden state).
    let r = run(11, 2);
    let obs = wanpred_core::testbed::observation_series(&r, Pair::IsiAnl);
    let suite = full_suite();
    let opts = EvalOptions::default();
    let sink = ObsSink::disabled();
    let e1 = Evaluation::replay(&obs, &suite, EvalEngine::Naive, opts, &sink);
    let e2 = Evaluation::replay(&obs, &suite, EvalEngine::Naive, opts, &sink);
    for (a, b) in e1.iter().zip(&e2) {
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        assert_eq!(a.mape(), b.mape());
    }
}
