//! Mechanical `--fix` rewrites. Tidy only rewrites what it can prove
//! value-equivalent:
//!
//! * NaN-safety: `a.partial_cmp(&b).unwrap()` and
//!   `a.partial_cmp(&b).expect("..")` become `a.total_cmp(&b)` —
//!   identical ordering on NaN-free input, total (and panic-free)
//!   otherwise. Forms that change semantics (`unwrap_or(..)`) are
//!   reported but never rewritten.
//! * Replay ordering: `.swap_remove(i)` becomes the ordered
//!   `.remove(i)` — same element returned, O(n) instead of O(1), which
//!   is the price of an iteration order independent of removal history.

/// Rewrite every fixable `partial_cmp` chain in `text`; returns the new
/// text and the number of rewrites applied.
pub fn fix_partial_cmp(text: &str) -> (String, usize) {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    let mut count = 0usize;
    while let Some(pos) = rest.find(".partial_cmp(") {
        let (head, tail) = rest.split_at(pos);
        out.push_str(head);
        let after_open = &tail[".partial_cmp(".len()..];
        let Some(close) = matching_paren(after_open) else {
            out.push_str(".partial_cmp(");
            rest = after_open;
            continue;
        };
        let args = &after_open[..close];
        let after_call = after_open[close + 1..].trim_start();
        if let Some(rem) = after_call.strip_prefix(".unwrap()") {
            out.push_str(".total_cmp(");
            out.push_str(args);
            out.push(')');
            rest = rem;
            count += 1;
        } else if let Some(exp) = after_call.strip_prefix(".expect(") {
            if let Some(ec) = matching_paren(exp) {
                out.push_str(".total_cmp(");
                out.push_str(args);
                out.push(')');
                rest = &exp[ec + 1..];
                count += 1;
            } else {
                out.push_str(".partial_cmp(");
                rest = after_open;
            }
        } else {
            out.push_str(".partial_cmp(");
            rest = after_open;
        }
    }
    out.push_str(rest);
    (out, count)
}

/// Rewrite every `.swap_remove(` call to the ordered `.remove(`;
/// returns the new text and the number of rewrites. `Vec::remove`
/// returns the same element, so call sites compile unchanged — the run
/// re-lints the rewritten file, which is what makes the fix idempotent
/// (a second `--fix` finds nothing left to rewrite).
pub fn fix_swap_remove(text: &str) -> (String, usize) {
    let count = text.matches(".swap_remove(").count();
    (text.replace(".swap_remove(", ".remove("), count)
}

/// Index of the `)` matching an already-open paren at position 0 of `s`,
/// skipping string literal contents.
fn matching_paren(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut depth = 1i32;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'"' => {
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrites_expect_form() {
        let src = r#"v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));"#;
        let (out, n) = fix_partial_cmp(src);
        assert_eq!(n, 1);
        assert_eq!(out, "v.sort_by(|a, b| a.total_cmp(b));");
    }

    #[test]
    fn rewrites_unwrap_form_with_nested_parens() {
        let src = "x.partial_cmp(&(y + f(z))).unwrap()";
        let (out, n) = fix_partial_cmp(src);
        assert_eq!(n, 1);
        assert_eq!(out, "x.total_cmp(&(y + f(z)))");
    }

    #[test]
    fn leaves_unwrap_or_and_bare_forms_alone() {
        for src in [
            "a.partial_cmp(&b).unwrap_or(Ordering::Equal)",
            "a.partial_cmp(&b)",
            "a.partial_cmp(&b).map(|o| o.reverse())",
        ] {
            let (out, n) = fix_partial_cmp(src);
            assert_eq!(n, 0);
            assert_eq!(out, src);
        }
    }

    #[test]
    fn swap_remove_rewrite_is_idempotent() {
        let src = "let ev = self.pending.swap_remove(idx);";
        let (out, n) = fix_swap_remove(src);
        assert_eq!(n, 1);
        assert_eq!(out, "let ev = self.pending.remove(idx);");
        let (again, n2) = fix_swap_remove(&out);
        assert_eq!(n2, 0);
        assert_eq!(again, out);
    }

    #[test]
    fn expect_message_with_parens_and_quotes() {
        let src = r#"m.partial_cmp(&n).expect("cmp (should) work")"#;
        let (out, n) = fix_partial_cmp(src);
        assert_eq!(n, 1);
        assert_eq!(out, "m.total_cmp(&n)");
    }
}
