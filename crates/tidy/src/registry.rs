//! The single rule registry.
//!
//! Rule ids used to be declared in three hand-synced places
//! (`rules::known_rule_ids`, `schema_check::rule_id`, `obs_check::rule_id`);
//! a new pass meant editing all three or silently shipping a rule whose
//! pragmas were rejected as "unknown". This module is now the only
//! authority: line rules contribute their ids straight from the
//! [`crate::rules`] table, and every cross-file and semantic pass declares
//! its id as a constant here. The pragma checker validates
//! `tidy: allow(<id>)` against [`known_rule_ids`], so an id missing from
//! the registry is itself a finding — there is no second list to drift.

use crate::rules;

/// Cross-file ULM/LDAP schema coherence ([`crate::schema_check`]).
pub const ULM_SCHEMA: &str = "ulm-schema";
/// Cross-file observability metric-name coherence ([`crate::obs_check`]).
pub const OBS_NAMES: &str = "obs-names";
/// Semantic: sim/replay code transitively reaching a nondeterminism
/// source through the call graph ([`crate::taint`]).
pub const DETERMINISM_TAINT: &str = "determinism-taint";
/// Semantic: panic sites transitively reachable from public library APIs
/// ([`crate::panics`]); supersedes the old per-line `panic-unwrap` rule.
pub const PANIC_PATH: &str = "panic-path";
/// Semantic: mixed unit-of-measure arithmetic ([`crate::units`]).
pub const UNIT_MISMATCH: &str = "unit-mismatch";
/// Meta: malformed / unknown / unjustified suppression pragmas.
pub const PRAGMA: &str = "pragma";

/// How a rule is implemented — drives documentation and SARIF metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Per-line pattern from the [`crate::rules`] table.
    Line,
    /// Cross-file coherence pass.
    CrossFile,
    /// Call-graph-based semantic pass.
    Semantic,
    /// About the lint machinery itself (pragma hygiene).
    Meta,
}

/// Registry entry: the id every pragma, JSON/SARIF report and doc table
/// refers to, plus a one-line summary.
pub struct RuleMeta {
    pub id: &'static str,
    pub kind: RuleKind,
    pub summary: &'static str,
}

/// Every rule the tidy pass can report, in stable order: line rules first
/// (table order), then cross-file, semantic, and meta rules.
pub fn all() -> Vec<RuleMeta> {
    let mut out: Vec<RuleMeta> = rules::rules()
        .iter()
        .map(|r| RuleMeta {
            id: r.id,
            kind: RuleKind::Line,
            summary: r.message,
        })
        .collect();
    out.push(RuleMeta {
        id: ULM_SCHEMA,
        kind: RuleKind::CrossFile,
        summary: "ULM keywords and LDAP attributes must stay coherent across encode/decode, \
                  provider, schema and broker",
    });
    out.push(RuleMeta {
        id: OBS_NAMES,
        kind: RuleKind::CrossFile,
        summary: "every emitted metric name must be a registered names:: constant, and every \
                  registered constant must be emitted",
    });
    out.push(RuleMeta {
        id: DETERMINISM_TAINT,
        kind: RuleKind::Semantic,
        summary: "sim/replay-crate code must not transitively reach wall clocks, OS entropy, \
                  unordered-map iteration or swap_remove through helpers",
    });
    out.push(RuleMeta {
        id: PANIC_PATH,
        kind: RuleKind::Semantic,
        summary: "panic sites (unwrap, panic!, messageless expect, indexing) must not be \
                  reachable from public library APIs",
    });
    out.push(RuleMeta {
        id: UNIT_MISMATCH,
        kind: RuleKind::Semantic,
        summary: "additive arithmetic and comparisons must not mix units (secs vs ms, bytes \
                  vs MB, Mb/s vs MB/s) inferred from identifier suffixes",
    });
    out.push(RuleMeta {
        id: PRAGMA,
        kind: RuleKind::Meta,
        summary: "suppression pragmas must name a registered rule and carry a justification",
    });
    out
}

/// Ids a `tidy: allow(<id>)` pragma may reference.
pub fn known_rule_ids() -> Vec<&'static str> {
    all().iter().map(|r| r.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_include_every_pass() {
        let ids = known_rule_ids();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate rule id in registry");
        for required in [
            ULM_SCHEMA,
            OBS_NAMES,
            DETERMINISM_TAINT,
            PANIC_PATH,
            UNIT_MISMATCH,
            PRAGMA,
            "wall-clock",
            "float-ord",
        ] {
            assert!(ids.contains(&required), "registry missing `{required}`");
        }
    }

    #[test]
    fn superseded_panic_unwrap_id_is_gone() {
        // The per-line rule was replaced by the panic-path semantic pass;
        // a leftover pragma naming it must be reported as unknown.
        assert!(!known_rule_ids().contains(&"panic-unwrap"));
    }
}
