//! Cross-file observability metric-name coherence (rule id `obs-names`).
//!
//! The obs layer only works as a *static* registry: every metric a crate
//! emits must be a constant declared in `crates/obs/src/names.rs`, and
//! every declared constant must be listed in `names::all()` (otherwise
//! `ObsSink`'s `is_registered` debug assertion rejects it at run time) and
//! actually emitted somewhere (otherwise it is dead vocabulary that pads
//! dashboards and diffs). This check enforces all three directions
//! lexically, on comment- and test-stripped source:
//!
//! 1. an emission call (`.inc(` / `.inc_by(` / `.observe(` /
//!    `.observe_many(` / `.gauge(` / `.span_enter(` / `.span_exit(`) on a
//!    receiver ending in `obs` whose first argument is a `names::IDENT`
//!    must reference a declared constant;
//! 2. an emission whose first argument is a string literal is flagged
//!    unless the literal is itself a registered name — and even then the
//!    constant is the canonical spelling;
//! 3. every declared constant must appear in `all()` and be referenced by
//!    at least one non-test source file outside `names.rs`.
//!
//! Identifier arguments that are not `names::`-qualified (locals, fn
//! parameters) are skipped as dynamic; the run-time debug assertion still
//! covers them.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use crate::scan::{scan_source, ScannedFile};
use crate::schema_check::span_text;
use crate::{walk_rs_files, Finding};

const RULE: &str = crate::registry::OBS_NAMES;
const NAMES_REL: &str = "crates/obs/src/names.rs";
const EMIT_MARKERS: &[&str] = &[
    ".inc(",
    ".inc_by(",
    ".observe(",
    ".observe_many(",
    ".gauge(",
    ".span_enter(",
    ".span_exit(",
];

/// Run the coherence check against the workspace at `root`. Trees without
/// the names registry (fixture subsets) are skipped entirely.
pub fn check_obs_names(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Ok(names_src) = fs::read_to_string(root.join(NAMES_REL)) else {
        return findings;
    };
    let names = scan_source(&names_src);
    let consts = name_consts(&names);
    let declared_idents: BTreeSet<&str> = consts.iter().map(|c| c.ident.as_str()).collect();
    let declared_values: BTreeSet<&str> = consts.iter().map(|c| c.value.as_str()).collect();

    // Direction 3a: every constant is in the `all()` registry.
    if let Some(all_text) = span_text(&names, "pub fn all(") {
        for c in &consts {
            if !all_text.contains(&c.ident) {
                findings.push(Finding::cross_file(
                    RULE,
                    NAMES_REL,
                    c.line,
                    format!(
                        "metric `{}` is declared but missing from names::all(), so \
                         is_registered() rejects its emissions",
                        c.ident
                    ),
                    "add the constant to the all() slice",
                ));
            }
        }
    }

    // Directions 1, 2, 3b: walk every non-test source file once.
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    let Ok(files) = walk_rs_files(&root.join("crates")) else {
        return findings;
    };
    for path in files {
        let rel = crate::rel_path(root, &path);
        if rel == NAMES_REL || rel.split('/').any(|p| p == "tests") {
            continue;
        }
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let scanned = scan_source(&src);
        for c in &consts {
            if ident_referenced(&scanned, &c.ident) {
                referenced.insert(c.ident.clone());
            }
        }
        check_emissions(
            &rel,
            &scanned,
            &declared_idents,
            &declared_values,
            &mut findings,
        );
    }
    for c in &consts {
        if !referenced.contains(&c.ident) {
            findings.push(Finding::cross_file(
                RULE,
                NAMES_REL,
                c.line,
                format!("metric `{}` is registered but never emitted", c.ident),
                "emit it from the instrumented crate or delete the constant",
            ));
        }
    }
    findings
}

/// One `pub const IDENT: &str = "value";` declaration in `names.rs`.
struct NameConst {
    ident: String,
    value: String,
    line: usize,
}

fn name_consts(scanned: &ScannedFile) -> Vec<NameConst> {
    let mut out = Vec::new();
    for (i, l) in scanned.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = l.code_with_strings.trim_start();
        let Some(rest) = code.strip_prefix("pub const ") else {
            continue;
        };
        let Some((ident, after)) = rest.split_once(':') else {
            continue;
        };
        if !after.contains("str") {
            continue;
        }
        let Some(open) = after.find('"') else {
            continue;
        };
        let lit = &after[open + 1..];
        let Some(close) = lit.find('"') else { continue };
        out.push(NameConst {
            ident: ident.trim().to_string(),
            value: lit[..close].to_string(),
            line: i + 1,
        });
    }
    out
}

/// Whether `ident` occurs as a standalone token in non-test code.
fn ident_referenced(scanned: &ScannedFile, ident: &str) -> bool {
    scanned.lines.iter().any(|l| {
        !l.in_test
            && l.code
                .match_indices(ident)
                .any(|(pos, _)| token_boundaries(&l.code, pos, ident.len()))
    })
}

fn token_boundaries(code: &str, pos: usize, len: usize) -> bool {
    let before = code[..pos].chars().next_back();
    let after = code[pos + len..].chars().next();
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_';
    !before.is_some_and(is_word) && !after.is_some_and(is_word)
}

/// Flag emission calls with unknown `names::` idents or raw string names.
fn check_emissions(
    rel: &str,
    scanned: &ScannedFile,
    declared_idents: &BTreeSet<&str>,
    declared_values: &BTreeSet<&str>,
    findings: &mut Vec<Finding>,
) {
    for (i, l) in scanned.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = &l.code_with_strings;
        for marker in EMIT_MARKERS {
            for (pos, _) in code.match_indices(marker) {
                if !receiver_is_obs(code, pos) {
                    continue;
                }
                let arg = code[pos + marker.len()..].trim_start();
                if let Some(ident) = arg.strip_prefix("names::") {
                    let ident: String = ident
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if !declared_idents.contains(ident.as_str()) {
                        findings.push(Finding::cross_file(
                            RULE,
                            rel,
                            i + 1,
                            format!("emission references undeclared metric `names::{ident}`"),
                            "declare the constant in crates/obs/src/names.rs and list it in all()",
                        ));
                    }
                } else if let Some(lit) = arg.strip_prefix('"') {
                    if let Some(end) = lit.find('"') {
                        let value = &lit[..end];
                        let msg = if declared_values.contains(value) {
                            format!(
                                "emission spells metric `{value}` as a string literal instead \
                                 of its names:: constant"
                            )
                        } else {
                            format!("emission uses unregistered metric name `{value}`")
                        };
                        findings.push(Finding::cross_file(
                            RULE,
                            rel,
                            i + 1,
                            msg,
                            "emit through the names:: constant so the registry stays coherent",
                        ));
                    }
                }
                // Anything else (a local, a parameter) is dynamic; the
                // sink's debug assertion covers it at run time.
            }
        }
    }
}

/// Whether the dotted receiver chain ending at `pos` ends in an `obs`
/// path segment (`obs.`, `self.obs.`, `cfg.obs.`, ...). This is what
/// keeps `snap.gauge(..)` (snapshot accessor) out of scope.
fn receiver_is_obs(code: &str, pos: usize) -> bool {
    let recv: String = code[..pos]
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    recv.rsplit('.').next().is_some_and(|seg| seg == "obs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_detection() {
        assert!(receiver_is_obs("self.obs.inc(", "self.obs".len()));
        assert!(receiver_is_obs("cfg.obs.span_enter(", "cfg.obs".len()));
        assert!(receiver_is_obs("    obs.gauge(", "    obs".len()));
        assert!(!receiver_is_obs("snap.gauge(", "snap".len()));
        assert!(!receiver_is_obs(
            "self.observer.inc(",
            "self.observer".len()
        ));
    }

    #[test]
    fn const_extraction_reads_ident_value_and_line() {
        let src = "/// doc\npub const A_B: &str = \"a.b\";\npub const C: &str = \"c.d\";\n";
        let consts = name_consts(&scan_source(src));
        assert_eq!(consts.len(), 2);
        assert_eq!(consts[0].ident, "A_B");
        assert_eq!(consts[0].value, "a.b");
        assert_eq!(consts[0].line, 2);
    }

    #[test]
    fn token_boundary_rejects_substrings() {
        let s = scan_source("use names::CAMPAIGN_RUN_EXTENDED;\n");
        assert!(!ident_referenced(&s, "CAMPAIGN_RUN"));
        let s = scan_source("obs.inc(names::CAMPAIGN_RUN);\n");
        assert!(ident_referenced(&s, "CAMPAIGN_RUN"));
    }
}
