//! Shared per-file pipeline state.
//!
//! Every pass — line rules, the semantic passes, the caches — consumes
//! the same per-file artifact: the lexed/scanned source plus the parsed
//! suppression pragmas. [`SourceFile`] is built once per file (in
//! parallel, see [`crate::run_tidy`]) and handed to everything else by
//! reference.

use std::collections::BTreeMap;

use crate::scan::{scan_source, ScannedFile};
use crate::{file_context, pragma_scan, Finding};

/// One scanned workspace file plus derived lint state.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Crate directory name under `crates/`, when applicable.
    pub krate: Option<String>,
    /// Tests, benches, examples and fixtures are exempt from lint rules.
    pub exempt: bool,
    pub scanned: ScannedFile,
    /// 0-based line -> rule ids a justified pragma suppresses there.
    pub allows: BTreeMap<usize, Vec<String>>,
    /// Findings about the pragmas themselves (unknown rule, missing
    /// justification). Reported once, by the per-file pass.
    pub pragma_findings: Vec<Finding>,
    /// FNV-1a hash of the raw file contents (cache key).
    pub hash: u64,
}

impl SourceFile {
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let ctx = file_context(rel);
        let scanned = scan_source(src);
        let (pragma_findings, allows) = if ctx.exempt {
            (Vec::new(), BTreeMap::new())
        } else {
            pragma_scan(rel, &scanned)
        };
        SourceFile {
            rel: rel.to_string(),
            krate: ctx.krate,
            exempt: ctx.exempt,
            scanned,
            allows,
            pragma_findings,
            hash: fnv1a(src.as_bytes()),
        }
    }

    /// Whether a justified pragma at `line` (0-based) suppresses any of
    /// the given rule ids. Semantic passes treat this as a taint barrier.
    pub fn allowed(&self, line: usize, rules: &[&str]) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|ids| ids.iter().any(|id| rules.contains(&id.as_str())))
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, stable across runs and
/// platforms — exactly what a content-addressed cache key needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn allowed_respects_rule_and_line() {
        let src =
            "fn f(a: f64) -> bool {\n    // tidy: allow(float-eq): sentinel\n    a == 0.0\n}\n";
        let f = SourceFile::from_source("crates/simnet/src/x.rs", src);
        assert!(f.allowed(2, &["float-eq"]));
        assert!(!f.allowed(2, &["wall-clock"]));
        assert!(!f.allowed(1, &["float-eq"]));
    }
}
