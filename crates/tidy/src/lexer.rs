//! A minimal line-oriented Rust lexer.
//!
//! Rule patterns must only ever match *code* — a doc comment that mentions
//! `HashMap`, or a format string containing `{`, must not trip a lint or
//! corrupt brace-depth tracking. This module strips comments and string
//! literal contents from each line and reports the brace-depth delta, with
//! the state that has to survive line boundaries (block-comment nesting,
//! open string literals) carried across lines.
//!
//! It is deliberately not a full lexer, but it does handle the shapes that
//! used to confuse `scan_source`: raw strings (`r#"..."#` up to
//! `r###"..."###`), strings and raw strings spanning multiple lines,
//! nested block comments, and `//` sequences inside string literals (a
//! URL in a string is not a comment; a `tidy: allow(...)` inside a
//! multi-line string is not a pragma).

/// One source line after lexing.
pub struct LexedLine {
    /// The line with comments removed and string/char literal *contents*
    /// blanked out (delimiters kept). Rule patterns match against this.
    pub code: String,
    /// Like `code`, but string literal contents are preserved. Used by the
    /// cross-file schema checker, which extracts attribute names from
    /// string literals.
    pub code_with_strings: String,
    /// Text of any `//` line comment (pragmas live here).
    pub comment: String,
    /// Net `{` minus `}` on this line, counted outside strings/comments.
    pub brace_delta: i32,
}

/// The string literal kind an open literal was started with.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StrKind {
    /// An ordinary `"..."` literal (backslash escapes apply).
    Normal,
    /// A raw literal `r"..."`/`r#"..."#`; closes on `"` plus this many `#`.
    Raw(usize),
}

/// Carries block-comment and string state across lines of one file.
#[derive(Default)]
pub struct Lexer {
    /// Nesting depth of `/* */` block comments (Rust block comments nest).
    block_depth: u32,
    /// A string literal left open at the end of the previous line.
    open_string: Option<StrKind>,
}

impl Lexer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn lex_line(&mut self, line: &str) -> LexedLine {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(line.len());
        let mut with_strings = String::with_capacity(line.len());
        let mut comment = String::new();
        let mut delta = 0i32;
        let mut i = 0usize;

        // Resume a string literal that opened on an earlier line. The
        // contents are still string data: no comments, braces or pragmas.
        if let Some(kind) = self.open_string {
            match self.consume_string_body(&chars, 0, kind, &mut with_strings) {
                Some(next) => {
                    code.push('"');
                    with_strings.push('"');
                    i = next;
                }
                None => {
                    return LexedLine {
                        code,
                        code_with_strings: with_strings,
                        comment,
                        brace_delta: 0,
                    };
                }
            }
        }

        while i < chars.len() {
            if self.block_depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.block_depth -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    self.block_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            let c = chars[i];
            match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    comment = chars[i + 2..].iter().collect();
                    break;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.block_depth += 1;
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    with_strings.push('"');
                    match self.consume_string_body(
                        &chars,
                        i + 1,
                        StrKind::Normal,
                        &mut with_strings,
                    ) {
                        Some(next) => {
                            code.push('"');
                            with_strings.push('"');
                            i = next;
                        }
                        None => break,
                    }
                }
                'r' if is_raw_string_start(&chars, i) => {
                    let hashes = count_hashes(&chars, i + 1);
                    // Skip `r##"`.
                    let body = i + 1 + hashes + 1;
                    code.push('"');
                    with_strings.push('"');
                    match self.consume_string_body(
                        &chars,
                        body,
                        StrKind::Raw(hashes),
                        &mut with_strings,
                    ) {
                        Some(next) => {
                            code.push('"');
                            with_strings.push('"');
                            i = next;
                        }
                        None => break,
                    }
                }
                '\'' => {
                    // Disambiguate char literal from lifetime: a char
                    // literal is `'\..'` or `'x'`; a lifetime never has a
                    // closing quote right after one character.
                    let is_char_lit = chars.get(i + 1) == Some(&'\\')
                        || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''));
                    if is_char_lit {
                        code.push('\'');
                        with_strings.push('\'');
                        i += 1;
                        while i < chars.len() {
                            match chars[i] {
                                '\\' => i += 2,
                                '\'' => {
                                    code.push('\'');
                                    with_strings.push('\'');
                                    i += 1;
                                    break;
                                }
                                _ => i += 1,
                            }
                        }
                    } else {
                        code.push('\'');
                        with_strings.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    if c == '{' {
                        delta += 1;
                    } else if c == '}' {
                        delta -= 1;
                    }
                    code.push(c);
                    with_strings.push(c);
                    i += 1;
                }
            }
        }

        LexedLine {
            code,
            code_with_strings: with_strings,
            comment,
            brace_delta: delta,
        }
    }

    /// Consume string-literal contents starting at `chars[from]`. Returns
    /// the index just past the closing delimiter, or `None` when the line
    /// ends with the literal still open (state is carried to the next
    /// line). Contents are appended to `with_strings` only.
    fn consume_string_body(
        &mut self,
        chars: &[char],
        from: usize,
        kind: StrKind,
        with_strings: &mut String,
    ) -> Option<usize> {
        let mut i = from;
        match kind {
            StrKind::Normal => {
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            if let Some(e) = chars.get(i + 1) {
                                with_strings.push('\\');
                                with_strings.push(*e);
                            }
                            i += 2;
                        }
                        '"' => {
                            self.open_string = None;
                            return Some(i + 1);
                        }
                        other => {
                            with_strings.push(other);
                            i += 1;
                        }
                    }
                }
            }
            StrKind::Raw(hashes) => {
                while i < chars.len() {
                    if chars[i] == '"' && matches_hashes(chars, i + 1, hashes) {
                        self.open_string = None;
                        return Some(i + 1 + hashes);
                    }
                    with_strings.push(chars[i]);
                    i += 1;
                }
            }
        }
        self.open_string = Some(kind);
        None
    }
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // `r"` or `r#`..`#"`; make sure `r` is not the tail of an identifier
    // (e.g. `writer"` can't happen, but `var"` style tokens guard anyway).
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> usize {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn matches_hashes(chars: &[char], i: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(line: &str) -> LexedLine {
        Lexer::new().lex_line(line)
    }

    #[test]
    fn strips_line_comments() {
        let l = lex("let x = 1; // HashMap in a comment");
        assert_eq!(l.code.trim_end(), "let x = 1;");
        assert!(l.comment.contains("HashMap"));
    }

    #[test]
    fn blanks_string_contents_but_keeps_them_in_with_strings() {
        let l = lex(r#"e.add("avgrdbandwidth", 1.0);"#);
        assert!(!l.code.contains("avgrdbandwidth"));
        assert!(l.code_with_strings.contains("avgrdbandwidth"));
    }

    #[test]
    fn braces_inside_strings_do_not_count() {
        let l = lex(r#"let name = format!("{stem}.{n}.{ext}");"#);
        assert_eq!(l.brace_delta, 0);
    }

    #[test]
    fn char_literal_brace_does_not_count_and_lifetimes_survive() {
        assert_eq!(lex("if c == '{' {").brace_delta, 1);
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(l.brace_delta, 0);
    }

    #[test]
    fn block_comments_span_lines() {
        let mut lx = Lexer::new();
        let a = lx.lex_line("/* Instant::now() in a block comment");
        let b = lx.lex_line("   still comment */ let y = 2;");
        assert!(!a.code.contains("Instant"));
        assert!(b.code.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let mut lx = Lexer::new();
        let a = lx.lex_line("/* outer /* inner thread_rng()");
        let b = lx.lex_line("   inner closes */ still outer SystemTime::now()");
        let c = lx.lex_line("   outer closes */ let z = 3;");
        assert!(!a.code.contains("thread_rng"));
        assert!(!b.code.contains("SystemTime"));
        assert!(c.code.contains("let z = 3;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let l = lex(r##"let s = r#"SystemTime::now()"#;"##);
        assert!(!l.code.contains("SystemTime"));
    }

    #[test]
    fn multi_line_raw_string_is_string_all_the_way_down() {
        let mut lx = Lexer::new();
        let a = lx.lex_line(r##"let s = r#"first Instant::now()"##);
        let b = lx.lex_line("// tidy: allow(wall-clock): not a pragma, string data");
        let c = lx.lex_line(r##"last"# ; let y = 1;"##);
        assert!(!a.code.contains("Instant"));
        // The middle line is entirely string contents: no comment, no code.
        assert!(b.comment.is_empty());
        assert!(!b.code.contains("tidy"));
        assert!(b.code_with_strings.contains("allow"));
        assert!(c.code.contains("let y = 1;"));
        assert!(!c.code.contains("last"));
    }

    #[test]
    fn multi_line_normal_string_carries_across_lines() {
        let mut lx = Lexer::new();
        let a = lx.lex_line("let s = \"opens here");
        let b = lx.lex_line("// still string, not comment");
        let c = lx.lex_line("closes here\"; f();");
        assert_eq!(a.code.trim_end(), "let s = \"");
        assert!(b.comment.is_empty());
        assert!(b.code.is_empty());
        assert!(c.code.contains("f();"));
        assert_eq!(a.brace_delta + b.brace_delta + c.brace_delta, 0);
    }

    #[test]
    fn slashes_inside_strings_are_not_comments() {
        let l = lex(r#"let url = "https://example.org"; g.unwrap_or(0);"#);
        assert!(l.comment.is_empty());
        assert!(l.code.contains("g.unwrap_or(0);"));
        let l = lex(r#"let s = "a // b"; h();"#);
        assert!(l.comment.is_empty());
        assert!(l.code.contains("h();"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let l = lex(r#"let s = "a\"b.unwrap()"; f();"#);
        assert!(!l.code.contains(".unwrap()"));
        assert!(l.code.contains("f();"));
    }
}
