//! Panic-reachability (rule id `panic-path`), superseding the old
//! per-line `panic-unwrap` rule.
//!
//! The old rule flagged `.unwrap()` where it was written; it said nothing
//! about a public API whose private helper unwraps. This pass marks panic
//! *sites* — `.unwrap()`, `panic!`/`unreachable!`/`todo!`/
//! `unimplemented!`, `.expect(` with a non-literal (unwritten) message,
//! and literal-index access (`xs[0]`, `&s[1..3]`) — then walks the call
//! graph and reports every site transitively reachable from a `pub fn`
//! of a library crate, naming the shortest public chain.
//!
//! Calibration, measured on this workspace:
//! * `.expect("written invariant")` is sanctioned — the documented
//!   alternative the old rule pointed to; the string literal *is* the
//!   justification. `assert!` family likewise: intentional invariants.
//! * Indexing counts only with a *literal* index. `xs[0]` on an
//!   unchecked collection is the real replay-killer (empty series ->
//!   panic mid-campaign); variable indices (`slots[i]`) were 150+ sites
//!   and virtually all loop-bounded — flagging them trains people to
//!   ignore the rule.
//!
//! Like the taint pass, findings sit at the source line, so one justified
//! `// tidy: allow(panic-path): ...` covers every public caller at once.

use crate::callgraph::CallGraph;
use crate::index::WorkspaceIndex;
use crate::pipeline::SourceFile;
use crate::registry;
use crate::rules::LIB_CRATES;
use crate::Finding;

struct Site {
    fn_id: usize,
    line: usize, // 0-based
    token: String,
}

const PANIC_MACROS: &[&str] = &["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

pub fn check(files: &[SourceFile], ix: &WorkspaceIndex, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    for site in collect_sites(files, ix) {
        let Some(chain) = pub_reach_chain(ix, graph, site.fn_id) else {
            continue;
        };
        let file = &files[ix.fns[site.fn_id].file];
        let path: Vec<String> = chain.iter().map(|&id| ix.fns[id].display()).collect();
        let via = if path.len() > 1 {
            format!(" via {}", path.join(" -> "))
        } else {
            String::new()
        };
        findings.push(Finding::cross_file(
            registry::PANIC_PATH,
            &file.rel,
            site.line + 1,
            format!(
                "`{}` can panic and is reachable from public API `{}`{}",
                site.token,
                path.first().cloned().unwrap_or_default(),
                via,
            ),
            "return an error, bound the access, use expect(\"written invariant\"), or justify \
             with `// tidy: allow(panic-path): <why this cannot fire>`",
        ));
    }
    findings
}

fn collect_sites(files: &[SourceFile], ix: &WorkspaceIndex) -> Vec<Site> {
    let mut out = Vec::new();
    for (fn_id, item) in ix.fns.iter().enumerate() {
        if !LIB_CRATES.contains(&item.krate.as_str()) {
            continue;
        }
        let file = &files[item.file];
        let (a, b) = item.body;
        for line in a..=b {
            if ix.line_owner[item.file][line] != Some(fn_id) {
                continue;
            }
            let info = &file.scanned.lines[line];
            if info.in_test || file.allowed(line, &[registry::PANIC_PATH]) {
                continue;
            }
            if let Some(token) = panic_token(&info.code) {
                out.push(Site { fn_id, line, token });
            }
        }
    }
    out
}

/// First panic-capable token on a code line, if any.
pub(crate) fn panic_token(code: &str) -> Option<String> {
    if code.contains(".unwrap()") {
        return Some(".unwrap()".to_string());
    }
    for m in PANIC_MACROS {
        if code.contains(m) {
            return Some(m.trim_end_matches('(').to_string());
        }
    }
    // `.expect(` whose argument is not a string literal carries no
    // written invariant — `.expect("msg")` is sanctioned and skipped.
    // A char-literal argument (`parser.expect('(')`) cannot be std's
    // expect at all — that is a user-defined fallible method.
    for (pos, _) in code.match_indices(".expect(") {
        let arg = code[pos + ".expect(".len()..].trim_start();
        if !arg.starts_with('"') && !arg.starts_with('\'') {
            return Some(".expect(<non-literal>)".to_string());
        }
    }
    indexing_token(code)
}

/// Literal-index access `ident[0]` / `ident[1..3]` — a slice/array
/// access that panics when the collection is shorter than the constant
/// assumes. Attribute lines (`#[...]`), array types/literals
/// (`[u8; 4]`, `= [`) and macros (`vec![`) have no identifier directly
/// before the bracket and never match; variable indices are skipped by
/// calibration (see module docs).
fn indexing_token(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    for (pos, _) in code.match_indices('[') {
        if pos == 0 {
            continue;
        }
        let prev = bytes[pos - 1] as char;
        if !(prev.is_ascii_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            continue;
        }
        if !code[pos + 1..]
            .trim_start()
            .starts_with(|c: char| c.is_ascii_digit())
        {
            continue;
        }
        // Walk back over the indexed expression tail for the report.
        let ident: String = code[..pos]
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        let shown = if ident.is_empty() { "expr" } else { &ident };
        return Some(format!("{shown}[..]"));
    }
    None
}

/// Shortest chain `[pub_entry, .., site_fn]`; `None` when no public
/// library API reaches the function.
fn pub_reach_chain(ix: &WorkspaceIndex, graph: &CallGraph, site_fn: usize) -> Option<Vec<usize>> {
    let n = ix.fns.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[site_fn] = true;
    queue.push_back(site_fn);
    while let Some(cur) = queue.pop_front() {
        let item = &ix.fns[cur];
        if item.is_pub && LIB_CRATES.contains(&item.krate.as_str()) {
            let mut ordered = Vec::new();
            let mut walk = Some(cur);
            while let Some(id) = walk {
                ordered.push(id);
                walk = parent[id];
            }
            return Some(ordered);
        }
        for &(caller, _) in &graph.callers[cur] {
            if !visited[caller] {
                visited[caller] = true;
                parent[caller] = Some(cur);
                queue.push_back(caller);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::index::WorkspaceIndex;
    use crate::pipeline::SourceFile;

    fn run(files: &[SourceFile]) -> Vec<Finding> {
        let ix = WorkspaceIndex::build(files);
        let graph = CallGraph::build(files, &ix);
        check(files, &ix, &graph)
    }

    #[test]
    fn unwrap_behind_a_private_helper_is_reported_with_the_public_chain() {
        let f = SourceFile::from_source(
            "crates/predict/src/sel.rs",
            "pub fn select_best(xs: &[f64]) -> f64 {\n    pick_first_inner(xs)\n}\nfn pick_first_inner(xs: &[f64]) -> f64 {\n    *xs.first().unwrap()\n}\n",
        );
        let findings = run(&[f]);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.rule, "panic-path");
        assert_eq!(f.line, 5);
        assert!(f.message.contains("select_best"));
        assert!(f.message.contains("pick_first_inner"));
    }

    #[test]
    fn expect_with_written_invariant_and_asserts_are_sanctioned() {
        let f = SourceFile::from_source(
            "crates/predict/src/sel.rs",
            "pub fn ok(xs: &[f64]) -> f64 {\n    assert!(!xs.is_empty());\n    *xs.first().expect(\"asserted non-empty above\")\n}\n",
        );
        assert!(run(&[f]).is_empty());
    }

    #[test]
    fn indexing_in_a_pub_fn_is_a_panic_site() {
        let f = SourceFile::from_source(
            "crates/predict/src/sel.rs",
            "pub fn head(xs: &[f64]) -> f64 {\n    xs[0]\n}\n",
        );
        let findings = run(&[f]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("xs[..]"));
    }

    #[test]
    fn unreachable_private_panics_and_pragma_barriers_stay_quiet() {
        let private_only = SourceFile::from_source(
            "crates/predict/src/sel.rs",
            "fn never_called(xs: &[f64]) -> f64 {\n    xs[0]\n}\n",
        );
        assert!(run(&[private_only]).is_empty());

        let justified = SourceFile::from_source(
            "crates/predict/src/sel.rs",
            "pub fn head(xs: &[f64]) -> f64 {\n    // tidy: allow(panic-path): caller contract requires non-empty input\n    xs[0]\n}\n",
        );
        assert!(run(&[justified]).is_empty());
    }

    #[test]
    fn only_literal_indexing_counts_as_a_panic_site() {
        assert!(panic_token("#[derive(Debug)]").is_none());
        assert!(panic_token("let buf: [u8; 4] = [0; 4];").is_none());
        assert!(panic_token("let v = vec![1, 2];").is_none());
        assert!(
            panic_token("xs[i] += 1;").is_none(),
            "variable index is calibrated out"
        );
        assert!(panic_token("xs[0] += 1;").is_some());
        assert!(panic_token("let t = &s[1..3];").is_some());
    }
}
