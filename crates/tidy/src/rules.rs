//! The lint catalog. Every line-oriented rule is one table entry; adding a
//! rule means adding a `LintRule` here (and a fixture under
//! `fixtures/bad_tree/` so the self-test keeps it honest). The cross-file
//! `ulm-schema` rule lives in `schema_check` because it is not a line
//! pattern, but it shares the same finding/pragma machinery.

/// How a rule recognises a violation on one lexed code line.
pub enum Pattern {
    /// Any of these substrings, matched against comment/string-stripped code.
    AnyOf(&'static [&'static str]),
    /// An `==` or `!=` comparison with a float literal on either side.
    FloatEq,
}

impl Pattern {
    /// Returns the offending token when the line matches.
    pub fn matches(&self, code: &str) -> Option<String> {
        match self {
            Pattern::AnyOf(tokens) => tokens
                .iter()
                .find(|t| code.contains(**t))
                .map(|t| t.to_string()),
            Pattern::FloatEq => float_eq_match(code),
        }
    }
}

pub struct LintRule {
    /// Stable id used in pragmas, JSON output, and docs.
    pub id: &'static str,
    /// Workspace crate directory names (under `crates/`) the rule covers.
    pub crates: &'static [&'static str],
    pub pattern: Pattern,
    /// What is wrong.
    pub message: &'static str,
    /// What to do instead.
    pub suggestion: &'static str,
    /// Workspace-relative files the rule never applies to — the module
    /// that *implements* the guarded behavior (e.g. the crash-safe writer
    /// is the one place allowed to touch the filesystem directly).
    pub exempt_files: &'static [&'static str],
}

/// Crates on the simulation decision path: anything here feeding a
/// campaign must be reproducible from the master seed alone. `logfmt` is
/// included because the replay pipeline decodes through it — a wall clock
/// or hash-order dependence there breaks byte-identical replays just as
/// surely as one in the engine.
pub const SIM_CRATES: &[&str] = &[
    "simnet", "gridftp", "testbed", "replica", "predict", "nws", "logfmt",
];

/// Library crates subject to float-safety and panic policy. `bench` is
/// excluded (wall-clock measurement is its whole point) and `tidy` lints
/// itself out of scope to avoid self-reference.
pub const LIB_CRATES: &[&str] = &[
    "simnet", "gridftp", "testbed", "replica", "predict", "nws", "core", "infod", "logfmt",
    "storage", "obs",
];

pub fn rules() -> Vec<LintRule> {
    vec![
        LintRule {
            id: "wall-clock",
            crates: SIM_CRATES,
            pattern: Pattern::AnyOf(&["SystemTime::now", "Instant::now"]),
            message: "wall-clock time in a simulation-facing crate breaks seed reproducibility",
            suggestion: "use the simulation clock (simnet::time::SimTime) or a modeled cost",
            exempt_files: &[],
        },
        LintRule {
            id: "thread-rng",
            crates: SIM_CRATES,
            pattern: Pattern::AnyOf(&["thread_rng", "from_entropy", "rand::random"]),
            message: "OS-entropy randomness in a simulation-facing crate breaks seed reproducibility",
            suggestion: "derive an rng from simnet::rng::MasterSeed",
            exempt_files: &[],
        },
        LintRule {
            id: "unordered-map",
            crates: SIM_CRATES,
            pattern: Pattern::AnyOf(&["HashMap", "HashSet"]),
            message: "hash-map iteration order is unspecified and varies across runs",
            suggestion: "use BTreeMap/BTreeSet, simnet::index::VecMap, or sort before iterating",
            exempt_files: &[],
        },
        LintRule {
            id: "vec-swap-remove",
            crates: SIM_CRATES,
            pattern: Pattern::AnyOf(&[".swap_remove("]),
            message: "swap_remove reorders the vector, so downstream iteration depends on removal history",
            suggestion: "use Vec::remove / VecMap::remove (ordered), or justify with `// tidy: allow(vec-swap-remove): <reason>`",
            exempt_files: &[],
        },
        LintRule {
            id: "float-ord",
            crates: LIB_CRATES,
            pattern: Pattern::AnyOf(&[".partial_cmp("]),
            message: "partial_cmp on floats panics or mis-orders when a NaN reaches the comparison",
            suggestion: "use f64::total_cmp, or justify with `// tidy: allow(float-ord): <reason>`",
            exempt_files: &[],
        },
        LintRule {
            id: "float-eq",
            crates: LIB_CRATES,
            pattern: Pattern::FloatEq,
            message: "exact equality against a float literal is a sentinel-value smell",
            suggestion: "compare with a tolerance, or justify with `// tidy: allow(float-eq): <reason>`",
            exempt_files: &[],
        },
        LintRule {
            id: "fs-direct",
            crates: &["logfmt"],
            pattern: Pattern::AnyOf(&[
                "fs::write(",
                "File::create(",
                "File::options(",
                "OpenOptions::new(",
            ]),
            message: "direct file writes in logfmt bypass the crash-safe tmp-file + rename protocol",
            suggestion: "go through writer::atomic_write or RotatingLogWriter, or justify with `// tidy: allow(fs-direct): <reason>`",
            exempt_files: &["crates/logfmt/src/writer.rs"],
        },
    ]
}

/// Match `== <float literal>` / `!= <float literal>` in either operand
/// order. A float literal here means digits containing a decimal point
/// (`0.0`, `-25.`, `1.5e3`); integer comparisons never match.
fn float_eq_match(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    for (i, pair) in bytes.windows(2).enumerate() {
        if pair != b"==" && pair != b"!=" {
            continue;
        }
        // Reject `===`, `<=`, `>=`, `!==` shapes (not Rust, but cheap to guard).
        if i > 0 && matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'!') {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') {
            continue;
        }
        let after = code[i + 2..].trim_start();
        let before = code[..i].trim_end();
        if starts_with_float_literal(after) || ends_with_float_literal(before) {
            return Some(code[i..i + 2].to_string());
        }
    }
    None
}

fn starts_with_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let digits = s.chars().take_while(|c| c.is_ascii_digit()).count();
    digits > 0 && s[digits..].starts_with('.')
}

fn ends_with_float_literal(s: &str) -> bool {
    // Walk back over an optional exponent, fraction digits, then require
    // a '.' preceded by at least one digit.
    let b = s.as_bytes();
    let mut i = s.len();
    while i > 0 && (b[i - 1].is_ascii_digit() || matches!(b[i - 1], b'e' | b'E' | b'+' | b'-')) {
        i -= 1;
    }
    if i == 0 || b[i - 1] != b'.' {
        return false;
    }
    i > 1 && b[i - 2].is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_eq_matches_both_operand_orders() {
        assert!(float_eq_match("if x == 0.0 {").is_some());
        assert!(float_eq_match("if 0.0 == x {").is_some());
        assert!(float_eq_match("if f.cap != 2.5e3 {").is_some());
        assert!(float_eq_match("if x == -1.0 {").is_some());
    }

    #[test]
    fn float_eq_ignores_integers_and_other_operators() {
        assert!(float_eq_match("if x == 0 {").is_none());
        assert!(float_eq_match("if x <= 0.0 {").is_none());
        assert!(float_eq_match("if x >= 0.0 {").is_none());
        assert!(float_eq_match("let y = 25.0;").is_none());
        assert!(float_eq_match("if a == b {").is_none());
    }

    #[test]
    fn logfmt_is_on_the_sim_decision_path() {
        assert!(SIM_CRATES.contains(&"logfmt"));
    }
}
