//! `wanpred-tidy`: the workspace's own static-analysis pass.
//!
//! The paper's methodology — replay GridFTP transfer logs through ~30
//! predictors and compare percentage error — is only trustworthy if a
//! campaign is bit-for-bit reproducible from its master seed and no
//! predictor mis-orders or panics on NaN-tainted series. This crate
//! machine-enforces those invariants rustc-tidy style, in layers:
//!
//! * a lexical pass over every workspace `.rs` file feeding a
//!   table-driven line-rule catalog ([`rules`]);
//! * a rustc-free item index and intra-workspace call graph ([`index`],
//!   [`callgraph`]) powering three semantic passes: determinism taint
//!   ([`taint`]), panic reachability ([`panics`]) and unit-of-measure
//!   checking ([`units`]);
//! * cross-file ULM/LDAP schema and observability-name coherence
//!   ([`schema_check`], [`obs_check`]);
//! * per-line pragma suppression with mandatory justifications,
//!   validated against the single rule registry ([`registry`]).
//!
//! Files scan in parallel (the vendored `rayon` shim) and a
//! content-hash cache under `target/tidy-cache/` ([`cache`]) makes the
//! no-edits rerun skip everything. Output is human-readable, `--json`,
//! or SARIF 2.1.0 ([`sarif`]); `--fix` applies the two mechanically
//! safe rewrites (`partial_cmp` → `total_cmp`, `swap_remove` →
//! `remove`).
//!
//! Run it with `cargo run -p tidy`. Exit status is nonzero iff findings
//! exist. See DESIGN.md § "Invariants and the tidy pass" and § "Static
//! analysis".

pub mod cache;
pub mod callgraph;
pub mod fix;
pub mod index;
pub mod lexer;
pub mod obs_check;
pub mod panics;
pub mod pipeline;
pub mod registry;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod schema_check;
pub mod taint;
pub mod units;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use pipeline::SourceFile;
use rules::LintRule;
use scan::ScannedFile;

/// One lint violation (or pragma problem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`wall-clock`, `float-ord`, `ulm-schema`, `pragma`, ...).
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line, or 0 for findings that point at an absence.
    pub line: usize,
    pub message: String,
    pub suggestion: String,
}

impl Finding {
    fn lint(rule: &LintRule, path: &str, line: usize, token: &str) -> Self {
        Finding {
            rule: rule.id.to_string(),
            path: path.to_string(),
            line,
            message: format!("`{token}`: {}", rule.message),
            suggestion: rule.suggestion.to_string(),
        }
    }

    pub fn cross_file(
        rule: &str,
        path: &str,
        line: usize,
        message: String,
        suggestion: &str,
    ) -> Self {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message,
            suggestion: suggestion.to_string(),
        }
    }
}

/// Where a file sits relative to the lint policy.
struct FileContext {
    /// Crate directory name under `crates/`, when applicable.
    krate: Option<String>,
    /// Tests, benches, examples, build scripts and fixtures are exempt.
    exempt: bool,
}

fn file_context(rel: &str) -> FileContext {
    let parts: Vec<&str> = rel.split('/').collect();
    let exempt = parts.iter().any(|p| {
        matches!(
            *p,
            "tests" | "benches" | "examples" | "fixtures" | "target" | "vendor"
        )
    }) || parts.last() == Some(&"build.rs");
    let krate = if parts.first() == Some(&"crates") && parts.len() > 1 {
        Some(parts[1].to_string())
    } else {
        None
    };
    FileContext { krate, exempt }
}

/// Parse pragmas of the form `tidy: allow(<rule>): <justification>`.
/// Returns `(rule, justification_present)` pairs. A pragma must *start*
/// the comment (after doc-comment markers) — prose that merely mentions
/// the syntax, like this sentence, is not a pragma.
fn parse_pragmas(comment: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    let trimmed = comment.trim_start_matches(['/', '!', ' ', '\t']);
    if !trimmed.starts_with("tidy: allow(") {
        return out;
    }
    let mut rest = trimmed;
    while let Some(pos) = rest.find("tidy: allow(") {
        rest = &rest[pos + "tidy: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let justified = after
            .strip_prefix(':')
            .map(|j| {
                let j = j.trim();
                !j.is_empty() && !j.starts_with("tidy: allow(")
            })
            .unwrap_or(false);
        out.push((rule, justified));
        rest = &rest[close + 1..];
    }
    out
}

/// Collect the suppression pragmas of one scanned file: findings about
/// malformed/unknown/unjustified pragmas, plus the map of 0-based lines
/// to the rule ids a justified pragma suppresses there (a pragma on its
/// own line covers the next line, an inline pragma its own). Rule ids
/// are validated against the [`registry`] — the one list every pass
/// registers in — so a pragma naming a rule that no longer exists is
/// itself a finding, not a silent no-op.
fn pragma_scan(rel: &str, scanned: &ScannedFile) -> (Vec<Finding>, BTreeMap<usize, Vec<String>>) {
    let known = registry::known_rule_ids();
    let mut findings = Vec::new();
    let mut allow: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (i, l) in scanned.lines.iter().enumerate() {
        for (rule, justified) in parse_pragmas(&l.comment) {
            if !known.contains(&rule.as_str()) {
                findings.push(Finding {
                    rule: registry::PRAGMA.into(),
                    path: rel.into(),
                    line: i + 1,
                    message: format!("pragma references unknown rule `{rule}`"),
                    suggestion: format!("known rules: {}", known.join(", ")),
                });
                continue;
            }
            if !justified {
                findings.push(Finding {
                    rule: registry::PRAGMA.into(),
                    path: rel.into(),
                    line: i + 1,
                    message: format!("pragma for `{rule}` carries no justification"),
                    suggestion: "write `// tidy: allow(<rule>): <why this is sound>`".into(),
                });
                continue;
            }
            let target = if l.code.trim().is_empty() { i + 1 } else { i };
            allow.entry(target).or_default().push(rule);
        }
    }
    (findings, allow)
}

/// Check one file against the standard rule catalog.
pub fn check_file(rel: &str, src: &str) -> Vec<Finding> {
    check_file_with(rel, src, &rules::rules())
}

/// Check one file against an explicit rule table (used by self-tests).
pub fn check_file_with(rel: &str, src: &str, table: &[LintRule]) -> Vec<Finding> {
    line_findings(&SourceFile::from_source(rel, src), table)
}

/// The per-file pass: pragma hygiene findings plus every line rule that
/// covers the file's crate, honoring justified pragmas.
fn line_findings(file: &SourceFile, table: &[LintRule]) -> Vec<Finding> {
    let mut findings = file.pragma_findings.clone();
    if file.exempt {
        return findings;
    }
    let Some(krate) = &file.krate else {
        return findings;
    };
    for rule in table {
        if !rule.crates.contains(&krate.as_str()) {
            continue;
        }
        // The module implementing a guarded behavior is the one place the
        // guard does not apply (e.g. the crash-safe writer vs fs-direct).
        if rule.exempt_files.contains(&file.rel.as_str()) {
            continue;
        }
        for (i, l) in file.scanned.lines.iter().enumerate() {
            if l.in_test {
                continue;
            }
            let Some(token) = rule.pattern.matches(&l.code) else {
                continue;
            };
            if !file.allowed(i, &[rule.id]) {
                findings.push(Finding::lint(rule, &file.rel, i + 1, &token));
            }
        }
    }
    findings
}

/// All `.rs` files under `dir`, sorted, skipping build output and fixture
/// trees (a fixture *is* a violation — it must never fail the real run).
pub fn walk_rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "fixtures" | ".git" | "vendor") {
                continue;
            }
            out.extend(walk_rs_files(&path)?);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(out)
}

pub(crate) fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Knobs the CLI exposes; [`run_tidy`] is the defaults-everywhere entry.
pub struct TidyOptions {
    /// Apply the mechanical rewrites before reporting.
    pub apply_fix: bool,
    /// Read/write `target/tidy-cache`. Off for cold-timing and tests
    /// that must not see another run's state.
    pub use_cache: bool,
}

/// Run the whole pass over the workspace at `root` with default options
/// (cache on). With `apply_fix`, mechanically rewrite fixable findings
/// in place first, then report whatever remains.
pub fn run_tidy(root: &Path, apply_fix: bool) -> io::Result<Vec<Finding>> {
    run_tidy_with(
        root,
        &TidyOptions {
            apply_fix,
            use_cache: true,
        },
    )
}

pub fn run_tidy_with(root: &Path, opts: &TidyOptions) -> io::Result<Vec<Finding>> {
    let mut sources: Vec<(String, PathBuf, String)> = Vec::new();
    for path in walk_rs_files(&root.join("crates"))? {
        let rel = rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        sources.push((rel, path, src));
    }

    let cached = if opts.use_cache {
        cache::load(root)
    } else {
        None
    };
    if !opts.apply_fix {
        if let Some(c) = &cached {
            // Warm path: nothing changed since the recorded run — return
            // its findings without lexing a single line.
            let hashes: Vec<(String, u64)> = sources
                .iter()
                .map(|(rel, _, src)| (rel.clone(), pipeline::fnv1a(src.as_bytes())))
                .collect();
            if let Some(findings) = c.full_hit(&hashes) {
                return Ok(findings);
            }
        }
    }

    let table = rules::rules();
    let mut files: Vec<SourceFile> =
        rayon::par_map(&sources, |(rel, _, src)| SourceFile::from_source(rel, src));

    if opts.apply_fix {
        for (i, (rel, path, src)) in sources.iter_mut().enumerate() {
            let mut lines: Vec<String> = src.split('\n').map(str::to_string).collect();
            let mut changed = false;
            for f in line_findings(&files[i], &table) {
                if f.line == 0 || f.line > lines.len() {
                    continue;
                }
                let (fixed, n) = match f.rule.as_str() {
                    "float-ord" => fix::fix_partial_cmp(&lines[f.line - 1]),
                    "vec-swap-remove" => fix::fix_swap_remove(&lines[f.line - 1]),
                    _ => continue,
                };
                if n > 0 {
                    lines[f.line - 1] = fixed;
                    changed = true;
                }
            }
            if changed {
                *src = lines.join("\n");
                fs::write(path, &*src)?;
                files[i] = SourceFile::from_source(rel, src);
            }
        }
    }

    // Per-file pass, in parallel; unchanged files reuse cached findings.
    let indices: Vec<usize> = (0..files.len()).collect();
    let per_file: Vec<Vec<Finding>> = rayon::par_map(&indices, |&i| {
        let file = &files[i];
        if !opts.apply_fix {
            if let Some(hit) = cached
                .as_ref()
                .and_then(|c| c.file_hit(&file.rel, file.hash))
            {
                return hit.to_vec();
            }
        }
        line_findings(file, &table)
    });

    // Semantic and cross-file passes see the whole (post-fix) file set.
    let ix = index::WorkspaceIndex::build(&files);
    let graph = callgraph::CallGraph::build(&files, &ix);
    let mut semantic = Vec::new();
    semantic.extend(taint::check(&files, &ix, &graph));
    semantic.extend(panics::check(&files, &ix, &graph));
    semantic.extend(units::check(&files));
    semantic.extend(schema_check::check_schema(root));
    semantic.extend(obs_check::check_obs_names(root));

    if opts.use_cache {
        let entries: Vec<((String, u64), Vec<Finding>)> = files
            .iter()
            .zip(per_file.iter())
            .map(|(f, found)| ((f.rel.clone(), f.hash), found.clone()))
            .collect();
        // Cache write failure is not a lint failure; next run is cold.
        let _ = cache::store(root, &entries, &semantic);
    }

    let mut findings: Vec<Finding> = per_file.into_iter().flatten().chain(semantic).collect();
    cache::sort_findings(&mut findings);
    Ok(findings)
}

/// Serialize findings as a JSON array (hand-rolled: tidy parses nothing
/// and emits everything itself).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            r#"{{"rule":"{}","path":"{}","line":{},"message":"{}","suggestion":"{}"}}"#,
            json_escape(&f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.suggestion),
        ));
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_parsing() {
        assert_eq!(
            parse_pragmas(" tidy: allow(float-ord): NaN rejected upstream"),
            vec![("float-ord".to_string(), true)]
        );
        assert_eq!(
            parse_pragmas(" tidy: allow(float-eq)"),
            vec![("float-eq".to_string(), false)]
        );
        assert_eq!(
            parse_pragmas(" tidy: allow(float-eq):   "),
            vec![("float-eq".to_string(), false)]
        );
        assert!(parse_pragmas("ordinary comment").is_empty());
    }

    #[test]
    fn pragma_scan_validates_against_the_registry() {
        let scanned = scan::scan_source(
            "// tidy: allow(panic-path): bounded by construction\nlet x = xs[0];\n// tidy: allow(panic-unwrap): stale id\nlet y = 1;\n",
        );
        let (findings, allow) = pragma_scan("crates/predict/src/x.rs", &scanned);
        assert_eq!(findings.len(), 1, "stale rule id must be reported");
        assert!(findings[0].message.contains("panic-unwrap"));
        assert_eq!(allow.get(&1).map(Vec::len), Some(1));
    }

    #[test]
    fn exempt_contexts() {
        assert!(file_context("crates/simnet/tests/x.rs").exempt);
        assert!(file_context("crates/bench/benches/x.rs").exempt);
        assert!(file_context("crates/core/examples/x.rs").exempt);
        assert!(!file_context("crates/simnet/src/network.rs").exempt);
        assert_eq!(
            file_context("crates/simnet/src/network.rs")
                .krate
                .as_deref(),
            Some("simnet")
        );
    }

    #[test]
    fn json_escaping() {
        let f = Finding {
            rule: "x".into(),
            path: "a/b.rs".into(),
            line: 3,
            message: "say \"hi\"\n".into(),
            suggestion: "s".into(),
        };
        let j = to_json(&[f]);
        assert!(j.contains(r#"\"hi\"\n"#));
    }
}
