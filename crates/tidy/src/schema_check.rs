//! Cross-file ULM / LDAP-schema coherence (rule id `ulm-schema`).
//!
//! Two families of drift are caught here, both of which bit real Grid
//! deployments of the paper's monitoring stack:
//!
//! 1. **ULM keyword drift** — every keyword constant declared in
//!    `logfmt::ulm::keys` must be written by `encode` *and* read back by
//!    `decode`. A keyword emitted but never parsed silently drops data on
//!    reload; one declared but never emitted is dead vocabulary.
//! 2. **LDAP attribute drift** — every performance attribute the GRIS
//!    provider publishes (`infod::provider`), every degraded-mode
//!    attribute the GRIS itself stamps onto cached entries
//!    (`infod::gris`), and every attribute the replica broker queries
//!    (`replica::broker`) must be declared in `infod::schema`, and every
//!    performance attribute the perf object class declares must actually
//!    be emitted somewhere. A typo'd attribute name otherwise just reads
//!    as "absent" at run time.
//!
//! Extraction is lexical but operates on comment-stripped, test-stripped
//! source (see [`crate::scan`]), so doc comments and test fixtures cannot
//! confuse it. Provider attributes built with `format!` are expanded over
//! the known `{tag}` (rd/wr) and `{range}` (size-class) placeholders;
//! literals with any other placeholder are skipped as dynamic.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use crate::scan::{scan_source, ScannedFile};
use crate::Finding;

const RULE: &str = crate::registry::ULM_SCHEMA;
const TAG_VALUES: &[&str] = &["rd", "wr"];
const RANGE_VALUES: &[&str] = &[
    "tenmbrange",
    "hundredmbrange",
    "fivehundredmbrange",
    "onegbrange",
];

/// Run every coherence check against files under `root`. Files that do
/// not exist are skipped (the checker also runs against fixture trees).
pub fn check_schema(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_ulm_keys(root, &mut findings);
    check_ldap_attrs(root, &mut findings);
    findings
}

fn load(root: &Path, rel: &str) -> Option<(String, ScannedFile)> {
    let src = fs::read_to_string(root.join(rel)).ok()?;
    let scanned = scan_source(&src);
    Some((rel.to_string(), scanned))
}

fn check_ulm_keys(root: &Path, findings: &mut Vec<Finding>) {
    let Some((rel, scanned)) = load(root, "crates/logfmt/src/ulm.rs") else {
        return;
    };
    let Some(keys_span) = span_lines(&scanned, "mod keys") else {
        return;
    };
    // Markers keep the trailing `(` so `fn encode_value` is not mistaken
    // for `fn encode`.
    let encode = span_text(&scanned, "fn encode(");
    let decode = span_text(&scanned, "fn decode(");

    for (name, line) in key_consts(&scanned, keys_span) {
        let reference = format!("keys::{name}");
        if let Some(e) = &encode {
            if !e.contains(&reference) {
                findings.push(Finding::cross_file(
                    RULE,
                    &rel,
                    line,
                    format!(
                        "ULM keyword `{name}` is declared in `keys` but never written by `encode`"
                    ),
                    "emit it in encode or delete the constant",
                ));
            }
        }
        if let Some(d) = &decode {
            if !d.contains(&reference) {
                findings.push(Finding::cross_file(
                    RULE,
                    &rel,
                    line,
                    format!("ULM keyword `{name}` is emitted but never parsed back by `decode`"),
                    "parse it in decode so records round-trip losslessly",
                ));
            }
        }
    }
}

fn check_ldap_attrs(root: &Path, findings: &mut Vec<Finding>) {
    let Some((schema_rel, schema)) = load(root, "crates/infod/src/schema.rs") else {
        return;
    };

    // Declared: candidate-shaped literals inside the object-class consts.
    let perf_declared = class_attrs(&schema, "GRIDFTP_PERF_INFO");
    let server_declared = class_attrs(&schema, "GRIDFTP_SERVER_INFO");
    let declared: BTreeSet<String> = perf_declared.union(&server_declared).cloned().collect();
    let _ = schema_rel;

    // Emitted: attribute-name first arguments of `.add(`/`.set(` calls in
    // the provider (steady state) and the GRIS (degraded-mode stamps like
    // the staleness attribute). Simple `const NAME: &str = ".."`
    // references are resolved within each file.
    let mut emitted = BTreeSet::new();
    let mut any_emitter = false;
    for rel in ["crates/infod/src/provider.rs", "crates/infod/src/gris.rs"] {
        let Some((rel, scanned)) = load(root, rel) else {
            continue;
        };
        any_emitter = true;
        let text = scanned.non_test_source();
        let consts = const_str_values(&text);
        for marker in [".add(", ".set("] {
            for attr in call_attrs(&text, marker, &consts) {
                if !is_candidate_attr(&attr) {
                    continue;
                }
                emitted.insert(attr.clone());
                if !declared.contains(&attr) {
                    findings.push(Finding::cross_file(
                        RULE,
                        &rel,
                        find_line(&scanned, &attr),
                        format!(
                            "provider emits attribute `{attr}` that infod::schema does not declare"
                        ),
                        "declare it in the object class or fix the attribute name",
                    ));
                }
            }
        }
    }
    // Declared perf attributes must actually be published.
    if any_emitter {
        for attr in &perf_declared {
            if !emitted.contains(attr) {
                findings.push(Finding::cross_file(
                    RULE,
                    &schema_rel,
                    find_line(&schema, attr),
                    format!("schema declares attribute `{attr}` that the provider never emits"),
                    "emit it from the provider or drop it from the schema",
                ));
            }
        }
    }

    // Consumed: candidate-shaped literals anywhere in the broker.
    if let Some((rel, broker)) = load(root, "crates/replica/src/broker.rs") {
        let text = broker.non_test_source();
        for attr in string_literals(&text) {
            if is_candidate_attr(&attr) && !declared.contains(&attr) {
                findings.push(Finding::cross_file(
                    RULE,
                    &rel,
                    find_line(&broker, &attr),
                    format!(
                        "broker queries attribute `{attr}` that infod::schema does not declare"
                    ),
                    "fix the attribute name or declare it in the schema",
                ));
            }
        }
    }
}

/// Line range (0-based, end exclusive) of the item whose header contains
/// `marker`, tracked by brace depth on non-test lines.
fn span_lines(scanned: &ScannedFile, marker: &str) -> Option<(usize, usize)> {
    let start = scanned
        .lines
        .iter()
        .position(|l| !l.in_test && l.code.contains(marker))?;
    let mut depth = 0i32;
    let mut opened = false;
    for (i, l) in scanned.lines.iter().enumerate().skip(start) {
        depth += l.brace_delta;
        if l.brace_delta > 0 {
            opened = true;
        }
        if opened && depth <= 0 {
            return Some((start, i + 1));
        }
    }
    Some((start, scanned.lines.len()))
}

pub(crate) fn span_text(scanned: &ScannedFile, marker: &str) -> Option<String> {
    let (a, b) = span_lines(scanned, marker)?;
    let mut out = String::new();
    for l in &scanned.lines[a..b] {
        out.push_str(&l.code_with_strings);
        out.push('\n');
    }
    Some(out)
}

/// `pub const NAME: &str = "..";` declarations inside a line range.
fn key_consts(scanned: &ScannedFile, (a, b): (usize, usize)) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, l) in scanned.lines[a..b].iter().enumerate() {
        if let Some(rest) = l.code.trim_start().strip_prefix("pub const ") {
            if let Some(name) = rest.split(':').next() {
                let name = name.trim();
                if !name.is_empty() {
                    out.push((name.to_string(), a + i + 1));
                }
            }
        }
    }
    out
}

/// Candidate-shaped literals within an object-class const's span.
fn class_attrs(scanned: &ScannedFile, const_name: &str) -> BTreeSet<String> {
    let Some(text) = span_text(scanned, const_name) else {
        return BTreeSet::new();
    };
    string_literals(&text)
        .into_iter()
        .filter(|s| is_candidate_attr(s))
        .collect()
}

/// `const NAME: &str = "value";` bindings in comment-stripped text, so
/// attribute names published through a named constant still resolve.
fn const_str_values(text: &str) -> std::collections::BTreeMap<String, String> {
    let mut out = std::collections::BTreeMap::new();
    let mut rest = text;
    while let Some(pos) = rest.find("const ") {
        rest = &rest[pos + "const ".len()..];
        let Some(colon) = rest.find(':') else { break };
        let name = rest[..colon].trim().to_string();
        let after = &rest[colon + 1..];
        let Some(eq) = after.find('=') else { continue };
        if !after[..eq].contains("str") {
            continue;
        }
        let init = after[eq + 1..].trim_start();
        if let Some(lit) = init.strip_prefix('"') {
            if let Some(end) = lit.find('"') {
                out.insert(name, lit[..end].to_string());
            }
        }
    }
    out
}

/// First-argument attribute names of `marker` calls (`.add(` / `.set(`),
/// with `format!` placeholders expanded over the known tag/range
/// vocabularies and identifier arguments resolved through `consts`.
fn call_attrs(
    text: &str,
    marker: &str,
    consts: &std::collections::BTreeMap<String, String>,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut rest = text;
    while let Some(pos) = rest.find(marker) {
        rest = &rest[pos + marker.len()..];
        let arg = rest.trim_start();
        let arg = arg.strip_prefix('&').unwrap_or(arg).trim_start();
        if let Some(lit) = arg.strip_prefix('"') {
            if let Some(end) = lit.find('"') {
                out.insert(lit[..end].to_string());
            }
        } else if let Some(fmt) = arg.strip_prefix("format!(") {
            let fmt = fmt.trim_start();
            if let Some(lit) = fmt.strip_prefix('"') {
                if let Some(end) = lit.find('"') {
                    for expanded in expand_placeholders(&lit[..end]) {
                        out.insert(expanded);
                    }
                }
            }
        } else {
            let ident: String = arg
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if let Some(v) = consts.get(&ident) {
                out.insert(v.clone());
            }
        }
    }
    out
}

/// Expand `{tag}` and `{range}` over their vocabularies; a literal with
/// any other placeholder is dynamic and yields nothing.
fn expand_placeholders(template: &str) -> Vec<String> {
    let mut work = vec![template.to_string()];
    for (placeholder, values) in [("{tag}", TAG_VALUES), ("{range}", RANGE_VALUES)] {
        let mut next = Vec::new();
        for t in work {
            if t.contains(placeholder) {
                for v in values {
                    next.push(t.replace(placeholder, v));
                }
            } else {
                next.push(t);
            }
        }
        work = next;
    }
    work.retain(|t| !t.contains('{'));
    work
}

/// An LDAP performance attribute as this stack names them: all-lowercase
/// alphanumeric, mentioning bandwidth/transfer/staleness (or the
/// error-pct gauge). Filter strings, class names, and prose never pass
/// this shape.
fn is_candidate_attr(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
        && (s.contains("bandwidth")
            || s.contains("transfer")
            || s.contains("staleness")
            || s == "predicterrorpct")
}

/// All `"..."` literal contents in comment-stripped text.
fn string_literals(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j <= bytes.len() {
                if let Ok(s) = std::str::from_utf8(&bytes[start..j.min(bytes.len())]) {
                    out.push(s.to_string());
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// 1-based line of the first non-test occurrence of `needle`, for finding
/// locations in reports (0 when not found — cross-file findings may point
/// at an absence rather than a line).
fn find_line(scanned: &ScannedFile, needle: &str) -> usize {
    scanned
        .lines
        .iter()
        .position(|l| !l.in_test && l.code_with_strings.contains(needle))
        .map(|i| i + 1)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expands_tag_and_range() {
        assert_eq!(expand_placeholders("num{tag}transfers").len(), 2);
        assert_eq!(expand_placeholders("avgrdbandwidth{range}").len(), 4);
        assert_eq!(expand_placeholders("plain").len(), 1);
        // Unknown placeholders are dynamic: expansion yields nothing.
        assert!(expand_placeholders("dc={c}").is_empty());
    }

    #[test]
    fn candidate_filter_rejects_classes_and_filters() {
        assert!(is_candidate_attr("avgrdbandwidthonegbrange"));
        assert!(is_candidate_attr("lasttransfertime"));
        assert!(is_candidate_attr("predicterrorpct"));
        assert!(is_candidate_attr("stalenesssecs"));
        assert!(!is_candidate_attr("GridFTPPerfInfo"));
        assert!(!is_candidate_attr("objectclass"));
        assert!(!is_candidate_attr("(&(objectclass=x)(cn=y))"));
    }

    #[test]
    fn call_attrs_resolves_named_constants() {
        let consts = const_str_values("pub const STALENESS_ATTR: &str = \"stalenesssecs\";\n");
        assert_eq!(
            consts.get("STALENESS_ATTR").map(String::as_str),
            Some("stalenesssecs")
        );
        let attrs = call_attrs(
            "stale.set(STALENESS_ATTR, age.to_string());",
            ".set(",
            &consts,
        );
        assert!(attrs.contains("stalenesssecs"));
        // Literal and format! arguments still work through the same path.
        let attrs = call_attrs("e.add(\"avgrdbandwidth\", v);", ".add(", &consts);
        assert!(attrs.contains("avgrdbandwidth"));
    }
}
