//! SARIF 2.1.0 serialization.
//!
//! SARIF is the interchange format code-scanning UIs (GitHub's included)
//! ingest; emitting it lets CI annotate findings on the lines they point
//! at instead of burying them in a log. One run, one driver
//! (`wanpred-tidy`), the full rule registry as `rules` metadata, and one
//! `result` per finding. Hand-rolled like `to_json` — tidy keeps its
//! no-external-parser diet — and deterministic: output bytes depend only
//! on the findings slice and the registry.

use crate::registry;
use crate::{json_escape, Finding};

/// Serialize findings as a single-run SARIF 2.1.0 log.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        r#"{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"wanpred-tidy","informationUri":"https://example.invalid/wanpred","rules":["#,
    );
    for (i, rule) in registry::all().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            r#"{{"id":"{}","shortDescription":{{"text":"{}"}}}}"#,
            json_escape(rule.id),
            json_escape(rule.summary),
        ));
    }
    out.push_str(r#"]}},"results":["#);
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            r#"{{"ruleId":"{}","level":"error","message":{{"text":"{}"}},"locations":[{{"physicalLocation":{{"artifactLocation":{{"uri":"{}"}}"#,
            json_escape(&f.rule),
            json_escape(&format!("{} | {}", f.message, f.suggestion)),
            json_escape(&f.path),
        ));
        // Line 0 marks an absence (a missing constant, an unemitted
        // metric); SARIF regions are 1-based, so those carry no region.
        if f.line > 0 {
            out.push_str(&format!(r#","region":{{"startLine":{}}}"#, f.line));
        }
        out.push_str("}}]}");
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(line: usize) -> Finding {
        Finding {
            rule: "wall-clock".into(),
            path: "crates/simnet/src/engine.rs".into(),
            line,
            message: "say \"hi\"".into(),
            suggestion: "use SimTime".into(),
        }
    }

    #[test]
    fn sarif_names_every_registered_rule_and_locates_findings() {
        let s = to_sarif(&[finding(7)]);
        assert!(s.starts_with(r#"{"$schema""#));
        for rule in registry::all() {
            assert!(
                s.contains(&format!(r#""id":"{}""#, rule.id)),
                "{} missing",
                rule.id
            );
        }
        assert!(s.contains(r#""ruleId":"wall-clock""#));
        assert!(s.contains(r#""startLine":7"#));
        assert!(s.contains(r#"\"hi\""#));
        assert!(s.contains(r#""uri":"crates/simnet/src/engine.rs""#));
    }

    #[test]
    fn line_zero_findings_omit_the_region() {
        let s = to_sarif(&[finding(0)]);
        assert!(!s.contains("startLine"));
        // Empty findings still produce a structurally complete log.
        let empty = to_sarif(&[]);
        assert!(empty.ends_with(r#""results":[]}]}"#));
    }
}
