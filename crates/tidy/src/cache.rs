//! Content-hash incremental cache under `target/tidy-cache/`.
//!
//! The cache file records, per workspace file, the FNV-1a hash of its
//! raw bytes and the findings the per-file pass produced, plus one
//! shared section for everything cross-file (schema/obs coherence and
//! the call-graph passes — any edit anywhere can change those, so they
//! are keyed on the whole file set).
//!
//! Two levels of reuse:
//! * **full hit** — every `(path, hash)` matches and no file was added
//!   or removed: the stored findings are returned verbatim, skipping
//!   lexing, indexing and all passes. This is the warm path CI and
//!   pre-commit hooks live on; the self-test pins it at >=5x cold speed
//!   with byte-identical `--json` output.
//! * **per-file hit** — some files changed: unchanged files reuse their
//!   stored per-file findings, everything semantic recomputes.
//!
//! The header binds the cache to the rule set (a digest over registry
//! ids and the cache format version), so adding or renaming a rule
//! invalidates stale findings wholesale. Writes go to a temp file then
//! rename, so a crashed run never leaves a torn cache — at worst the
//! next run is cold.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::pipeline::fnv1a;
use crate::registry;
use crate::Finding;

const FORMAT: &str = "tidy-cache-v1";

/// Parsed cache contents.
pub struct Cache {
    /// rel path -> (content hash, per-file findings).
    pub files: BTreeMap<String, (u64, Vec<Finding>)>,
    /// Cross-file and semantic findings for the whole recorded file set.
    pub semantic: Vec<Finding>,
}

pub fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("tidy-cache").join("run.cache")
}

/// Digest binding a cache to the rule set and format; any rule change
/// makes old entries unreadable rather than silently wrong.
fn ruleset_digest() -> u64 {
    let mut ids = registry::known_rule_ids().join(",");
    ids.push('|');
    ids.push_str(FORMAT);
    fnv1a(ids.as_bytes())
}

/// Load the cache if present, well-formed, and built by this rule set.
pub fn load(root: &Path) -> Option<Cache> {
    let text = fs::read_to_string(cache_path(root)).ok()?;
    parse(&text)
}

fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let digest = header.strip_prefix(&format!("{FORMAT} "))?;
    if digest.parse::<u64>().ok()? != ruleset_digest() {
        return None;
    }
    let mut cache = Cache {
        files: BTreeMap::new(),
        semantic: Vec::new(),
    };
    // Findings accumulate into the most recent `file` entry until the
    // `semantic` marker, then into the shared section.
    let mut current: Option<String> = None;
    let mut in_semantic = false;
    for line in lines {
        if let Some(rest) = line.strip_prefix("file ") {
            let (hash, rel) = rest.split_once(' ')?;
            let hash = hash.parse::<u64>().ok()?;
            cache.files.insert(rel.to_string(), (hash, Vec::new()));
            current = Some(rel.to_string());
        } else if line == "semantic" {
            in_semantic = true;
            current = None;
        } else if let Some(rest) = line.strip_prefix("find ") {
            let finding = parse_finding(rest)?;
            if in_semantic {
                cache.semantic.push(finding);
            } else {
                let rel = current.as_ref()?;
                cache.files.get_mut(rel)?.1.push(finding);
            }
        } else if !line.is_empty() {
            return None;
        }
    }
    Some(cache)
}

impl Cache {
    /// Stored per-file findings when `rel` is unchanged at `hash`.
    pub fn file_hit(&self, rel: &str, hash: u64) -> Option<&[Finding]> {
        self.files
            .get(rel)
            .filter(|(h, _)| *h == hash)
            .map(|(_, f)| f.as_slice())
    }

    /// All findings, sorted, iff the given `(rel, hash)` set matches the
    /// recorded one exactly (no edits, additions or removals).
    pub fn full_hit(&self, hashes: &[(String, u64)]) -> Option<Vec<Finding>> {
        if hashes.len() != self.files.len() {
            return None;
        }
        for (rel, hash) in hashes {
            if self.files.get(rel).map(|(h, _)| *h) != Some(*hash) {
                return None;
            }
        }
        let mut out: Vec<Finding> = self
            .files
            .values()
            .flat_map(|(_, f)| f.iter().cloned())
            .chain(self.semantic.iter().cloned())
            .collect();
        sort_findings(&mut out);
        Some(out)
    }
}

pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });
}

/// Persist a run. `per_file` pairs each file's `(rel, hash)` with the
/// findings its per-file pass produced; `semantic` is everything else.
pub fn store(
    root: &Path,
    per_file: &[((String, u64), Vec<Finding>)],
    semantic: &[Finding],
) -> io::Result<()> {
    let mut out = format!("{FORMAT} {}\n", ruleset_digest());
    for ((rel, hash), findings) in per_file {
        out.push_str(&format!("file {hash} {rel}\n"));
        for f in findings {
            out.push_str("find ");
            out.push_str(&encode_finding(f));
            out.push('\n');
        }
    }
    out.push_str("semantic\n");
    for f in semantic {
        out.push_str("find ");
        out.push_str(&encode_finding(f));
        out.push('\n');
    }
    let path = cache_path(root);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    // Temp-then-rename keeps concurrent runs from reading a torn file.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, &out)?;
    fs::rename(&tmp, &path)
}

/// Tab-separated, with tabs/newlines/backslashes escaped — findings
/// round-trip exactly, which is what makes warm `--json` byte-identical.
fn encode_finding(f: &Finding) -> String {
    [
        f.rule.as_str(),
        f.path.as_str(),
        &f.line.to_string(),
        f.message.as_str(),
        f.suggestion.as_str(),
    ]
    .iter()
    .map(|s| escape(s))
    .collect::<Vec<_>>()
    .join("\t")
}

fn parse_finding(line: &str) -> Option<Finding> {
    let mut fields = line.split('\t').map(unescape);
    let rule = fields.next()?;
    let path = fields.next()?;
    let line_no = fields.next()?.parse::<usize>().ok()?;
    let message = fields.next()?;
    let suggestion = fields.next()?;
    if fields.next().is_some() {
        return None;
    }
    Some(Finding {
        rule,
        path,
        line: line_no,
        message,
        suggestion,
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, path: &str, line: usize) -> Finding {
        Finding {
            rule: rule.into(),
            path: path.into(),
            line,
            message: "m\twith\ttabs\nand newline".into(),
            suggestion: "s\\backslash".into(),
        }
    }

    #[test]
    fn findings_round_trip_through_the_escaped_encoding() {
        let f = finding("wall-clock", "crates/simnet/src/x.rs", 7);
        let enc = encode_finding(&f);
        assert_eq!(parse_finding(&enc).as_ref(), Some(&f));
    }

    #[test]
    fn store_load_full_hit_and_invalidation() {
        let dir = std::env::temp_dir().join(format!("tidy-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");

        let per_file = vec![
            (
                ("crates/a/src/l.rs".to_string(), 11u64),
                vec![finding("float-eq", "crates/a/src/l.rs", 3)],
            ),
            (("crates/b/src/l.rs".to_string(), 22u64), Vec::new()),
        ];
        let semantic = vec![finding("determinism-taint", "crates/b/src/l.rs", 9)];
        store(&dir, &per_file, &semantic).expect("store");

        let cache = load(&dir).expect("load");
        assert_eq!(
            cache.file_hit("crates/a/src/l.rs", 11).map(<[_]>::len),
            Some(1)
        );
        assert!(cache.file_hit("crates/a/src/l.rs", 12).is_none());

        let same = vec![
            ("crates/a/src/l.rs".to_string(), 11u64),
            ("crates/b/src/l.rs".to_string(), 22u64),
        ];
        let hit = cache.full_hit(&same).expect("full hit");
        assert_eq!(hit.len(), 2);
        assert!(hit.windows(2).all(|w| w[0].path <= w[1].path));

        // Any edit, addition or removal degrades to per-file reuse.
        let edited = vec![
            ("crates/a/src/l.rs".to_string(), 99u64),
            ("crates/b/src/l.rs".to_string(), 22u64),
        ];
        assert!(cache.full_hit(&edited).is_none());
        assert!(cache.full_hit(&same[..1]).is_none());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_or_torn_cache_reads_as_cold() {
        assert!(parse("bogus").is_none());
        assert!(parse(&format!("{FORMAT} 123\nfile nothash x\n")).is_none());
    }
}
