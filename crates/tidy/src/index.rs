//! Workspace item index: a lightweight, rustc-free pass that turns the
//! lexed source of every non-exempt crate file into a table of function
//! items (free functions *and* methods, with their enclosing module path
//! and `impl` type), per-file `use`-import maps, and the identifiers
//! declared with `HashMap`/`HashSet` types. The [`crate::callgraph`]
//! module resolves call sites against this table; the taint, panic and
//! unit passes consume both.
//!
//! Parsing is lexical and brace-driven (the lexer has already blanked
//! strings and stripped comments): item headers (`fn`/`mod`/`impl`/
//! `trait`) set a *pending* item which the next `{` turns into a frame on
//! a context stack, and the matching `}` closes the item's body span. A
//! `;` before any brace cancels the pending item (out-of-line modules,
//! trait method declarations). `#[cfg(test)]` regions are skipped
//! entirely — their braces are balanced within the region, so the stack
//! stays consistent.

use std::collections::{BTreeMap, BTreeSet};

use crate::pipeline::SourceFile;

/// One indexed function item.
pub struct FnItem {
    /// Crate directory name under `crates/`.
    pub krate: String,
    pub name: String,
    /// `pub fn` exactly; `pub(crate)`/`pub(super)` do not count — the
    /// panic pass treats only true public API as entry points.
    pub is_pub: bool,
    /// Declared inside an `impl` or `trait` block.
    pub is_method: bool,
    /// The `impl`/`trait` type name, for `Type::method(` resolution.
    pub self_type: Option<String>,
    /// Enclosing inline-module names, outermost first.
    pub module: Vec<String>,
    /// Index into the `SourceFile` slice the index was built from.
    pub file: usize,
    /// 1-based header line.
    pub line: usize,
    /// 0-based inclusive body line span (includes the header line).
    pub body: (usize, usize),
}

impl FnItem {
    /// `crate::module::name` display path for findings.
    pub fn display(&self) -> String {
        let mut parts = vec![self.krate.clone()];
        parts.extend(self.module.iter().cloned());
        if let Some(t) = &self.self_type {
            parts.push(t.clone());
        }
        parts.push(self.name.clone());
        parts.join("::")
    }
}

/// Per-file facts the call resolver needs.
#[derive(Default)]
pub struct FileFacts {
    /// Leaf item name -> workspace crate dir, from `use wanpred_x::..`.
    pub imports: BTreeMap<String, String>,
    /// Identifiers declared with `HashMap`/`HashSet` types in this file
    /// (struct fields, lets, fn params) — iteration over these is a
    /// determinism-taint source.
    pub hash_typed: BTreeSet<String>,
}

pub struct WorkspaceIndex {
    pub fns: Vec<FnItem>,
    /// Parallel to the `SourceFile` slice.
    pub facts: Vec<FileFacts>,
    /// fn name -> indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Per file: innermost fn owning each 0-based line, if any.
    pub line_owner: Vec<Vec<Option<usize>>>,
}

impl WorkspaceIndex {
    /// Index every non-exempt file. `tidy` lints itself out of scope, as
    /// it always has.
    pub fn build(files: &[SourceFile]) -> WorkspaceIndex {
        let mut fns = Vec::new();
        let mut facts = Vec::new();
        let mut line_owner = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            let indexable = !f.exempt && f.krate.as_deref().is_some_and(|k| k != "tidy");
            if !indexable {
                facts.push(FileFacts::default());
                line_owner.push(vec![None; f.scanned.lines.len()]);
                continue;
            }
            let krate = f.krate.clone().unwrap_or_default();
            facts.push(index_facts(f));
            let before = fns.len();
            index_fns(fi, &krate, f, &mut fns);
            let mut owners = vec![None; f.scanned.lines.len()];
            // Later-declared fns start later; inner fns overwrite outer
            // ones on the lines they own, so each line maps to the
            // innermost function containing it.
            for (id, item) in fns.iter().enumerate().skip(before) {
                let (a, b) = item.body;
                for line in owners.iter_mut().take(b + 1).skip(a) {
                    *line = Some(id);
                }
            }
            line_owner.push(owners);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(id);
        }
        WorkspaceIndex {
            fns,
            facts,
            by_name,
            line_owner,
        }
    }
}

/// What a pending item header will become when its block opens.
enum Pending {
    Fn {
        name: String,
        is_pub: bool,
        /// 1-based line the `fn` keyword appeared on (signatures may
        /// span several lines before the body brace opens).
        header_line: usize,
    },
    Mod(String),
    Impl(Option<String>),
    Anon,
}

/// One open block on the context stack.
enum Frame {
    Fn { id: usize },
    Mod(String),
    Impl(Option<String>),
    Anon,
}

fn index_fns(file: usize, krate: &str, f: &SourceFile, out: &mut Vec<FnItem>) {
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending: Option<Pending> = None;
    for (i, l) in f.scanned.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = &l.code;
        // Events on this line, in textual order: item headers, braces and
        // statement-ending semicolons all interact (one-liners open and
        // close on the same line).
        let mut events: Vec<(usize, Event)> = Vec::new();
        collect_headers(code, i + 1, &mut events);
        for (pos, c) in code.char_indices() {
            match c {
                '{' => events.push((pos, Event::Open)),
                '}' => events.push((pos, Event::Close)),
                ';' => events.push((pos, Event::Semi)),
                _ => {}
            }
        }
        events.sort_by_key(|(pos, e)| (*pos, e.order()));
        for (_, ev) in events {
            match ev {
                Event::Header(p) => pending = Some(p),
                Event::Semi => {
                    // `mod tests;`, `fn f(&self);` in traits: no block.
                    pending = None;
                }
                Event::Open => {
                    let frame = match pending.take().unwrap_or(Pending::Anon) {
                        Pending::Fn {
                            name,
                            is_pub,
                            header_line,
                        } => {
                            let module = stack
                                .iter()
                                .filter_map(|fr| match fr {
                                    Frame::Mod(m) => Some(m.clone()),
                                    _ => None,
                                })
                                .collect();
                            let self_type = stack.iter().rev().find_map(|fr| match fr {
                                Frame::Impl(t) => Some(t.clone()),
                                _ => None,
                            });
                            let is_method = self_type.is_some();
                            out.push(FnItem {
                                krate: krate.to_string(),
                                name,
                                is_pub,
                                is_method,
                                self_type: self_type.flatten(),
                                module,
                                file,
                                line: header_line,
                                body: (i, i),
                            });
                            Frame::Fn { id: out.len() - 1 }
                        }
                        Pending::Mod(m) => Frame::Mod(m),
                        Pending::Impl(t) => Frame::Impl(t),
                        Pending::Anon => Frame::Anon,
                    };
                    stack.push(frame);
                }
                Event::Close => {
                    if let Some(Frame::Fn { id }) = stack.pop() {
                        out[id].body.1 = i;
                    }
                }
            }
        }
    }
    // Unbalanced input (should not happen on real source): close spans at
    // the last line rather than dropping them.
    let last = f.scanned.lines.len().saturating_sub(1);
    while let Some(frame) = stack.pop() {
        if let Frame::Fn { id } = frame {
            out[id].body.1 = last;
        }
    }
}

enum Event {
    Header(Pending),
    Open,
    Close,
    Semi,
}

impl Event {
    /// Headers at the same position as a brace sort first (cannot happen
    /// textually, but keep ordering total and deterministic).
    fn order(&self) -> u8 {
        match self {
            Event::Header(_) => 0,
            Event::Open => 1,
            Event::Close => 1,
            Event::Semi => 1,
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Word-boundary occurrences of `needle` in `code`.
fn token_positions(code: &str, needle: &str) -> Vec<usize> {
    code.match_indices(needle)
        .filter(|(pos, _)| {
            let before_ok = *pos == 0 || !code[..*pos].ends_with(is_ident_char);
            let after = code[*pos + needle.len()..].chars().next();
            before_ok && !after.is_some_and(is_ident_char)
        })
        .map(|(pos, _)| pos)
        .collect()
}

fn ident_after(code: &str, from: usize) -> String {
    code[from..]
        .trim_start()
        .chars()
        .take_while(|c| is_ident_char(*c))
        .collect()
}

fn collect_headers(code: &str, line_1based: usize, events: &mut Vec<(usize, Event)>) {
    for pos in token_positions(code, "fn") {
        let name = ident_after(code, pos + 2);
        if name.is_empty() {
            continue;
        }
        // Visibility is whatever sits between the previous statement
        // boundary and the `fn` keyword: `pub fn`, `pub const fn`, ...
        let head_start = code[..pos]
            .rfind(['{', '}', ';'])
            .map(|p| p + 1)
            .unwrap_or(0);
        let head = &code[head_start..pos];
        let is_pub = token_positions(head, "pub")
            .iter()
            .any(|p| !head[p + 3..].trim_start().starts_with('('));
        events.push((
            pos,
            Event::Header(Pending::Fn {
                name,
                is_pub,
                header_line: line_1based,
            }),
        ));
    }
    for pos in token_positions(code, "mod") {
        let name = ident_after(code, pos + 3);
        if !name.is_empty() {
            events.push((pos, Event::Header(Pending::Mod(name))));
        }
    }
    for kw in ["impl", "trait"] {
        for pos in token_positions(code, kw) {
            let ty = impl_type(&code[pos + kw.len()..], kw == "trait");
            events.push((pos, Event::Header(Pending::Impl(ty))));
        }
    }
}

/// The type name an `impl` header targets (or a trait's own name): the
/// last path segment of the part after ` for ` when present, else of the
/// first type, with leading generic parameters skipped.
fn impl_type(after_kw: &str, is_trait: bool) -> Option<String> {
    let mut rest = after_kw;
    // Skip `<...>` generic parameters on the keyword itself.
    let trimmed = rest.trim_start();
    if let Some(generics) = trimmed.strip_prefix('<') {
        let mut depth = 1usize;
        let mut end = None;
        for (i, c) in generics.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &generics[end? + 1..];
    } else {
        rest = trimmed;
    }
    let head = rest
        .split(['{'])
        .next()
        .unwrap_or(rest)
        .split(" where ")
        .next()
        .unwrap_or(rest);
    let target = if is_trait {
        head
    } else {
        head.rsplit(" for ").next().unwrap_or(head)
    };
    let target = target.trim();
    // Last `::` path segment, stripped of generic arguments.
    let seg = target.rsplit("::").next().unwrap_or(target);
    let name: String = seg.chars().take_while(|c| is_ident_char(*c)).collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Workspace crate dir a `use` path's first segment refers to, if any.
fn crate_of_segment(seg: &str) -> Option<String> {
    seg.strip_prefix("wanpred_").map(str::to_string)
}

fn index_facts(f: &SourceFile) -> FileFacts {
    let mut facts = FileFacts::default();
    for l in &f.scanned.lines {
        if l.in_test {
            continue;
        }
        let code = l.code.trim_start();
        if let Some(path) = code.strip_prefix("use ") {
            parse_use(path.trim_end().trim_end_matches(';'), &mut facts.imports);
        }
        collect_hash_typed(&l.code, &mut facts.hash_typed);
    }
    facts
}

/// `use wanpred_x::a::b;`, `use wanpred_x::{a, b as c};` — map each leaf
/// name to its crate so bare calls resolve across crates. Globs, std and
/// intra-crate imports contribute nothing.
fn parse_use(path: &str, imports: &mut BTreeMap<String, String>) {
    let mut segs = path.split("::").map(str::trim);
    let Some(first) = segs.next() else { return };
    let Some(krate) = crate_of_segment(first) else {
        return;
    };
    let rest: Vec<&str> = segs.collect();
    let Some(last) = rest.last() else { return };
    if let Some(list) = last.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
        for item in list.split(',') {
            insert_leaf(item.trim(), &krate, imports);
        }
    } else {
        insert_leaf(last, &krate, imports);
    }
}

fn insert_leaf(item: &str, krate: &str, imports: &mut BTreeMap<String, String>) {
    let name = match item.split_once(" as ") {
        Some((_, alias)) => alias.trim(),
        None => item.rsplit("::").next().unwrap_or(item).trim(),
    };
    if !name.is_empty() && name != "*" && name != "self" {
        imports.insert(name.to_string(), krate.to_string());
    }
}

/// Identifiers bound to `HashMap`/`HashSet` on this line: struct fields
/// and params (`name: HashMap<..>`) and lets (`let name = HashMap::new()`).
fn collect_hash_typed(code: &str, out: &mut BTreeSet<String>) {
    for ty in ["HashMap", "HashSet"] {
        for pos in token_positions(code, ty) {
            let before = code[..pos].trim_end();
            let Some(before) = before.strip_suffix([':', '=']).map(str::trim_end) else {
                continue;
            };
            let ident: String = before
                .chars()
                .rev()
                .take_while(|c| is_ident_char(*c))
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                out.insert(ident);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SourceFile;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(rel, src)
    }

    #[test]
    fn indexes_free_fns_methods_and_modules() {
        let src = "\
pub fn outer() {\n    inner();\n}\n\nfn inner() {}\n\nmod sub {\n    pub fn in_sub() {}\n}\n\npub struct S;\n\nimpl S {\n    pub fn method(&self) -> u32 {\n        7\n    }\n}\n";
        let files = [file("crates/predict/src/x.rs", src)];
        let ix = WorkspaceIndex::build(&files);
        let names: Vec<(&str, bool, bool)> = ix
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub, f.is_method))
            .collect();
        assert_eq!(
            names,
            vec![
                ("outer", true, false),
                ("inner", false, false),
                ("in_sub", true, false),
                ("method", true, true),
            ]
        );
        assert_eq!(ix.fns[2].module, vec!["sub".to_string()]);
        assert_eq!(ix.fns[3].self_type.as_deref(), Some("S"));
        // Line ownership: `inner();` (0-based line 1) belongs to `outer`.
        assert_eq!(ix.line_owner[0][1], Some(0));
    }

    #[test]
    fn pub_crate_is_not_public_api() {
        let src = "pub(crate) fn internal() {}\npub fn external() {}\n";
        let files = [file("crates/predict/src/x.rs", src)];
        let ix = WorkspaceIndex::build(&files);
        assert!(!ix.fns[0].is_pub);
        assert!(ix.fns[1].is_pub);
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped_and_defaults_indexed() {
        let src = "pub trait T {\n    fn required(&self);\n    fn provided(&self) -> u32 {\n        1\n    }\n}\n";
        let files = [file("crates/predict/src/x.rs", src)];
        let ix = WorkspaceIndex::build(&files);
        assert_eq!(ix.fns.len(), 1);
        assert_eq!(ix.fns[0].name, "provided");
        assert!(ix.fns[0].is_method);
        assert_eq!(ix.fns[0].self_type.as_deref(), Some("T"));
    }

    #[test]
    fn impl_trait_for_type_resolves_to_the_type() {
        assert_eq!(
            impl_type(" Display for SimTime {", false).as_deref(),
            Some("SimTime")
        );
        assert_eq!(
            impl_type("<T: Ord> Stack<T> {", false).as_deref(),
            Some("Stack")
        );
        assert_eq!(
            impl_type(" fmt::Debug for x::Y {", false).as_deref(),
            Some("Y")
        );
    }

    #[test]
    fn use_imports_map_leaves_to_crates() {
        let src = "use wanpred_core::util::{stamp, mean as avg};\nuse std::fmt;\nuse wanpred_predict::ols;\n";
        let files = [file("crates/simnet/src/x.rs", src)];
        let ix = WorkspaceIndex::build(&files);
        let imports = &ix.facts[0].imports;
        assert_eq!(imports.get("stamp").map(String::as_str), Some("core"));
        assert_eq!(imports.get("avg").map(String::as_str), Some("core"));
        assert_eq!(imports.get("ols").map(String::as_str), Some("predict"));
        assert!(!imports.contains_key("fmt"));
    }

    #[test]
    fn hash_typed_identifiers_are_collected() {
        let src = "struct S {\n    active: HashMap<u32, u32>,\n}\nfn f(seen: HashSet<u64>) {\n    let cache = HashMap::new();\n}\n";
        let files = [file("crates/storage/src/x.rs", src)];
        let ix = WorkspaceIndex::build(&files);
        let h = &ix.facts[0].hash_typed;
        assert!(h.contains("active"));
        assert!(h.contains("seen"));
        assert!(h.contains("cache"));
    }

    #[test]
    fn multi_line_signatures_attach_to_the_right_body() {
        let src = "pub fn long(\n    a: u32,\n    b: u32,\n) -> u32 {\n    a + b\n}\n";
        let files = [file("crates/predict/src/x.rs", src)];
        let ix = WorkspaceIndex::build(&files);
        assert_eq!(ix.fns.len(), 1);
        assert_eq!(ix.fns[0].line, 1);
        assert_eq!(ix.fns[0].body, (3, 5));
    }
}
