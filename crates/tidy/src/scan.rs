//! Per-file scanning: lexes every line and marks which lines sit inside
//! `#[cfg(test)]` regions, so rules can exempt inline test modules the
//! same way whole `tests/`/`benches/` directories are exempt.

use crate::lexer::Lexer;

/// One scanned line of a source file.
pub struct LineInfo {
    /// Comments stripped, string/char contents blanked. Patterns match this.
    pub code: String,
    /// Comments stripped, string contents kept. The schema checker reads this.
    pub code_with_strings: String,
    /// Trailing `//` comment text, if any (pragmas are parsed from here).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Net brace delta, counted outside strings/comments (for span tracking).
    pub brace_delta: i32,
}

pub struct ScannedFile {
    pub lines: Vec<LineInfo>,
}

impl ScannedFile {
    /// The file's non-test code with comments stripped and string contents
    /// preserved, joined back into one string. Cross-file checks parse this
    /// so that doc comments and test fixtures can't confuse extraction.
    pub fn non_test_source(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            if !l.in_test {
                out.push_str(&l.code_with_strings);
            }
            out.push('\n');
        }
        out
    }
}

/// Lex a whole file and compute `#[cfg(test)]` region membership.
///
/// The region tracker is lexical: after a `#[cfg(test)]` attribute, the
/// next `{` opens a test region that ends when brace depth returns to the
/// opening level. An attribute that ends in `;` before any `{` (e.g.
/// `#[cfg(test)] mod tests;`) introduces no region. `cfg(not(test))` and
/// `cfg(any(..))` never match — only the exact `cfg(test)` form does,
/// which is the only form used in this workspace.
pub fn scan_source(src: &str) -> ScannedFile {
    let mut lexer = Lexer::new();
    let mut depth: i32 = 0;
    let mut pending_cfg_test = false;
    let mut test_open_depth: Option<i32> = None;
    let mut lines = Vec::new();

    for raw in src.lines() {
        let lexed = lexer.lex_line(raw);

        if test_open_depth.is_none() && lexed.code.contains("cfg(test)") {
            pending_cfg_test = true;
        }
        if pending_cfg_test && test_open_depth.is_none() {
            if lexed.code.contains('{') {
                test_open_depth = Some(depth);
                pending_cfg_test = false;
            } else if lexed.code.trim_end().ends_with(';') {
                // Out-of-line module or cfg-gated statement: no region.
                pending_cfg_test = false;
            }
        }

        let in_test = test_open_depth.is_some();
        depth += lexed.brace_delta;
        if let Some(open) = test_open_depth {
            if depth <= open {
                test_open_depth = None;
            }
        }

        lines.push(LineInfo {
            code: lexed.code,
            code_with_strings: lexed.code_with_strings,
            comment: lexed.comment,
            in_test,
            brace_delta: lexed.brace_delta,
        });
    }

    ScannedFile { lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_test_module_lines() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scan_source(src);
        let flags: Vec<bool> = s.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(not(test))]\nfn prod() {\n    body();\n}\n";
        let s = scan_source(src);
        assert!(s.lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn cfg_test_out_of_line_module_is_not_a_region() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() {}\n";
        let s = scan_source(src);
        assert!(!s.lines[2].in_test);
    }

    #[test]
    fn single_line_test_item_is_covered() {
        let src = "#[cfg(test)] fn helper() { body(); }\nfn prod() {}\n";
        let s = scan_source(src);
        assert!(s.lines[0].in_test);
        assert!(!s.lines[1].in_test);
    }

    #[test]
    fn intervening_attributes_keep_the_pending_region() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    x();\n}\n";
        let s = scan_source(src);
        assert!(s.lines[3].in_test);
    }
}
