//! CLI for the workspace tidy pass.
//!
//! ```text
//! cargo run -p tidy                 # human-readable report, exit 1 on findings
//! cargo run -p tidy -- --json       # machine-readable report (CI gate)
//! cargo run -p tidy -- --sarif      # SARIF 2.1.0 (code-scanning upload)
//! cargo run -p tidy -- --fix        # apply mechanical rewrites (partial_cmp, swap_remove)
//! cargo run -p tidy -- --no-cache   # ignore target/tidy-cache (cold run)
//! cargo run -p tidy -- --root DIR   # lint a different tree (fixtures, subsets)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut sarif = false;
    let mut apply_fix = false;
    let mut use_cache = true;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--fix" => apply_fix = true,
            "--no-cache" => use_cache = false,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("tidy: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: tidy [--json] [--sarif] [--fix] [--no-cache] [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tidy: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // Default to the workspace root this binary was built from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let opts = tidy::TidyOptions {
        apply_fix,
        use_cache,
    };
    let findings = match tidy::run_tidy_with(&root, &opts) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tidy: error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if sarif {
        println!("{}", tidy::sarif::to_sarif(&findings));
    } else if json {
        println!("{}", tidy::to_json(&findings));
    } else if findings.is_empty() {
        println!("tidy: clean ({} ok)", root.display());
    } else {
        for f in &findings {
            if f.line > 0 {
                println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            } else {
                println!("{}: [{}] {}", f.path, f.rule, f.message);
            }
            println!("    -> {}", f.suggestion);
        }
        println!("tidy: {} finding(s)", findings.len());
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
