//! Determinism taint analysis (rule id `determinism-taint`).
//!
//! The per-line rules catch a wall clock *at the call site*; they are
//! blind to a sim-crate function that calls a helper in `core` or
//! `storage` which reads the clock three frames down. This pass marks
//! nondeterminism *sources* — wall-clock reads, OS entropy,
//! `HashMap`/`HashSet` iteration, `swap_remove` on ordered vectors — in
//! functions of crates the line rules do not police, then walks the call
//! graph: any function in a sim/replay crate ([`crate::rules::SIM_CRATES`])
//! that transitively reaches a source produces a finding *at the source
//! line*, naming the shortest sim-crate call chain that reaches it.
//!
//! Reporting at the source makes pragmas compose as **taint barriers**: a
//! justified `// tidy: allow(determinism-taint): ...` (or a pragma for
//! the underlying line rule, e.g. `wall-clock`) on the source line stops
//! propagation for every caller at once — justify the invariant where it
//! lives, not at each of its transitive users.
//!
//! Sources inside sim crates themselves are *not* re-reported here: the
//! per-line rules already fire on them directly (or a pragma suppresses
//! them, which is exactly the barrier semantics).

use crate::callgraph::CallGraph;
use crate::index::WorkspaceIndex;
use crate::pipeline::SourceFile;
use crate::registry;
use crate::rules::SIM_CRATES;
use crate::Finding;

/// One nondeterminism source occurrence.
struct Source {
    fn_id: usize,
    line: usize, // 0-based
    token: String,
}

/// Iteration markers that make a `HashMap`/`HashSet` binding order-
/// dependent. `get`/`contains`/`len` are order-free and never taint.
const HASH_ITER_MARKERS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

pub fn check(files: &[SourceFile], ix: &WorkspaceIndex, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    let sources = collect_sources(files, ix);
    for src in sources {
        let Some(chain) = sim_reach_chain(ix, graph, src.fn_id) else {
            continue;
        };
        let file = &files[ix.fns[src.fn_id].file];
        let path: Vec<String> = chain.iter().map(|&id| ix.fns[id].display()).collect();
        findings.push(Finding::cross_file(
            registry::DETERMINISM_TAINT,
            &file.rel,
            src.line + 1,
            format!(
                "`{}` taints the deterministic replay path: reachable from `{}` via {}",
                src.token,
                path.first().cloned().unwrap_or_default(),
                path.join(" -> "),
            ),
            "make the helper deterministic (sim clock, seeded rng, ordered map), or justify \
             with `// tidy: allow(determinism-taint): <why this cannot skew a replay>`",
        ));
    }
    findings
}

/// Sources in crates the per-line determinism rules do NOT cover (they
/// own their crates), excluding `bench` (wall-clock measurement is its
/// purpose) and `tidy` (out of scope).
fn collect_sources(files: &[SourceFile], ix: &WorkspaceIndex) -> Vec<Source> {
    let mut out = Vec::new();
    for (fn_id, item) in ix.fns.iter().enumerate() {
        if SIM_CRATES.contains(&item.krate.as_str())
            || item.krate == "bench"
            || item.krate == "tidy"
        {
            continue;
        }
        let file = &files[item.file];
        let hash_typed = &ix.facts[item.file].hash_typed;
        let (a, b) = item.body;
        for line in a..=b {
            if ix.line_owner[item.file][line] != Some(fn_id) {
                continue;
            }
            let info = &file.scanned.lines[line];
            if info.in_test {
                continue;
            }
            let code = &info.code;
            let mut push = |token: String, underlying: &'static str| {
                if !file.allowed(line, &[registry::DETERMINISM_TAINT, underlying]) {
                    out.push(Source { fn_id, line, token });
                }
            };
            for token in ["Instant::now", "SystemTime::now", "SystemTime"] {
                if code.contains(token) {
                    push(token.to_string(), "wall-clock");
                    break;
                }
            }
            for token in ["thread_rng", "from_entropy", "rand::random"] {
                if code.contains(token) {
                    push(token.to_string(), "thread-rng");
                    break;
                }
            }
            if code.contains(".swap_remove(") {
                push(".swap_remove(".to_string(), "vec-swap-remove");
            }
            if let Some(binding) = hash_iteration(code, hash_typed) {
                push(binding, "unordered-map");
            }
        }
    }
    out
}

/// A `HashMap`/`HashSet`-typed binding iterated on this line, rendered as
/// the offending token (`active.iter()`).
fn hash_iteration(code: &str, hash_typed: &std::collections::BTreeSet<String>) -> Option<String> {
    for name in hash_typed {
        for marker in HASH_ITER_MARKERS {
            let needle = format!("{name}{marker}");
            if let Some(pos) = code.find(&needle) {
                let before = code[..pos].chars().next_back();
                let boundary = !before.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
                if boundary {
                    return Some(format!("{name}{}", marker.trim_end_matches('(')));
                }
            }
        }
        // `for x in &map` / `for (k, v) in map` — iteration without a
        // method call.
        if let Some(pos) = code.find(" in ") {
            let tail = code[pos + 4..]
                .trim_start_matches(['&', ' '])
                .trim_start_matches("mut ");
            let ident: String = tail
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if &ident == name && code.trim_start().starts_with("for ") {
                return Some(format!("for .. in {name}"));
            }
        }
    }
    None
}

/// Shortest caller chain from a sim-crate function down to `source_fn`,
/// as fn ids `[sim_entry, .., source_fn]`; `None` when no sim/replay
/// code can reach the source.
fn sim_reach_chain(ix: &WorkspaceIndex, graph: &CallGraph, source_fn: usize) -> Option<Vec<usize>> {
    let n = ix.fns.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[source_fn] = true;
    queue.push_back(source_fn);
    while let Some(cur) = queue.pop_front() {
        if SIM_CRATES.contains(&ix.fns[cur].krate.as_str()) {
            // Parent pointers lead from the sim entry back toward the
            // source, so walking them yields the chain in display order.
            let mut ordered = Vec::new();
            let mut walk = Some(cur);
            while let Some(id) = walk {
                ordered.push(id);
                walk = parent[id];
            }
            return Some(ordered);
        }
        for &(caller, _) in &graph.callers[cur] {
            if !visited[caller] {
                visited[caller] = true;
                parent[caller] = Some(cur);
                queue.push_back(caller);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::index::WorkspaceIndex;
    use crate::pipeline::SourceFile;

    fn run(files: &[SourceFile]) -> Vec<Finding> {
        let ix = WorkspaceIndex::build(files);
        let graph = CallGraph::build(files, &ix);
        check(files, &ix, &graph)
    }

    #[test]
    fn helper_clock_read_taints_the_sim_caller() {
        let sim = SourceFile::from_source(
            "crates/simnet/src/engine.rs",
            "pub fn advance() {\n    let _ = wall_micros_helper();\n}\n",
        );
        let core = SourceFile::from_source(
            "crates/core/src/util.rs",
            "pub fn wall_micros_helper() -> u64 {\n    let _ = std::time::Instant::now();\n    0\n}\n",
        );
        let findings = run(&[sim, core]);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.rule, "determinism-taint");
        assert_eq!(f.path, "crates/core/src/util.rs");
        assert_eq!(f.line, 2);
        assert!(f.message.contains("simnet::advance"));
        assert!(f.message.contains("wall_micros_helper"));
    }

    #[test]
    fn pragma_on_the_source_line_is_a_barrier() {
        let sim = SourceFile::from_source(
            "crates/simnet/src/engine.rs",
            "pub fn advance() {\n    let _ = wall_micros_helper();\n}\n",
        );
        let core = SourceFile::from_source(
            "crates/core/src/util.rs",
            "pub fn wall_micros_helper() -> u64 {\n    // tidy: allow(determinism-taint): diagnostics only, never feeds replay state\n    let _ = std::time::Instant::now();\n    0\n}\n",
        );
        assert!(run(&[sim, core]).is_empty());
    }

    #[test]
    fn unreached_sources_and_hash_lookups_stay_quiet() {
        let core = SourceFile::from_source(
            "crates/core/src/util.rs",
            "pub fn lonely_clock() -> u64 {\n    let _ = std::time::Instant::now();\n    0\n}\n",
        );
        assert!(run(&[core]).is_empty());

        let sim = SourceFile::from_source(
            "crates/simnet/src/engine.rs",
            "pub fn advance() {\n    let _ = lookup_only(3);\n}\n",
        );
        let store = SourceFile::from_source(
            "crates/storage/src/map.rs",
            "pub fn lookup_only(k: u32) -> u32 {\n    let cache: HashMap<u32, u32> = HashMap::new();\n    *cache.get(&k).unwrap_or(&0)\n}\n",
        );
        assert!(run(&[sim, store]).is_empty());
    }

    #[test]
    fn hash_iteration_through_a_helper_is_tainted() {
        let sim = SourceFile::from_source(
            "crates/predict/src/rank.rs",
            "pub fn rank_all() -> u32 {\n    sum_counts_unordered()\n}\n",
        );
        let store = SourceFile::from_source(
            "crates/storage/src/map.rs",
            "pub fn sum_counts_unordered() -> u32 {\n    let counts: HashMap<u32, u32> = HashMap::new();\n    counts.values().sum()\n}\n",
        );
        let findings = run(&[sim, store]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("counts.values"));
        assert!(findings[0].message.contains("predict::rank_all"));
    }
}
