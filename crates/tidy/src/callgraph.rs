//! Intra-workspace call graph over the [`crate::index`] function table.
//!
//! Call sites are recognized lexically (an identifier followed by `(` on
//! comment/string-stripped code) and resolved by name with crate-path
//! disambiguation — no type information, so resolution is deliberately
//! conservative:
//!
//! * bare calls prefer a same-file, then unique same-crate definition,
//!   then a `use wanpred_x::..`-imported crate, then a unique
//!   workspace-wide definition;
//! * `Qual::name(` calls match definitions whose `impl` type, module or
//!   crate equals the qualifier;
//! * `.method(` calls resolve only when the method name is defined once
//!   workspace-wide (or once in the caller's crate) — ambiguous names
//!   like `.get(`/`.len(` resolve to nothing rather than to everything.
//!
//! Unresolved calls simply contribute no edge: the graph under-
//! approximates reachability, which keeps the taint and panic passes
//! quiet rather than noisy. The self-tests pin the cases that must
//! resolve (helper chains inside one crate and across crates).

use std::collections::BTreeSet;

use crate::index::WorkspaceIndex;
use crate::pipeline::SourceFile;

/// Forward and reverse adjacency; edges carry the 1-based call-site line.
pub struct CallGraph {
    pub callees: Vec<Vec<(usize, usize)>>,
    pub callers: Vec<Vec<(usize, usize)>>,
}

impl CallGraph {
    pub fn build(files: &[SourceFile], ix: &WorkspaceIndex) -> CallGraph {
        let n = ix.fns.len();
        let mut callees: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        let mut seen: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (caller_id, caller) in ix.fns.iter().enumerate() {
            let file = &files[caller.file];
            let (a, b) = caller.body;
            for line in a..=b {
                // Attribute each line to its innermost function only, so
                // a nested fn's calls are not charged to its parent.
                if ix.line_owner[caller.file][line] != Some(caller_id) {
                    continue;
                }
                let code = &file.scanned.lines[line].code;
                for (kind, name) in call_sites(code) {
                    if let Some(target) = resolve(ix, caller_id, &kind, &name) {
                        if target != caller_id && seen[caller_id].insert(target) {
                            callees[caller_id].push((target, line + 1));
                        }
                    }
                }
            }
        }
        let mut callers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (caller_id, outs) in callees.iter().enumerate() {
            for &(target, line) in outs {
                callers[target].push((caller_id, line));
            }
        }
        CallGraph { callees, callers }
    }
}

/// How a call site names its target.
#[derive(Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)`
    Bare,
    /// `recv.name(...)`
    Method,
    /// `Qual::name(...)` — qualifier is the segment before `::`.
    Path(String),
}

const KEYWORDS: &[&str] = &[
    "if", "for", "while", "match", "loop", "return", "fn", "in", "as", "move", "where", "else",
    "let", "mut", "ref", "pub", "use", "mod", "impl", "trait", "struct", "enum", "const", "static",
    "type", "unsafe", "async", "await", "dyn", "box",
];

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexical call sites on one code line. Macros (`name!(`) are skipped —
/// the panic pass matches panic macros as tokens, not as graph nodes.
pub fn call_sites(code: &str) -> Vec<(CallKind, String)> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    for (pos, _) in code.match_indices('(') {
        let before = &code[..pos];
        let ident: String = before
            .chars()
            .rev()
            .take_while(|c| is_ident_char(*c))
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if ident.is_empty() || KEYWORDS.contains(&ident.as_str()) {
            continue;
        }
        if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        let prefix_end = pos - ident.len();
        let kind = if bytes[..prefix_end].ends_with(b"::") {
            let qual: String = code[..prefix_end - 2]
                .chars()
                .rev()
                .take_while(|c| is_ident_char(*c))
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            CallKind::Path(qual)
        } else if bytes[..prefix_end].ends_with(b".") {
            CallKind::Method
        } else if bytes[..prefix_end].ends_with(b"!") {
            continue; // macro
        } else {
            CallKind::Bare
        };
        out.push((kind, ident));
    }
    out
}

/// Strip a `wanpred_`/`wanpred-` prefix so a path qualifier can name a
/// crate directory.
fn normalize_crate(q: &str) -> &str {
    q.strip_prefix("wanpred_").unwrap_or(q)
}

fn resolve(ix: &WorkspaceIndex, caller_id: usize, kind: &CallKind, name: &str) -> Option<usize> {
    let caller = &ix.fns[caller_id];
    let cands = ix.by_name.get(name)?;
    match kind {
        CallKind::Method => {
            let methods: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| ix.fns[id].is_method)
                .collect();
            unique(&methods).or_else(|| {
                unique(
                    &methods
                        .iter()
                        .copied()
                        .filter(|&id| ix.fns[id].krate == caller.krate)
                        .collect::<Vec<_>>(),
                )
            })
        }
        CallKind::Bare => {
            let free: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| !ix.fns[id].is_method)
                .collect();
            let same_file: Vec<usize> = free
                .iter()
                .copied()
                .filter(|&id| ix.fns[id].file == caller.file)
                .collect();
            if let Some(id) = unique(&same_file) {
                return Some(id);
            }
            let same_crate: Vec<usize> = free
                .iter()
                .copied()
                .filter(|&id| ix.fns[id].krate == caller.krate)
                .collect();
            if let Some(id) = unique(&same_crate) {
                return Some(id);
            }
            if let Some(krate) = ix.facts[caller.file].imports.get(name) {
                let imported: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&id| &ix.fns[id].krate == krate)
                    .collect();
                if let Some(id) = unique(&imported) {
                    return Some(id);
                }
            }
            unique(&free)
        }
        CallKind::Path(qual) => {
            if qual == "self" || qual == "crate" {
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| ix.fns[id].krate == caller.krate)
                    .collect();
                return unique(&same_crate);
            }
            if qual == "Self" {
                let same_type: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| {
                        ix.fns[id].krate == caller.krate && ix.fns[id].self_type == caller.self_type
                    })
                    .collect();
                return unique(&same_type);
            }
            let qual_crate = normalize_crate(qual);
            let matched: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| {
                    let f = &ix.fns[id];
                    f.self_type.as_deref() == Some(qual.as_str())
                        || f.module.last().map(String::as_str) == Some(qual.as_str())
                        || f.krate == qual_crate
                })
                .collect();
            unique(&matched).or_else(|| {
                unique(
                    &matched
                        .iter()
                        .copied()
                        .filter(|&id| ix.fns[id].krate == caller.krate)
                        .collect::<Vec<_>>(),
                )
            })
        }
    }
}

fn unique(ids: &[usize]) -> Option<usize> {
    match ids {
        [only] => Some(*only),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::WorkspaceIndex;
    use crate::pipeline::SourceFile;

    #[test]
    fn call_site_kinds() {
        let sites = call_sites("let x = helper(a) + obj.method(b) + ulm::encode(c);");
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0], (CallKind::Bare, "helper".to_string()));
        assert_eq!(sites[1], (CallKind::Method, "method".to_string()));
        assert_eq!(
            sites[2],
            (CallKind::Path("ulm".to_string()), "encode".to_string())
        );
        assert!(call_sites("panic!(\"boom\") if (x) vec![1]").is_empty());
    }

    #[test]
    fn resolves_same_crate_then_imports_then_unique_global() {
        let a = SourceFile::from_source(
            "crates/simnet/src/engine.rs",
            "use wanpred_core::util::stamp_micros;\npub fn step() {\n    local();\n    stamp_micros();\n}\nfn local() {}\n",
        );
        let b = SourceFile::from_source(
            "crates/core/src/util.rs",
            "pub fn stamp_micros() -> u64 {\n    0\n}\n",
        );
        let files = [a, b];
        let ix = WorkspaceIndex::build(&files);
        let g = CallGraph::build(&files, &ix);
        let step = ix.fns.iter().position(|f| f.name == "step").expect("step");
        let local = ix
            .fns
            .iter()
            .position(|f| f.name == "local")
            .expect("local");
        let stamp = ix
            .fns
            .iter()
            .position(|f| f.name == "stamp_micros")
            .expect("stamp");
        let targets: Vec<usize> = g.callees[step].iter().map(|&(t, _)| t).collect();
        assert!(targets.contains(&local));
        assert!(targets.contains(&stamp));
        assert_eq!(g.callers[stamp][0].0, step);
    }

    #[test]
    fn ambiguous_methods_resolve_to_nothing() {
        let a = SourceFile::from_source(
            "crates/predict/src/a.rs",
            "pub struct A;\nimpl A {\n    pub fn score(&self) -> u32 { 1 }\n}\npub fn use_it(a: &A) -> u32 {\n    a.score()\n}\n",
        );
        let b = SourceFile::from_source(
            "crates/replica/src/b.rs",
            "pub struct B;\nimpl B {\n    pub fn score(&self) -> u32 { 2 }\n}\n",
        );
        let files = [a, b];
        let ix = WorkspaceIndex::build(&files);
        let g = CallGraph::build(&files, &ix);
        let use_it = ix.fns.iter().position(|f| f.name == "use_it").expect("fn");
        // Two crates define `.score(`; workspace-wide ambiguity, but the
        // caller's own crate has exactly one — that one wins.
        let a_score = ix
            .fns
            .iter()
            .position(|f| f.name == "score" && f.krate == "predict")
            .expect("fn");
        assert_eq!(g.callees[use_it], vec![(a_score, 6)]);
    }
}
