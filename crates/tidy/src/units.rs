//! Unit-of-measure analysis (rule id `unit-mismatch`).
//!
//! The workspace's numbers carry physics: the paper's predictors mix
//! transfer durations (seconds vs milliseconds), volumes (bytes vs MB)
//! and bandwidths (MB/s vs Mb/s — a silent 8x). None of that is in the
//! type system, but most of it is in the *names*: the repo consistently
//! writes `elapsed_secs`, `size_mb`, `rate_mbps`. This pass infers a unit
//! from an identifier's trailing `_`-segments and flags additive
//! arithmetic, comparison or plain assignment between identifiers whose
//! inferred units differ.
//!
//! Neutralization: an adjacent `*`, `/` or method call (`.`) reads as an
//! explicit conversion and silences the pair — `secs + ms / 1000.0` is
//! arithmetic someone thought about; `secs + ms` is not. Identifiers
//! followed by `(` are call names, not values, and carry no unit. The
//! pass deliberately under-approximates: a missed mismatch is cheaper
//! than training people to ignore the rule.

use crate::pipeline::SourceFile;
use crate::registry;
use crate::rules::LIB_CRATES;
use crate::Finding;

/// An inferred unit: a display label and the dimension it measures.
/// Units are equal iff their labels are (e.g. `mbps` and `mbit_per_s`
/// both mean Mb/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unit {
    pub label: &'static str,
    pub dim: Dim,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    Time,
    Size,
    Rate,
}

/// Binary contexts that require both sides to agree on a unit.
const MIX_OPS: &[&str] = &["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!=", "="];

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let policed = !file.exempt
            && file
                .krate
                .as_deref()
                .is_some_and(|k| LIB_CRATES.contains(&k));
        if !policed {
            continue;
        }
        for (i, l) in file.scanned.lines.iter().enumerate() {
            if l.in_test || file.allowed(i, &[registry::UNIT_MISMATCH]) {
                continue;
            }
            for m in line_mismatches(&l.code) {
                findings.push(Finding::cross_file(
                    registry::UNIT_MISMATCH,
                    &file.rel,
                    i + 1,
                    format!(
                        "`{}` ({}) and `{}` ({}) mix units across `{}` without conversion",
                        m.a, m.unit_a.label, m.b, m.unit_b.label, m.op,
                    ),
                    "convert one side explicitly, rename the identifier to its true unit, or \
                     justify with `// tidy: allow(unit-mismatch): <why the units agree>`",
                ));
            }
        }
    }
    findings
}

pub(crate) struct Mismatch {
    pub a: String,
    pub b: String,
    pub unit_a: Unit,
    pub unit_b: Unit,
    pub op: String,
}

/// Mismatched unit-bearing identifier pairs on one stripped code line.
pub(crate) fn line_mismatches(code: &str) -> Vec<Mismatch> {
    let toks = unit_idents(code);
    let mut out = Vec::new();
    for pair in toks.windows(2) {
        let (a_start, a_end, a, ua) = &pair[0];
        let (b_start, b_end, b, ub) = &pair[1];
        if ua == ub {
            continue;
        }
        let Some(op) = pure_operator(&code[*a_end..*b_start]) else {
            continue;
        };
        // `*`/`/`/`.` touching either operand is an explicit conversion.
        if next_nonspace(&code[*b_end..]).is_some_and(|c| matches!(c, '*' | '/' | '.')) {
            continue;
        }
        if prev_nonspace(&code[..*a_start]).is_some_and(|c| matches!(c, '*' | '/')) {
            continue;
        }
        out.push(Mismatch {
            a: a.clone(),
            b: b.clone(),
            unit_a: *ua,
            unit_b: *ub,
            op,
        });
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Unit-bearing identifiers with byte spans, in textual order. Call
/// names (`ident(`) are excluded — they name a computation, not a value.
fn unit_idents(code: &str) -> Vec<(usize, usize, String, Unit)> {
    let mut out = Vec::new();
    let mut it = code.char_indices().peekable();
    while let Some((start, c)) = it.next() {
        if !(c.is_ascii_alphabetic() || c == '_') {
            continue;
        }
        let mut end = start + c.len_utf8();
        while let Some(&(pos, nc)) = it.peek() {
            if is_ident_char(nc) {
                end = pos + nc.len_utf8();
                it.next();
            } else {
                break;
            }
        }
        let ident = &code[start..end];
        if next_nonspace(&code[end..]) == Some('(') {
            continue;
        }
        if let Some(unit) = unit_of(ident) {
            out.push((start, end, ident.to_string(), unit));
        }
    }
    out
}

/// The between-operands text, reduced to a single operator when that is
/// all it holds (method receivers like `self.` are stripped so
/// `a_ms + self.b_secs` still pairs up).
fn pure_operator(seg: &str) -> Option<String> {
    let mut s = seg.trim();
    // Strip a trailing receiver chain: `self.`, `cfg.limits.` ...
    while let Some(rest) = s.strip_suffix('.') {
        let trimmed = rest.trim_end_matches(is_ident_char);
        if trimmed.len() == rest.len() {
            return None; // `..` range or a lone dot — not an operator.
        }
        s = trimmed.trim_end();
    }
    MIX_OPS.contains(&s).then(|| s.to_string())
}

fn next_nonspace(s: &str) -> Option<char> {
    s.chars().find(|c| !c.is_whitespace())
}

fn prev_nonspace(s: &str) -> Option<char> {
    s.chars().rev().find(|c| !c.is_whitespace())
}

/// Infer a unit from the trailing `_`-segments of an identifier. A bare
/// unit word (`ms` alone as a variable) is ignored — only a suffix on a
/// descriptive name is a deliberate unit annotation.
pub(crate) fn unit_of(ident: &str) -> Option<Unit> {
    let segs: Vec<&str> = ident.split('_').filter(|s| !s.is_empty()).collect();
    if segs.len() >= 3 && segs[segs.len() - 2] == "per" {
        if !matches!(segs[segs.len() - 1], "s" | "sec" | "secs") {
            return None;
        }
        let label = match segs[segs.len() - 3] {
            "mb" => "MB/s",
            "kb" => "KB/s",
            "gb" => "GB/s",
            "byte" | "bytes" => "bytes/s",
            "bit" | "bits" => "bits/s",
            "mbit" | "mbits" => "Mb/s",
            _ => return None,
        };
        return Some(Unit {
            label,
            dim: Dim::Rate,
        });
    }
    if segs.len() < 2 {
        return None;
    }
    let (label, dim) = match *segs.last()? {
        "s" | "sec" | "secs" | "seconds" => ("s", Dim::Time),
        "ms" | "millis" | "milliseconds" => ("ms", Dim::Time),
        "us" | "micros" => ("us", Dim::Time),
        "ns" | "nanos" => ("ns", Dim::Time),
        "byte" | "bytes" => ("bytes", Dim::Size),
        "kb" => ("KB", Dim::Size),
        "mb" => ("MB", Dim::Size),
        "gb" => ("GB", Dim::Size),
        "bps" => ("bits/s", Dim::Rate),
        "kbps" => ("Kb/s", Dim::Rate),
        "mbps" => ("Mb/s", Dim::Rate),
        "gbps" => ("Gb/s", Dim::Rate),
        _ => return None,
    };
    Some(Unit { label, dim })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SourceFile;

    #[test]
    fn suffix_inference() {
        assert_eq!(unit_of("elapsed_secs").map(|u| u.label), Some("s"));
        assert_eq!(unit_of("jitter_ms").map(|u| u.label), Some("ms"));
        assert_eq!(unit_of("size_mb").map(|u| u.label), Some("MB"));
        assert_eq!(unit_of("rate_mbps").map(|u| u.label), Some("Mb/s"));
        assert_eq!(unit_of("rate_mb_per_s").map(|u| u.label), Some("MB/s"));
        assert_eq!(unit_of("mbit_per_s").map(|u| u.label), Some("Mb/s"));
        assert_eq!(unit_of("ms"), None, "bare unit word is not an annotation");
        assert_eq!(unit_of("items"), None);
        assert_eq!(unit_of("total"), None);
    }

    #[test]
    fn mixed_time_units_in_a_sum_are_flagged() {
        let ms = line_mismatches("let total = delay_secs + jitter_ms;");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].op, "+");
        assert_eq!((ms[0].unit_a.label, ms[0].unit_b.label), ("s", "ms"));
    }

    #[test]
    fn same_unit_and_converted_arithmetic_pass() {
        assert!(line_mismatches("let total_ms = a_ms + b_ms;").is_empty());
        assert!(line_mismatches("let t = delay_secs + jitter_ms / 1000.0;").is_empty());
        assert!(line_mismatches("let t = delay_secs * scale_ms;").is_empty());
        // `ident(` is a call, not a value.
        assert!(line_mismatches("let t_secs = to_ms(x) as f64;").is_empty());
    }

    #[test]
    fn size_comparisons_and_bandwidth_aliases() {
        assert_eq!(line_mismatches("if buf_bytes > limit_mb {").len(), 1);
        // Mb/s vs MB/s — the silent 8x the paper's tables live or die on.
        assert_eq!(
            line_mismatches("let d = link_mbps - disk_mb_per_s;").len(),
            1
        );
        // mbps and mbit_per_s are the same unit spelled twice.
        assert!(line_mismatches("let d = link_mbps - peer_mbit_per_s;").is_empty());
    }

    #[test]
    fn assignment_between_units_is_flagged_and_receivers_are_stripped() {
        assert_eq!(line_mismatches("let window_secs = cfg_ms;").len(), 1);
        assert_eq!(
            line_mismatches("let d_ms = base_ms + self.skew_secs;").len(),
            1
        );
        assert!(line_mismatches("for i_ms in 0..n_secs {").is_empty());
    }

    #[test]
    fn pass_respects_pragmas_and_exempt_files() {
        let hot = SourceFile::from_source(
            "crates/predict/src/m.rs",
            "pub fn f(a_secs: f64, b_ms: f64) -> f64 {\n    a_secs + b_ms\n}\n",
        );
        assert_eq!(check(&[hot]).len(), 1);

        let allowed = SourceFile::from_source(
            "crates/predict/src/m.rs",
            "pub fn f(a_secs: f64, b_ms: f64) -> f64 {\n    // tidy: allow(unit-mismatch): b_ms is pre-scaled by the caller\n    a_secs + b_ms\n}\n",
        );
        assert!(check(&[allowed]).is_empty());

        let test_file = SourceFile::from_source(
            "crates/predict/tests/m.rs",
            "pub fn f(a_secs: f64, b_ms: f64) -> f64 {\n    a_secs + b_ms\n}\n",
        );
        assert!(check(&[test_file]).is_empty());
    }
}
