//! Self-tests for the tidy pass: every rule must fire on its seeded
//! fixture, pragma suppression must demand justifications, and — the
//! acceptance gate — the real workspace must lint clean.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

const ALL_RULES: &[&str] = &[
    "wall-clock",
    "thread-rng",
    "unordered-map",
    "vec-swap-remove",
    "float-ord",
    "float-eq",
    "panic-unwrap",
    "fs-direct",
    "pragma",
    "ulm-schema",
    "obs-names",
];

#[test]
fn every_rule_fires_on_the_bad_tree() {
    let findings = tidy::run_tidy(&fixture("bad_tree"), false).expect("fixture tree walk");
    for rule in ALL_RULES {
        assert!(
            findings.iter().any(|f| f.rule == *rule),
            "rule `{rule}` produced no finding on its fixture; got: {findings:#?}"
        );
    }
}

#[test]
fn schema_drift_findings_name_the_drifted_attributes() {
    let findings = tidy::schema_check::check_schema(&fixture("bad_tree"));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    // Keyword emitted but not parsed, and declared but dead.
    assert!(messages
        .iter()
        .any(|m| m.contains("`DEST`") && m.contains("never parsed")));
    assert!(messages
        .iter()
        .any(|m| m.contains("`STALE`") && m.contains("never written")));
    // Provider emits an attribute the schema lacks.
    assert!(messages.iter().any(|m| m.contains("`avgwrbandwidth`")));
    // Schema declares an attribute the provider never publishes.
    assert!(messages
        .iter()
        .any(|m| m.contains("`numtransfers`") && m.contains("never emits")));
    // Broker queries an attribute the schema lacks.
    assert!(messages
        .iter()
        .any(|m| m.contains("`predictrdbandwidth`") && m.contains("broker")));
}

#[test]
fn obs_name_drift_findings_name_the_drifted_metrics() {
    let findings = tidy::obs_check::check_obs_names(&fixture("bad_tree"));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    // Declared constant absent from the all() registry.
    assert!(messages
        .iter()
        .any(|m| m.contains("`ORPHAN_METRIC`") && m.contains("missing from names::all()")));
    // Registered constant no emission site references.
    assert!(messages
        .iter()
        .any(|m| m.contains("`DEAD_METRIC`") && m.contains("never emitted")));
    // Emission of an undeclared constant.
    assert!(messages
        .iter()
        .any(|m| m.contains("`names::TYPO_METRIC`") && m.contains("undeclared")));
    // Emission through a raw unregistered string.
    assert!(messages
        .iter()
        .any(|m| m.contains("`made.up.metric`") && m.contains("unregistered")));
    // Emission through a string that shadows a registered constant.
    assert!(messages
        .iter()
        .any(|m| m.contains("`simnet.engine.events`") && m.contains("string literal")));
    // The healthy emission produced no finding.
    assert!(!messages
        .iter()
        .any(|m| m.contains("`ENGINE_EVENTS`") && m.contains("undeclared")));
}

#[test]
fn cli_exits_nonzero_on_bad_tree_and_zero_on_clean_tree() {
    let bad = Command::new(env!("CARGO_BIN_EXE_tidy"))
        .args(["--json", "--root"])
        .arg(fixture("bad_tree"))
        .output()
        .expect("run tidy");
    assert!(!bad.status.success(), "bad_tree must fail the lint");
    let json = String::from_utf8(bad.stdout).expect("utf8 json");
    for rule in ALL_RULES {
        assert!(
            json.contains(rule),
            "JSON output missing rule `{rule}`: {json}"
        );
    }

    let clean = Command::new(env!("CARGO_BIN_EXE_tidy"))
        .args(["--json", "--root"])
        .arg(fixture("clean_tree"))
        .output()
        .expect("run tidy");
    assert!(clean.status.success(), "clean_tree must pass the lint");
    assert_eq!(String::from_utf8_lossy(&clean.stdout).trim(), "[]");
}

#[test]
fn the_workspace_itself_lints_clean() {
    let findings = tidy::run_tidy(&workspace_root(), false).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "the tree must satisfy its own tidy pass; found: {findings:#?}"
    );
}

#[test]
fn justified_pragmas_suppress_and_unjustified_ones_do_not() {
    let rel = "crates/simnet/src/x.rs";
    let justified = "fn f(a: f64) -> bool {\n    // tidy: allow(float-eq): sentinel comparison, justified here\n    a == 0.0\n}\n";
    assert!(tidy::check_file(rel, justified).is_empty());

    let inline = "fn f(a: f64) -> bool {\n    a == 0.0 // tidy: allow(float-eq): inline justification works too\n}\n";
    assert!(tidy::check_file(rel, inline).is_empty());

    let unjustified = "fn f(a: f64) -> bool {\n    // tidy: allow(float-eq)\n    a == 0.0\n}\n";
    let findings = tidy::check_file(rel, unjustified);
    assert!(findings.iter().any(|f| f.rule == "pragma"));
    assert!(
        findings.iter().any(|f| f.rule == "float-eq"),
        "an unjustified pragma must not suppress the lint"
    );

    let unknown = "fn f() {\n    // tidy: allow(no-such-rule): whatever\n    g();\n}\n";
    let findings = tidy::check_file(rel, unknown);
    assert!(findings
        .iter()
        .any(|f| f.rule == "pragma" && f.message.contains("unknown rule")));
}

#[test]
fn test_modules_and_test_dirs_are_exempt() {
    let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    fn t() { let _ = Instant::now(); }\n}\n";
    assert!(tidy::check_file("crates/simnet/src/x.rs", src).is_empty());

    let bad = "fn t() { let _ = std::time::Instant::now(); }\n";
    assert!(tidy::check_file("crates/simnet/tests/x.rs", bad).is_empty());
    assert!(tidy::check_file("crates/bench/benches/x.rs", bad).is_empty());
    assert!(!tidy::check_file("crates/simnet/src/x.rs", bad).is_empty());
}

#[test]
fn fs_direct_exempts_the_writer_module_only() {
    let src = "pub fn f(p: &std::path::Path) {\n    let _ = std::fs::File::create(p);\n}\n";
    // The crash-safe writer is the one module allowed to touch the
    // filesystem directly; everywhere else in logfmt the rule fires.
    assert!(tidy::check_file("crates/logfmt/src/writer.rs", src).is_empty());
    assert!(tidy::check_file("crates/logfmt/src/log.rs", src)
        .iter()
        .any(|f| f.rule == "fs-direct"));
    // A justified pragma still works as the escape hatch.
    let justified = "pub fn f(p: &std::path::Path) {\n    // tidy: allow(fs-direct): read-only fixture generator, no durability stakes\n    let _ = std::fs::File::create(p);\n}\n";
    assert!(tidy::check_file("crates/logfmt/src/log.rs", justified).is_empty());
}

#[test]
fn fix_clears_the_fixable_float_ord_findings() {
    let rel = "crates/predict/src/x.rs";
    let src = "pub fn m(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\"));\n}\n";
    assert!(tidy::check_file(rel, src)
        .iter()
        .any(|f| f.rule == "float-ord"));
    let (fixed, n) = tidy::fix::fix_partial_cmp(src);
    assert_eq!(n, 1);
    assert!(tidy::check_file(rel, &fixed).is_empty());
}
