//! Self-tests for the tidy pass: every registered rule must fire on its
//! seeded fixture, the semantic passes must report cross-function chains,
//! pragma suppression must demand justifications, the warm cache must be
//! fast and byte-identical, and — the acceptance gate — the real
//! workspace must lint clean.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use tidy::TidyOptions;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Fixture runs never touch a cache: they must exercise the passes every
/// time, and they must not drop `target/` dirs inside the fixture trees.
fn run_cold(root: &Path) -> Vec<tidy::Finding> {
    tidy::run_tidy_with(
        root,
        &TidyOptions {
            apply_fix: false,
            use_cache: false,
        },
    )
    .expect("tidy run")
}

#[test]
fn every_registered_rule_fires_on_the_bad_tree() {
    let findings = run_cold(&fixture("bad_tree"));
    for rule in tidy::registry::known_rule_ids() {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "rule `{rule}` produced no finding on its fixture; got: {findings:#?}"
        );
    }
}

#[test]
fn taint_findings_report_the_source_with_its_sim_chain() {
    let findings = run_cold(&fixture("bad_tree"));
    let taint: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "determinism-taint")
        .collect();
    // The finding sits at the wall clock in `core` — a crate no per-line
    // rule covers — and names the sim entry that reaches it.
    assert!(
        taint
            .iter()
            .any(|f| f.path == "crates/core/src/clock_helper.rs"
                && f.message.contains("Instant::now")
                && f.message.contains("simnet::advance_with_stamp")
                && f.message.contains("core::wall_micros")),
        "taint chain not reported at the source: {taint:#?}"
    );
}

#[test]
fn panic_findings_cross_function_boundaries() {
    let findings = run_cold(&fixture("bad_tree"));
    let panics: Vec<_> = findings.iter().filter(|f| f.rule == "panic-path").collect();
    // Direct: a pub fn that unwraps.
    assert!(panics
        .iter()
        .any(|f| f.path == "crates/predict/src/bad.rs" && f.message.contains(".unwrap()")));
    // Transitive: pub API -> private helper -> literal index.
    assert!(
        panics
            .iter()
            .any(|f| f.path == "crates/predict/src/panic_chain.rs"
                && f.message.contains("xs[..]")
                && f.message.contains("predict::head_delay")
                && f.message.contains("predict::first_of")),
        "panic chain through a private helper not reported: {panics:#?}"
    );
}

#[test]
fn unit_findings_name_both_sides_of_the_mismatch() {
    let findings = run_cold(&fixture("bad_tree"));
    let units: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "unit-mismatch")
        .collect();
    assert!(units
        .iter()
        .any(|f| f.message.contains("delay_secs") && f.message.contains("jitter_ms")));
    assert!(
        units.iter().any(|f| f.message.contains("link_mbps")
            && f.message.contains("disk_mb_per_s")
            && f.message.contains("Mb/s")
            && f.message.contains("MB/s")),
        "the Mb/s-vs-MB/s 8x must be flagged: {units:#?}"
    );
}

#[test]
fn schema_drift_findings_name_the_drifted_attributes() {
    let findings = tidy::schema_check::check_schema(&fixture("bad_tree"));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    // Keyword emitted but not parsed, and declared but dead.
    assert!(messages
        .iter()
        .any(|m| m.contains("`DEST`") && m.contains("never parsed")));
    assert!(messages
        .iter()
        .any(|m| m.contains("`STALE`") && m.contains("never written")));
    // Provider emits an attribute the schema lacks.
    assert!(messages.iter().any(|m| m.contains("`avgwrbandwidth`")));
    // Schema declares an attribute the provider never publishes.
    assert!(messages
        .iter()
        .any(|m| m.contains("`numtransfers`") && m.contains("never emits")));
    // Broker queries an attribute the schema lacks.
    assert!(messages
        .iter()
        .any(|m| m.contains("`predictrdbandwidth`") && m.contains("broker")));
}

#[test]
fn obs_name_drift_findings_name_the_drifted_metrics() {
    let findings = tidy::obs_check::check_obs_names(&fixture("bad_tree"));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    // Declared constant absent from the all() registry.
    assert!(messages
        .iter()
        .any(|m| m.contains("`ORPHAN_METRIC`") && m.contains("missing from names::all()")));
    // Registered constant no emission site references.
    assert!(messages
        .iter()
        .any(|m| m.contains("`DEAD_METRIC`") && m.contains("never emitted")));
    // Emission of an undeclared constant.
    assert!(messages
        .iter()
        .any(|m| m.contains("`names::TYPO_METRIC`") && m.contains("undeclared")));
    // Emission through a raw unregistered string.
    assert!(messages
        .iter()
        .any(|m| m.contains("`made.up.metric`") && m.contains("unregistered")));
    // Emission through a string that shadows a registered constant.
    assert!(messages
        .iter()
        .any(|m| m.contains("`simnet.engine.events`") && m.contains("string literal")));
    // The healthy emission produced no finding.
    assert!(!messages
        .iter()
        .any(|m| m.contains("`ENGINE_EVENTS`") && m.contains("undeclared")));
}

#[test]
fn cli_exits_nonzero_on_bad_tree_and_zero_on_clean_tree() {
    let bad = Command::new(env!("CARGO_BIN_EXE_tidy"))
        .args(["--json", "--no-cache", "--root"])
        .arg(fixture("bad_tree"))
        .output()
        .expect("run tidy");
    assert!(!bad.status.success(), "bad_tree must fail the lint");
    let json = String::from_utf8(bad.stdout).expect("utf8 json");
    for rule in tidy::registry::known_rule_ids() {
        assert!(
            json.contains(rule),
            "JSON output missing rule `{rule}`: {json}"
        );
    }

    let clean = Command::new(env!("CARGO_BIN_EXE_tidy"))
        .args(["--json", "--no-cache", "--root"])
        .arg(fixture("clean_tree"))
        .output()
        .expect("run tidy");
    assert!(clean.status.success(), "clean_tree must pass the lint");
    assert_eq!(String::from_utf8_lossy(&clean.stdout).trim(), "[]");
}

#[test]
fn cli_sarif_output_is_wellformed_and_names_findings() {
    let bad = Command::new(env!("CARGO_BIN_EXE_tidy"))
        .args(["--sarif", "--no-cache", "--root"])
        .arg(fixture("bad_tree"))
        .output()
        .expect("run tidy");
    assert!(!bad.status.success());
    let sarif = String::from_utf8(bad.stdout).expect("utf8 sarif");
    assert!(sarif.contains(r#""version":"2.1.0""#));
    assert!(sarif.contains(r#""name":"wanpred-tidy""#));
    for rule in ["determinism-taint", "panic-path", "unit-mismatch"] {
        assert!(
            sarif.contains(&format!(r#""ruleId":"{rule}""#)),
            "SARIF missing results for `{rule}`"
        );
    }
}

#[test]
fn lexer_edge_cases_stay_silent_on_the_clean_tree() {
    // Raw strings, multi-line strings, nested block comments and `//`
    // inside string literals all hold rule tokens; none may fire.
    let findings = run_cold(&fixture("clean_tree"));
    assert!(
        findings.is_empty(),
        "clean_tree must produce no findings: {findings:#?}"
    );
}

#[test]
fn the_workspace_itself_lints_clean() {
    let findings = run_cold(&workspace_root());
    assert!(
        findings.is_empty(),
        "the tree must satisfy its own tidy pass; found: {findings:#?}"
    );
}

#[test]
fn warm_cache_is_faster_and_byte_identical() {
    let root = workspace_root();
    // Cold: no cache read or write, full scan plus semantic passes.
    let t0 = Instant::now();
    let cold = run_cold(&root);
    let cold_time = t0.elapsed();

    // Populate, then time the warm full-hit path.
    let opts = TidyOptions {
        apply_fix: false,
        use_cache: true,
    };
    let populate = tidy::run_tidy_with(&root, &opts).expect("populate cache");
    let t1 = Instant::now();
    let warm = tidy::run_tidy_with(&root, &opts).expect("warm run");
    let warm_time = t1.elapsed();

    assert_eq!(tidy::to_json(&cold), tidy::to_json(&populate));
    assert_eq!(
        tidy::to_json(&cold),
        tidy::to_json(&warm),
        "warm-cache findings must be byte-identical to a cold run"
    );
    assert!(
        warm_time.as_secs_f64() * 5.0 <= cold_time.as_secs_f64(),
        "warm cache must be at least 5x faster: cold {cold_time:?}, warm {warm_time:?}"
    );
}

#[test]
fn justified_pragmas_suppress_and_unjustified_ones_do_not() {
    let rel = "crates/simnet/src/x.rs";
    let justified = "fn f(a: f64) -> bool {\n    // tidy: allow(float-eq): sentinel comparison, justified here\n    a == 0.0\n}\n";
    assert!(tidy::check_file(rel, justified).is_empty());

    let inline = "fn f(a: f64) -> bool {\n    a == 0.0 // tidy: allow(float-eq): inline justification works too\n}\n";
    assert!(tidy::check_file(rel, inline).is_empty());

    let unjustified = "fn f(a: f64) -> bool {\n    // tidy: allow(float-eq)\n    a == 0.0\n}\n";
    let findings = tidy::check_file(rel, unjustified);
    assert!(findings.iter().any(|f| f.rule == "pragma"));
    assert!(
        findings.iter().any(|f| f.rule == "float-eq"),
        "an unjustified pragma must not suppress the lint"
    );

    let unknown = "fn f() {\n    // tidy: allow(no-such-rule): whatever\n    g();\n}\n";
    let findings = tidy::check_file(rel, unknown);
    assert!(findings
        .iter()
        .any(|f| f.rule == "pragma" && f.message.contains("unknown rule")));
}

#[test]
fn test_modules_and_test_dirs_are_exempt() {
    let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    fn t() { let _ = Instant::now(); }\n}\n";
    assert!(tidy::check_file("crates/simnet/src/x.rs", src).is_empty());

    let bad = "fn t() { let _ = std::time::Instant::now(); }\n";
    assert!(tidy::check_file("crates/simnet/tests/x.rs", bad).is_empty());
    assert!(tidy::check_file("crates/bench/benches/x.rs", bad).is_empty());
    assert!(!tidy::check_file("crates/simnet/src/x.rs", bad).is_empty());
}

#[test]
fn fs_direct_exempts_the_writer_module_only() {
    let src = "pub fn f(p: &std::path::Path) {\n    let _ = std::fs::File::create(p);\n}\n";
    // The crash-safe writer is the one module allowed to touch the
    // filesystem directly; everywhere else in logfmt the rule fires.
    assert!(tidy::check_file("crates/logfmt/src/writer.rs", src).is_empty());
    assert!(tidy::check_file("crates/logfmt/src/log.rs", src)
        .iter()
        .any(|f| f.rule == "fs-direct"));
    // A justified pragma still works as the escape hatch.
    let justified = "pub fn f(p: &std::path::Path) {\n    // tidy: allow(fs-direct): read-only fixture generator, no durability stakes\n    let _ = std::fs::File::create(p);\n}\n";
    assert!(tidy::check_file("crates/logfmt/src/log.rs", justified).is_empty());
}

#[test]
fn fix_clears_the_fixable_float_ord_findings() {
    let rel = "crates/predict/src/x.rs";
    let src = "pub fn m(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\"));\n}\n";
    assert!(tidy::check_file(rel, src)
        .iter()
        .any(|f| f.rule == "float-ord"));
    let (fixed, n) = tidy::fix::fix_partial_cmp(src);
    assert_eq!(n, 1);
    assert!(tidy::check_file(rel, &fixed).is_empty());
}

#[test]
fn fix_rewrites_swap_remove_in_place_and_is_idempotent() {
    // A throwaway tree: one sim-crate file seeded with swap_remove.
    let root = std::env::temp_dir().join(format!("tidy-fix-test-{}", std::process::id()));
    let src_dir = root.join("crates/simnet/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    let file = src_dir.join("queue.rs");
    let seeded = "pub fn drop_at(v: &mut Vec<u32>, i: usize) -> u32 {\n    v.swap_remove(i)\n}\n";
    std::fs::write(&file, seeded).expect("seed");

    let opts = TidyOptions {
        apply_fix: true,
        use_cache: false,
    };
    let after_fix = tidy::run_tidy_with(&root, &opts).expect("fix run");
    assert!(
        !after_fix.iter().any(|f| f.rule == "vec-swap-remove"),
        "fix must clear the finding it rewrites: {after_fix:#?}"
    );
    let rewritten = std::fs::read_to_string(&file).expect("read back");
    assert!(rewritten.contains("v.remove(i)"));
    assert!(!rewritten.contains("swap_remove"));

    // Idempotent: a second --fix changes nothing.
    let again = tidy::run_tidy_with(&root, &opts).expect("second fix run");
    assert_eq!(tidy::to_json(&after_fix), tidy::to_json(&again));
    assert_eq!(
        std::fs::read_to_string(&file).expect("read back"),
        rewritten
    );

    let _ = std::fs::remove_dir_all(&root);
}
