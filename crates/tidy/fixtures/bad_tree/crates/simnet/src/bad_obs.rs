//! Fixture emissions with seeded drift for the `obs-names` self-test.

use wanpred_obs::{names, ObsSink};

pub fn emit(obs: &ObsSink) {
    // Healthy: a declared constant.
    obs.inc(names::ENGINE_EVENTS);
    // Undeclared constant reference.
    obs.inc(names::TYPO_METRIC);
    // Raw string that is not registered at all.
    obs.observe("made.up.metric", 1);
    // Raw string that shadows a registered name instead of its constant.
    obs.gauge("simnet.engine.events", 2.0);
}
