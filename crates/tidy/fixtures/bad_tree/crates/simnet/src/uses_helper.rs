// Fixture: the sim-crate entry point of the taint chain. This file is
// itself clean under every line rule; the violation lives two frames
// down in crates/core/src/clock_helper.rs.
use wanpred_core::clock_helper::wall_micros;

pub fn advance_with_stamp() -> u64 {
    wall_micros()
}
