// Fixture: one seeded violation per determinism/float rule. Never
// compiled — the tidy self-test lints this tree and asserts every rule
// fires (and the real workspace walk skips `fixtures/` entirely).
use std::collections::HashMap;
use std::time::Instant;

pub fn naughty() {
    let _t = Instant::now();
    let _r = rand::thread_rng();
    let _m: HashMap<u32, u32> = HashMap::new();
    let mut v = vec![1.0f64, 2.0];
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    v.swap_remove(0);
    if v[0] == 0.0 {
        let _ = SystemTime::now();
    }
}
