// Fixture: queries `predictrdbandwidth`, which the fixture schema does
// not declare (consumer-side drift).
pub fn best(entry: &Entry) -> Option<f64> {
    entry.get("predictrdbandwidth").and_then(|v| v.parse().ok())
}
