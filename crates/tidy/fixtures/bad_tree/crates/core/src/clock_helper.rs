// Fixture: determinism taint through a helper crate. `core` is not a
// sim crate, so no per-line rule fires here — only the call-graph pass
// can see that simnet reaches this wall clock transitively.
pub fn wall_micros() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_micros() as u64
}
