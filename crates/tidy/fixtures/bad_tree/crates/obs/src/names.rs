//! Fixture registry with seeded drift for the `obs-names` self-test.

/// Healthy: declared, listed in all(), emitted by bad_obs.rs.
pub const ENGINE_EVENTS: &str = "simnet.engine.events";
/// Declared but missing from all(): emissions would fail is_registered.
pub const ORPHAN_METRIC: &str = "simnet.orphan";
/// Listed in all() but never emitted anywhere: dead vocabulary.
pub const DEAD_METRIC: &str = "simnet.dead";

/// The static registry.
pub fn all() -> &'static [&'static str] {
    &[ENGINE_EVENTS, DEAD_METRIC]
}
