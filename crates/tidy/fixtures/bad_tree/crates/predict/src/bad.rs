// Fixture: panic-policy violation plus an unjustified pragma.
pub fn first(r: Result<u32, ()>) -> u32 {
    r.unwrap()
}

pub fn second(x: f64) -> bool {
    // tidy: allow(float-eq)
    x == 1.5
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let r: Result<u32, ()> = Ok(1);
        let _ = r.unwrap();
    }
}
