// Fixture: panic reachable from a public API only through a private
// helper — the case the old per-line unwrap rule could not see.
pub fn head_delay(xs: &[f64]) -> f64 {
    first_of(xs) * 2.0
}

fn first_of(xs: &[f64]) -> f64 {
    xs[0]
}
