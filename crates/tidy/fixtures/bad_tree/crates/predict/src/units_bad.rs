// Fixture: unit-of-measure mismatches the suffix-inference pass must
// catch — seconds added to milliseconds, and the MB/s-vs-Mb/s 8x.
pub fn total_latency(delay_secs: f64, jitter_ms: f64) -> f64 {
    delay_secs + jitter_ms
}

pub fn headroom(link_mbps: f64, disk_mb_per_s: f64) -> f64 {
    link_mbps - disk_mb_per_s
}
