// Fixture: emits `avgwrbandwidth`, which the fixture schema does not
// declare (typo'd-attribute drift).
pub fn publish(e: &mut Entry) {
    e.add("avgrdbandwidth", "1000");
    e.add("avgwrbandwidth", "900");
}
