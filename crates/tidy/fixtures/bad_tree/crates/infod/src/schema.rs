// Fixture: the perf class declares `numtransfers`, which the fixture
// provider never emits (declared-but-unpublished drift).
pub const GRIDFTP_PERF_INFO: ObjectClass = ObjectClass {
    name: "GridFTPPerfInfo",
    required: &["cn", "hostname"],
    optional: &["avgrdbandwidth", "numtransfers"],
};

pub const GRIDFTP_SERVER_INFO: ObjectClass = ObjectClass {
    name: "GridFTPServerInfo",
    required: &["hostname", "port"],
    optional: &["version"],
};
