// Fixture: ULM keyword drift — DEST is emitted by encode but never
// parsed back by decode; STALE is declared but never emitted.
pub mod keys {
    pub const SRC: &str = "SRC";
    pub const DEST: &str = "DEST";
    pub const STALE: &str = "STALE";
}

pub fn encode(a: &str, b: &str) -> String {
    format!("{}={} {}={}", keys::SRC, a, keys::DEST, b)
}

pub fn decode(line: &str) -> Option<String> {
    line.strip_prefix(keys::SRC).map(str::to_string)
}
