// Fixture: a direct filesystem write outside the crash-safe writer
// module. A crash between this write and its flush leaves a torn file the
// salvage path then has to clean up — the fs-direct rule must fire here.
pub fn persist(path: &std::path::Path, doc: &str) {
    std::fs::write(path, doc).expect("write log");
}

pub fn open_for_append(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path)
}
