// Fixture: lexer edge cases that must NOT produce findings. Every rule
// token below is inert — inside a raw string, a multi-line string, a
// nested block comment, or after a `//` that is itself string content.
pub fn edge_cases() -> String {
    let raw = r#"Instant::now() and HashMap<k, v> are just text in here"#;
    let multi = r##"
        thread_rng() across lines,
        .swap_remove(0) too,
        // tidy: allow(float-eq) is prose, not a pragma
    "##;
    let url = "https://example.invalid/path // not a comment";
    let open = "a string with SystemTime::now inside
continues on the next line and closes here";
    /* outer block comment
       /* nested: rand::random() stays commented */
       still commented: x.partial_cmp(&y).unwrap()
    */
    format!("{raw}{multi}{url}{open}")
}
