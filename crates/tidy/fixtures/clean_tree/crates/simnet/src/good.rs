// Fixture: a file that satisfies every rule; the CLI must exit 0 here.
use std::collections::BTreeMap;

pub fn orderly(xs: &mut [f64]) -> BTreeMap<u32, f64> {
    xs.sort_by(|a, b| a.total_cmp(b));
    let mut out = BTreeMap::new();
    if let Some(first) = xs.first() {
        out.insert(0, *first);
    }
    out
}
