//! Deterministic, sim-time-keyed observability for the wanpred
//! reproduction — the third pillar next to performance and robustness.
//!
//! The paper treats measurement as a first-class concern: GridFTP's
//! logging overhead is quantified (~25 ms/transfer), predictor accuracy
//! is the headline result, and the information services live or die by
//! freshness. NWS and NetLogger (see PAPERS.md) both insist that the
//! monitoring layer itself be low-overhead and timestamp-disciplined.
//! This crate applies those rules to the reproduction itself:
//!
//! * **Metrics** — counters, gauges, and log-bucketed histograms
//!   ([`hist::Histogram`], p50/p95/p99 queryable), all keyed by names
//!   declared in the static registry ([`names`]). `tidy` cross-checks
//!   every emission site against that registry.
//! * **Spans** — [`span::SpanStack`]: enter/exit pairs on deterministic
//!   sim timestamps, LIFO nesting, per-span duration histograms,
//!   unbalanced exits tolerated and tallied.
//! * **Snapshots** — [`snapshot::Snapshot`]: the frozen metric tree,
//!   exported as byte-deterministic JSON or CRC-sealed ULM logfmt lines.
//!
//! The emission handle is [`ObsSink`]: `disabled()` is the null sink
//! (one branch per emission — benchmarked in `crates/bench`), and
//! `enabled()` clones all share one registry. No wall clock exists
//! anywhere in this crate: every timestamp is simulation time or a
//! deterministic unix epoch, so two same-seed campaigns produce
//! byte-identical snapshots.

pub mod hist;
pub mod names;
pub mod sink;
pub mod snapshot;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use sink::ObsSink;
pub use snapshot::Snapshot;
