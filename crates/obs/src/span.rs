//! Lightweight spans keyed on simulation time.
//!
//! A span is an `enter`/`exit` pair of deterministic timestamps (sim
//! micros, or unix seconds scaled to micros — whatever clock the host
//! component runs on). Spans nest LIFO; a matched exit yields the span's
//! duration, which the sink records into a histogram under the span's
//! own name. There is no wall clock anywhere in this module: span
//! durations are part of the deterministic snapshot contract.
//!
//! Unbalanced usage is tolerated, counted, and contained: an exit whose
//! name does not match the innermost open span — or arrives with no span
//! open at all — is dropped and tallied, so one buggy instrumentation
//! site cannot corrupt the timing of its ancestors.

/// The LIFO stack of open spans.
#[derive(Debug, Default)]
pub struct SpanStack {
    open: Vec<(&'static str, u64)>,
    unbalanced: u64,
    max_depth: u64,
}

impl SpanStack {
    /// Open a span `name` at timestamp `at_us`.
    pub fn enter(&mut self, name: &'static str, at_us: u64) {
        self.open.push((name, at_us));
        self.max_depth = self.max_depth.max(self.open.len() as u64);
    }

    /// Close the innermost span if it is `name`, returning its duration.
    /// A mismatched or surplus exit returns `None` and bumps the
    /// unbalanced tally; the stack is left untouched so outer spans
    /// still close correctly.
    pub fn exit(&mut self, name: &'static str, at_us: u64) -> Option<u64> {
        match self.open.last() {
            Some(&(top, entered)) if top == name => {
                self.open.pop();
                Some(at_us.saturating_sub(entered))
            }
            _ => {
                self.unbalanced += 1;
                None
            }
        }
    }

    /// Spans currently open.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Deepest nesting seen so far.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }

    /// Exits that matched nothing.
    pub fn unbalanced(&self) -> u64 {
        self.unbalanced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_pair_yields_duration() {
        let mut s = SpanStack::default();
        s.enter("a", 100);
        assert_eq!(s.exit("a", 350), Some(250));
        assert_eq!(s.depth(), 0);
        assert_eq!(s.unbalanced(), 0);
    }

    #[test]
    fn nesting_is_lifo_and_tracks_max_depth() {
        let mut s = SpanStack::default();
        s.enter("outer", 0);
        s.enter("mid", 10);
        s.enter("inner", 20);
        assert_eq!(s.depth(), 3);
        assert_eq!(s.exit("inner", 25), Some(5));
        assert_eq!(s.exit("mid", 40), Some(30));
        assert_eq!(s.exit("outer", 100), Some(100));
        assert_eq!(s.max_depth(), 3);
    }

    #[test]
    fn mismatched_exit_is_counted_and_ignored() {
        let mut s = SpanStack::default();
        s.enter("outer", 0);
        assert_eq!(s.exit("wrong", 5), None);
        assert_eq!(s.unbalanced(), 1);
        // The outer span is still intact and closes with the full duration.
        assert_eq!(s.exit("outer", 50), Some(50));
    }

    #[test]
    fn exit_on_empty_stack_is_counted() {
        let mut s = SpanStack::default();
        assert_eq!(s.exit("ghost", 1), None);
        assert_eq!(s.exit("ghost", 2), None);
        assert_eq!(s.unbalanced(), 2);
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn clock_going_backwards_saturates_to_zero() {
        let mut s = SpanStack::default();
        s.enter("a", 100);
        assert_eq!(s.exit("a", 40), Some(0));
    }
}
