//! The exported metric tree.
//!
//! A [`Snapshot`] is a frozen, fully ordered view of everything a sink
//! recorded: `BTreeMap`s keyed by metric name, so serialization order is
//! a function of the names alone. Combined with integer metric values
//! and the vendored serde shim's deterministic float formatting, two
//! same-seed campaigns serialize byte-identical snapshots — that is the
//! determinism contract, and `tests/obs_determinism.rs` holds it over a
//! faulty+chaos campaign.
//!
//! Two export formats:
//! * JSON ([`Snapshot::to_json`]) — the full tree, machine-readable.
//! * ULM logfmt ([`Snapshot::to_ulm_lines`]) — one `Keyword=Value` line
//!   per metric, each sealed with the same CRC-32 trailer the transfer
//!   logs use, so the salvage tooling and integrity checks apply to
//!   metric dumps unchanged.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use wanpred_logfmt::integrity::append_crc;
use wanpred_logfmt::writer::atomic_write;

use crate::hist::HistogramSnapshot;

/// A frozen view of one sink's metric tree.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotonic event tallies.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins point-in-time values.
    pub gauges: BTreeMap<String, f64>,
    /// Distribution summaries (count/sum/min/max/p50/p95/p99).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value, 0 if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, if anything was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Pretty JSON rendering of the full tree. Byte-deterministic: map
    /// order is the `BTreeMap` name order.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parse a snapshot back from [`Snapshot::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// ULM-style logfmt rendering: one `METRIC=... KIND=... ...` line per
    /// metric, each carrying the standard CRC-32 integrity trailer.
    pub fn to_ulm_lines(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&append_crc(&format!(
                "METRIC={name} KIND=counter VALUE={v}"
            )));
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str(&append_crc(&format!("METRIC={name} KIND=gauge VALUE={v}")));
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str(&append_crc(&format!(
                "METRIC={name} KIND=histogram COUNT={} SUM={} MIN={} MAX={} P50={} P95={} P99={}",
                h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
            )));
            out.push('\n');
        }
        out
    }

    /// Atomically write the JSON rendering to `path`.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, &self.to_json())
    }

    /// Atomically write the checksummed ULM rendering to `path`.
    pub fn save_ulm(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, &self.to_ulm_lines())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_logfmt::integrity::{check_line, CrcStatus};

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("a.b.c".into(), 7);
        s.gauges.insert("g.h".into(), 2.5);
        s.histograms.insert(
            "h.i".into(),
            HistogramSnapshot {
                count: 3,
                sum: 60,
                min: 10,
                max: 30,
                p50: 20,
                p95: 30,
                p99: 30,
            },
        );
        s
    }

    #[test]
    fn json_round_trips() {
        let s = sample();
        let back = Snapshot::from_json(&s.to_json()).expect("parse");
        assert_eq!(s, back);
    }

    #[test]
    fn ulm_lines_carry_valid_checksums() {
        let s = sample();
        let lines = s.to_ulm_lines();
        assert_eq!(lines.lines().count(), 3);
        for line in lines.lines() {
            let (_, status) = check_line(line);
            assert_eq!(status, CrcStatus::Valid, "line {line:?}");
        }
        assert!(lines.contains("METRIC=a.b.c KIND=counter VALUE=7"));
    }

    #[test]
    fn accessors_default_sanely() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("missing"), None);
        assert!(s.histogram("missing").is_none());
    }
}
