//! The emission handle: [`ObsSink`].
//!
//! A sink is either *disabled* — the null sink, a `None` inside, so
//! every emission is one branch and returns — or *enabled*, an
//! `Arc<Mutex<…>>` shared registry. Clones share state: the campaign
//! hands one enabled sink to the engine, the transfer manager, the
//! information services, and the broker, and they all write into the
//! same tree. The enabled-vs-null cost difference is what
//! `ablation_obs` measures into `BENCH_obs.json` (budget: ≤ 5% of
//! campaign wall-clock).
//!
//! Determinism: counters and histograms are order-insensitive
//! (commutative merges), so they may be emitted from rayon workers.
//! Gauges (last-write-wins) and spans (a single LIFO stack) are NOT
//! order-insensitive — emit them only from deterministic sequential
//! code. `predict`'s evaluation replays follow this rule by emitting
//! aggregates after the parallel collect.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::Histogram;
use crate::names;
use crate::snapshot::Snapshot;
use crate::span::SpanStack;

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: SpanStack,
}

/// A cloneable metrics emission handle. See the module docs for the
/// enabled/disabled split and the determinism rules.
#[derive(Clone, Default)]
pub struct ObsSink {
    inner: Option<Arc<Mutex<Registry>>>,
}

impl std::fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "ObsSink(enabled)"
        } else {
            "ObsSink(disabled)"
        })
    }
}

impl ObsSink {
    /// The null sink: every emission is a single branch. This is the
    /// default, so uninstrumented configs pay nothing.
    pub fn disabled() -> Self {
        ObsSink { inner: None }
    }

    /// A live sink with an empty registry.
    pub fn enabled() -> Self {
        ObsSink {
            inner: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    /// Whether emissions are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn with(&self, f: impl FnOnce(&mut Registry)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.lock());
        }
    }

    /// Add 1 to counter `name`.
    #[inline]
    pub fn inc(&self, name: &'static str) {
        self.inc_by(name, 1);
    }

    /// Add `n` to counter `name`. Adding 0 is a no-op and does not
    /// materialize the counter (batched flushes rely on this).
    #[inline]
    pub fn inc_by(&self, name: &'static str, n: u64) {
        if n == 0 {
            return;
        }
        self.with(|r| {
            debug_assert!(names::is_registered(name), "unregistered metric {name}");
            *r.counters.entry(name).or_insert(0) += n;
        });
    }

    /// Set gauge `name` to `v` (last write wins — sequential code only).
    #[inline]
    pub fn gauge(&self, name: &'static str, v: f64) {
        self.with(|r| {
            debug_assert!(names::is_registered(name), "unregistered metric {name}");
            r.gauges.insert(name, v);
        });
    }

    /// Record `v` into histogram `name`.
    #[inline]
    pub fn observe(&self, name: &'static str, v: u64) {
        self.with(|r| {
            debug_assert!(names::is_registered(name), "unregistered metric {name}");
            r.histograms.entry(name).or_default().record(v);
        });
    }

    /// Record a batch of values into histogram `name` under one lock.
    /// Hot loops (the simulation engine) buffer locally and flush through
    /// this so per-event cost stays a plain integer push.
    #[inline]
    pub fn observe_many(&self, name: &'static str, values: &[u64]) {
        if values.is_empty() {
            return;
        }
        self.with(|r| {
            debug_assert!(names::is_registered(name), "unregistered metric {name}");
            let h = r.histograms.entry(name).or_default();
            for &v in values {
                h.record(v);
            }
        });
    }

    /// Open span `name` at deterministic timestamp `at_us`
    /// (sequential code only — spans share one LIFO stack).
    #[inline]
    pub fn span_enter(&self, name: &'static str, at_us: u64) {
        self.with(|r| {
            debug_assert!(names::is_registered(name), "unregistered metric {name}");
            r.spans.enter(name, at_us);
        });
    }

    /// Close span `name` at `at_us`; a matched exit records the span
    /// duration into the histogram of the same name, an unmatched one is
    /// tallied under `obs.span.unbalanced`.
    #[inline]
    pub fn span_exit(&self, name: &'static str, at_us: u64) {
        self.with(|r| {
            debug_assert!(names::is_registered(name), "unregistered metric {name}");
            if let Some(dur) = r.spans.exit(name, at_us) {
                r.histograms.entry(name).or_default().record(dur);
            }
        });
    }

    /// Freeze the current metric tree. The null sink returns the empty
    /// snapshot. Span bookkeeping (unbalanced exits, max depth) is
    /// folded in at freeze time.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let r = inner.lock();
        let mut snap = Snapshot::default();
        for (k, v) in &r.counters {
            snap.counters.insert((*k).to_string(), *v);
        }
        for (k, v) in &r.gauges {
            snap.gauges.insert((*k).to_string(), *v);
        }
        for (k, h) in &r.histograms {
            snap.histograms.insert((*k).to_string(), h.snapshot());
        }
        if r.spans.unbalanced() > 0 {
            snap.counters
                .insert(names::OBS_SPAN_UNBALANCED.to_string(), r.spans.unbalanced());
        }
        if r.spans.max_depth() > 0 {
            snap.gauges.insert(
                names::OBS_SPAN_MAX_DEPTH.to_string(),
                r.spans.max_depth() as f64,
            );
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_records_nothing() {
        let s = ObsSink::disabled();
        s.inc(names::SIMNET_ENGINE_EVENTS);
        s.gauge(names::CAMPAIGN_FAULT_EVENTS, 3.0);
        s.observe(names::SIMNET_FLOW_BYTES, 42);
        s.span_enter(names::CAMPAIGN_RUN, 0);
        s.span_exit(names::CAMPAIGN_RUN, 10);
        assert!(!s.is_enabled());
        assert!(s.snapshot().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let s = ObsSink::enabled();
        let t = s.clone();
        s.inc(names::SIMNET_ENGINE_EVENTS);
        t.inc(names::SIMNET_ENGINE_EVENTS);
        assert_eq!(s.snapshot().counter(names::SIMNET_ENGINE_EVENTS), 2);
    }

    #[test]
    fn span_exit_feeds_histogram_under_span_name() {
        let s = ObsSink::enabled();
        s.span_enter(names::CAMPAIGN_RUN, 1_000);
        s.span_exit(names::CAMPAIGN_RUN, 5_000);
        let snap = s.snapshot();
        let h = snap.histogram(names::CAMPAIGN_RUN).expect("span histogram");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 4_000);
        assert_eq!(snap.counter(names::OBS_SPAN_UNBALANCED), 0);
        assert_eq!(snap.gauge(names::OBS_SPAN_MAX_DEPTH), Some(1.0));
    }

    #[test]
    fn unbalanced_exits_surface_in_snapshot() {
        let s = ObsSink::enabled();
        s.span_exit(names::CAMPAIGN_RUN, 10);
        s.span_enter(names::INFOD_GRIS_REFRESH, 0);
        s.span_exit(names::CAMPAIGN_RUN, 20);
        let snap = s.snapshot();
        assert_eq!(snap.counter(names::OBS_SPAN_UNBALANCED), 2);
        assert!(snap.histogram(names::CAMPAIGN_RUN).is_none());
    }

    #[test]
    fn snapshot_is_deterministic_for_same_emissions() {
        let run = || {
            let s = ObsSink::enabled();
            for i in 0..100u64 {
                s.inc(names::SIMNET_ENGINE_EVENTS);
                s.observe(names::SIMNET_FLOW_BYTES, i * 37 + 5);
            }
            s.gauge(names::CAMPAIGN_FAULT_EVENTS, 12.0);
            s.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }
}
