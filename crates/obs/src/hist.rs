//! Log-bucketed histograms over `u64` values.
//!
//! The bucketing is pure integer arithmetic (HdrHistogram-style: a
//! linear region below 16, then 8 sub-buckets per power of two), so two
//! runs that record the same value sequence land the same counts in the
//! same buckets on any platform — a precondition for the byte-identical
//! snapshot contract. With 3 sub-bucket bits the bucket width is at most
//! 1/8 of its lower bound, so a quantile read from the bucket midpoint
//! is within ~6.25% of the exact order statistic.

use serde::{Deserialize, Serialize};

/// Linear region: values below 16 get exact single-value buckets.
const LINEAR_MAX: u64 = 16;
/// Sub-bucket bits per power-of-two group.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Bit lengths 5..=64 each contribute `SUBS` buckets after the linear region.
const NUM_BUCKETS: usize = LINEAR_MAX as usize + 60 * SUBS;

/// Bucket index for a value. Total order preserving: `v1 <= v2` implies
/// `index(v1) <= index(v2)`.
fn index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let b = 64 - v.leading_zeros(); // bit length, >= 5
    let sub = ((v >> (b - 1 - SUB_BITS)) as usize) & (SUBS - 1);
    LINEAR_MAX as usize + (b as usize - 5) * SUBS + sub
}

/// Inclusive `(low, high)` value range covered by bucket `idx`.
fn bounds(idx: usize) -> (u64, u64) {
    if idx < LINEAR_MAX as usize {
        return (idx as u64, idx as u64);
    }
    let g = idx - LINEAR_MAX as usize;
    let b = (g / SUBS) as u32 + 5;
    let sub = (g % SUBS) as u64;
    let width = 1u64 << (b - 1 - SUB_BITS);
    let low = (1u64 << (b - 1)) + sub * width;
    (low, low + (width - 1))
}

/// A recorded distribution. Buckets are fixed at construction, so the
/// memory cost is a flat ~4 KiB per histogram regardless of value range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`), read from the midpoint of the
    /// bucket containing the order statistic of rank `ceil(q * count)`.
    /// Exact for values below 16; within the bucket's half-width (≤ ~6.25%
    /// relative) above. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (low, high) = bounds(idx);
                // Midpoint, clamped to what was actually recorded so
                // p100 never exceeds max and p0 never undercuts min.
                return (low + (high - low) / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Summarize into the serializable snapshot form.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// The exported summary of one histogram: totals plus the three
/// quantiles the paper's analyses care about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 if empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        let mut v = 0u64;
        loop {
            let idx = index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev, "index not monotone at v={v}");
            prev = idx;
            let (low, high) = bounds(idx);
            assert!(low <= v && v <= high, "v={v} outside bucket [{low},{high}]");
            if v > u64::MAX / 3 {
                break;
            }
            v = v * 3 / 2 + 1;
        }
        assert_eq!(index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::default();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
    }

    #[test]
    fn quantiles_track_exact_percentiles_uniform() {
        // Uniform 1..=10_000: compare against the exact order statistic.
        let mut h = Histogram::default();
        let exact: Vec<u64> = (1..=10_000u64).collect();
        for &v in &exact {
            h.record(v);
        }
        for &(q, _label) in &[(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let got = h.quantile(q);
            let rel = (got as f64 - truth as f64).abs() / truth as f64;
            assert!(rel <= 0.0625, "q={q}: got {got}, exact {truth}, rel {rel}");
        }
    }

    #[test]
    fn quantiles_track_exact_percentiles_heavy_tail() {
        // A deterministic heavy-tailed sequence (powers stretched by a
        // linear ramp), order-statistics compared the same way.
        let mut exact: Vec<u64> = (0..5_000u64)
            .map(|i| (i % 37 + 1) * (1 << (i % 20)))
            .collect();
        let mut h = Histogram::default();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        for q in [0.50, 0.95, 0.99] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            assert!(
                (got - truth).abs() / truth <= 0.0625,
                "q={q}: got {got}, exact {truth}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn saturating_sum_never_panics() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
