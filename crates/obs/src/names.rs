//! The static metric-name registry.
//!
//! Every emission site in the workspace must use one of the names
//! declared here — either through the exported `const` (preferred) or as
//! a string literal equal to one of them. The `tidy` crate enforces this
//! with a cross-file coherence check (`obs-metric`), mirroring the ULM
//! and GRIS schema checks: a metric name that exists only at its
//! emission site is a metric nobody can find in a snapshot, and a typo
//! silently splits one logical series into two.
//!
//! Naming convention: `<crate>.<component>.<quantity>`, lowercase, with
//! `_us` suffixes for microsecond durations. Span names double as the
//! key of the per-span duration histogram.

/// Events popped off the simulation queue (one per scheduler iteration).
pub const SIMNET_ENGINE_EVENTS: &str = "simnet.engine.events";
/// Timer events delivered to agents.
pub const SIMNET_ENGINE_TIMERS: &str = "simnet.engine.timers";
/// Background-load ticks applied to links.
pub const SIMNET_ENGINE_LOAD_TICKS: &str = "simnet.engine.load_ticks";
/// Scheduled fault events applied to the network.
pub const SIMNET_ENGINE_FAULTS: &str = "simnet.engine.faults";
/// Flows that ran to byte-completion.
pub const SIMNET_FLOWS_COMPLETED: &str = "simnet.flows.completed";
/// Flows killed by faults or aborts.
pub const SIMNET_FLOWS_FAILED: &str = "simnet.flows.failed";
/// Histogram of completed-flow lifetimes, microseconds of sim time.
pub const SIMNET_FLOW_DURATION_US: &str = "simnet.flow.duration_us";
/// Histogram of completed-flow sizes in bytes.
pub const SIMNET_FLOW_BYTES: &str = "simnet.flow.bytes";

/// Transfer requests accepted by the manager.
pub const GRIDFTP_SUBMITTED: &str = "gridftp.transfers.submitted";
/// Transfers that completed and were logged.
pub const GRIDFTP_COMPLETED: &str = "gridftp.transfers.completed";
/// Retry attempts started after a failed attempt.
pub const GRIDFTP_RETRIES: &str = "gridftp.transfers.retries";
/// Transfers abandoned after exhausting their retry budget.
pub const GRIDFTP_FAILED: &str = "gridftp.transfers.failed";
/// Histogram of end-to-end transfer durations (submit to log append),
/// microseconds of sim time.
pub const GRIDFTP_TRANSFER_DURATION_US: &str = "gridftp.transfer.duration_us";
/// Histogram of completed-transfer payload sizes in bytes.
pub const GRIDFTP_TRANSFER_BYTES: &str = "gridftp.transfer.bytes";
/// Span: the modeled cost of appending one ULM record to the server log
/// (the paper's ~25 ms logging overhead, scaled by entry size).
pub const GRIDFTP_LOG_APPEND: &str = "gridftp.log.append";

/// Target transfers an evaluation replay scored (per predictor suite run).
pub const PREDICT_EVAL_TARGETS: &str = "predict.eval.targets";
/// Individual (predictor, target) predictions produced.
pub const PREDICT_EVAL_PREDICTIONS: &str = "predict.eval.predictions";
/// Predictions declined for lack of history.
pub const PREDICT_EVAL_DECLINED: &str = "predict.eval.declined";
/// Gauge: predictors in the evaluated suite.
pub const PREDICT_EVAL_PREDICTORS: &str = "predict.eval.predictors";
/// Span: one evaluation replay, keyed by the observation series' own
/// time range (first to last observation timestamp).
pub const PREDICT_EVAL_REPLAY: &str = "predict.eval.replay";
/// Predictions served by a tournament meta-predictor replay.
pub const PREDICT_TOURNAMENT_PREDICTIONS: &str = "predict.tournament.predictions";
/// Tournament leadership changes (the initial takeover is not counted).
pub const PREDICT_TOURNAMENT_SWITCHES: &str = "predict.tournament.switches";
/// Gauge: candidates racing in a tournament.
pub const PREDICT_TOURNAMENT_CANDIDATES: &str = "predict.tournament.candidates";

/// GRIS provider refreshes that succeeded.
pub const INFOD_GRIS_REFRESH_OK: &str = "infod.gris.refresh_ok";
/// GRIS provider refreshes that failed (stale data may still be served).
pub const INFOD_GRIS_REFRESH_FAIL: &str = "infod.gris.refresh_fail";
/// GRIS lookups answered from a fresh cache without invoking a provider.
pub const INFOD_GRIS_CACHE_HITS: &str = "infod.gris.cache_hits";
/// GRIS searches evaluated.
pub const INFOD_GRIS_SEARCHES: &str = "infod.gris.searches";
/// Span: one provider refresh, entered/exited on the directory clock.
pub const INFOD_GRIS_REFRESH: &str = "infod.gris.refresh";
/// GIIS registrations accepted from previously unknown registrants.
pub const INFOD_GIIS_REGISTRATIONS: &str = "infod.giis.registrations";
/// GIIS soft-state renewals from known registrants.
pub const INFOD_GIIS_RENEWALS: &str = "infod.giis.renewals";
/// GIIS registrants expired by TTL sweep.
pub const INFOD_GIIS_EXPIRATIONS: &str = "infod.giis.expirations";
/// GIIS registrations refused while the index was down.
pub const INFOD_GIIS_REFUSALS: &str = "infod.giis.refusals";
/// GIIS searches fanned out over live registrants.
pub const INFOD_GIIS_SEARCHES: &str = "infod.giis.searches";
/// Inquiries answered by the sharded serving layer (shed ones excluded).
pub const INFOD_SERVE_INQUIRIES: &str = "infod.serve.inquiries";
/// Inquiries shed by admission control (typed `Overloaded` rejections).
pub const INFOD_SERVE_SHED: &str = "infod.serve.shed";
/// Inquiries coalesced onto an identical in-flight inquiry.
pub const INFOD_SERVE_COALESCED: &str = "infod.serve.coalesced";
/// Per-shard filter evaluations answered from the prediction cache.
pub const INFOD_SERVE_CACHE_HITS: &str = "infod.serve.cache_hits";
/// Per-shard filter evaluations computed against the snapshot.
pub const INFOD_SERVE_CACHE_MISSES: &str = "infod.serve.cache_misses";
/// Answers containing at least one `stalenesssecs`-stamped entry
/// (degraded-mode serving: stale data served rather than blocking).
pub const INFOD_SERVE_STALE_SERVED: &str = "infod.serve.stale_served";
/// Refresh passes run by the background refresher.
pub const INFOD_SERVE_REFRESHES: &str = "infod.serve.refreshes";
/// Shard snapshots actually swapped (content changed since the last
/// refresh generation; unchanged shards skip the swap).
pub const INFOD_SERVE_SNAPSHOT_SWAPS: &str = "infod.serve.snapshot_swaps";
/// Gauge: sites currently live in the serving layer's registry.
pub const INFOD_SERVE_SITES: &str = "infod.serve.sites";
/// Histogram of modeled admission-queue wait, microseconds.
pub const INFOD_SERVE_WAIT_US: &str = "infod.serve.wait_us";
/// Histogram of modeled end-to-end inquiry sojourn (wait + service),
/// microseconds.
pub const INFOD_SERVE_LATENCY_US: &str = "infod.serve.latency_us";

/// Replica selections requested from the broker.
pub const REPLICA_BROKER_SELECTIONS: &str = "replica.broker.selections";
/// Selections that fell below the Predicted rung (degraded answers).
pub const REPLICA_BROKER_DEGRADED: &str = "replica.broker.degraded";
/// Estimates served from the per-pair tournament meta-predictor rung.
pub const REPLICA_BROKER_RUNG_TOURNAMENT: &str = "replica.broker.rung_tournament";
/// Estimates served from the per-size-class prediction rung.
pub const REPLICA_BROKER_RUNG_SIZE_CLASS: &str = "replica.broker.rung_size_class";
/// Estimates served from the overall prediction rung.
pub const REPLICA_BROKER_RUNG_OVERALL: &str = "replica.broker.rung_overall";
/// Estimates served from the NWS probe-forecast rung.
pub const REPLICA_BROKER_RUNG_PROBE: &str = "replica.broker.rung_probe";
/// Estimates that fell through to the static-policy floor.
pub const REPLICA_BROKER_RUNG_STATIC: &str = "replica.broker.rung_static";
/// Histogram of candidate replicas scored per selection.
pub const REPLICA_BROKER_CANDIDATES: &str = "replica.broker.candidates";
/// Histogram of estimate staleness (seconds) at scoring time.
pub const REPLICA_BROKER_STALENESS_SECS: &str = "replica.broker.staleness_secs";
/// Span: one replica selection, keyed on the inquiry clock.
pub const REPLICA_BROKER_SELECT: &str = "replica.broker.select";

/// Co-allocated (multi-source striped) transfers started.
pub const REPLICA_COALLOC_TRANSFERS: &str = "replica.coalloc.transfers";
/// Co-allocated transfers that delivered every byte.
pub const REPLICA_COALLOC_COMPLETED: &str = "replica.coalloc.completed";
/// Co-allocated transfers abandoned with no surviving source.
pub const REPLICA_COALLOC_FAILED: &str = "replica.coalloc.failed";
/// Histogram of stripes driven per co-allocated transfer (initial plan
/// plus every rebalance replacement).
pub const REPLICA_COALLOC_STRIPES: &str = "replica.coalloc.stripes";
/// Rebalances: a degraded or dead stripe's remainder re-planned onto
/// the surviving sources.
pub const REPLICA_COALLOC_REBALANCES: &str = "replica.coalloc.rebalances";
/// Bytes already delivered by a stripe when it was demoted or died —
/// kept, never re-fetched.
pub const REPLICA_COALLOC_BYTES_SALVAGED: &str = "replica.coalloc.bytes_salvaged";
/// Per-source demotions (EWMA throughput fell past the degradation
/// threshold against its prediction).
pub const REPLICA_COALLOC_DEMOTIONS: &str = "replica.coalloc.demotions";
/// Sources blacklisted after a demotion or stripe death.
pub const REPLICA_COALLOC_BLACKLISTED: &str = "replica.coalloc.blacklisted";
/// Blacklisted sources whose penalty expired and rejoined the pool.
pub const REPLICA_COALLOC_REJOINS: &str = "replica.coalloc.rejoins";

/// Span: one full campaign run, entered at sim start, exited at the
/// configured horizon.
pub const CAMPAIGN_RUN: &str = "campaign.run";
/// Transfer records across all server logs at campaign end.
pub const CAMPAIGN_TRANSFERS: &str = "campaign.transfers";
/// Records kept by the post-campaign chaos salvage pass.
pub const CAMPAIGN_SALVAGE_KEPT: &str = "campaign.salvage.kept";
/// Lines quarantined by the post-campaign chaos salvage pass.
pub const CAMPAIGN_SALVAGE_QUARANTINED: &str = "campaign.salvage.quarantined";
/// Gauge: fault events scheduled for the campaign.
pub const CAMPAIGN_FAULT_EVENTS: &str = "campaign.fault_events";

/// Span exits that did not match the innermost open span.
pub const OBS_SPAN_UNBALANCED: &str = "obs.span.unbalanced";
/// Gauge: deepest span nesting observed.
pub const OBS_SPAN_MAX_DEPTH: &str = "obs.span.max_depth";

/// Every registered metric name, in declaration order.
pub fn all() -> &'static [&'static str] {
    &[
        SIMNET_ENGINE_EVENTS,
        SIMNET_ENGINE_TIMERS,
        SIMNET_ENGINE_LOAD_TICKS,
        SIMNET_ENGINE_FAULTS,
        SIMNET_FLOWS_COMPLETED,
        SIMNET_FLOWS_FAILED,
        SIMNET_FLOW_DURATION_US,
        SIMNET_FLOW_BYTES,
        GRIDFTP_SUBMITTED,
        GRIDFTP_COMPLETED,
        GRIDFTP_RETRIES,
        GRIDFTP_FAILED,
        GRIDFTP_TRANSFER_DURATION_US,
        GRIDFTP_TRANSFER_BYTES,
        GRIDFTP_LOG_APPEND,
        PREDICT_EVAL_TARGETS,
        PREDICT_EVAL_PREDICTIONS,
        PREDICT_EVAL_DECLINED,
        PREDICT_EVAL_PREDICTORS,
        PREDICT_EVAL_REPLAY,
        PREDICT_TOURNAMENT_PREDICTIONS,
        PREDICT_TOURNAMENT_SWITCHES,
        PREDICT_TOURNAMENT_CANDIDATES,
        INFOD_GRIS_REFRESH_OK,
        INFOD_GRIS_REFRESH_FAIL,
        INFOD_GRIS_CACHE_HITS,
        INFOD_GRIS_SEARCHES,
        INFOD_GRIS_REFRESH,
        INFOD_GIIS_REGISTRATIONS,
        INFOD_GIIS_RENEWALS,
        INFOD_GIIS_EXPIRATIONS,
        INFOD_GIIS_REFUSALS,
        INFOD_GIIS_SEARCHES,
        INFOD_SERVE_INQUIRIES,
        INFOD_SERVE_SHED,
        INFOD_SERVE_COALESCED,
        INFOD_SERVE_CACHE_HITS,
        INFOD_SERVE_CACHE_MISSES,
        INFOD_SERVE_STALE_SERVED,
        INFOD_SERVE_REFRESHES,
        INFOD_SERVE_SNAPSHOT_SWAPS,
        INFOD_SERVE_SITES,
        INFOD_SERVE_WAIT_US,
        INFOD_SERVE_LATENCY_US,
        REPLICA_BROKER_SELECTIONS,
        REPLICA_BROKER_DEGRADED,
        REPLICA_BROKER_RUNG_TOURNAMENT,
        REPLICA_BROKER_RUNG_SIZE_CLASS,
        REPLICA_BROKER_RUNG_OVERALL,
        REPLICA_BROKER_RUNG_PROBE,
        REPLICA_BROKER_RUNG_STATIC,
        REPLICA_BROKER_CANDIDATES,
        REPLICA_BROKER_STALENESS_SECS,
        REPLICA_BROKER_SELECT,
        REPLICA_COALLOC_TRANSFERS,
        REPLICA_COALLOC_COMPLETED,
        REPLICA_COALLOC_FAILED,
        REPLICA_COALLOC_STRIPES,
        REPLICA_COALLOC_REBALANCES,
        REPLICA_COALLOC_BYTES_SALVAGED,
        REPLICA_COALLOC_DEMOTIONS,
        REPLICA_COALLOC_BLACKLISTED,
        REPLICA_COALLOC_REJOINS,
        CAMPAIGN_RUN,
        CAMPAIGN_TRANSFERS,
        CAMPAIGN_SALVAGE_KEPT,
        CAMPAIGN_SALVAGE_QUARANTINED,
        CAMPAIGN_FAULT_EVENTS,
        OBS_SPAN_UNBALANCED,
        OBS_SPAN_MAX_DEPTH,
    ]
}

/// Whether `name` is declared in the registry.
pub fn is_registered(name: &str) -> bool {
    all().contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        let mut seen = std::collections::BTreeSet::new();
        for n in all() {
            assert!(seen.insert(*n), "duplicate metric name {n}");
        }
    }

    #[test]
    fn names_follow_the_convention() {
        for n in all() {
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "metric name {n} must be lowercase dotted_snake"
            );
            assert!(n.contains('.'), "metric name {n} must be namespaced");
        }
    }

    #[test]
    fn membership_checks_work() {
        assert!(is_registered(SIMNET_ENGINE_EVENTS));
        assert!(!is_registered("simnet.engine.event"));
        assert!(!is_registered(""));
    }
}
