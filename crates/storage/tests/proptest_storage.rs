//! Property tests for storage invariants.

use proptest::prelude::*;
use wanpred_storage::{AccessKind, DiskSpec, FileCache};

proptest! {
    /// Per-access throughput is monotone non-increasing in population and
    /// never exceeds the sustained rate.
    #[test]
    fn per_access_monotone(
        read in 1e6f64..1e9,
        contention in 0.0f64..1.0,
        k in 1usize..64,
    ) {
        let d = DiskSpec { read_bps: read, write_bps: read, contention,
                           op_overhead: wanpred_simnet::time::SimDuration::ZERO };
        let a = d.per_access(AccessKind::Read, k);
        let b = d.per_access(AccessKind::Read, k + 1);
        prop_assert!(b <= a * (1.0 + 1e-12));
        prop_assert!(a <= read * (1.0 + 1e-12));
        prop_assert!(a > 0.0);
    }

    /// Aggregate throughput shrinks with contention but stays positive.
    #[test]
    fn aggregate_bounded(
        read in 1e6f64..1e9,
        contention in 0.0f64..1.0,
        k in 1usize..64,
    ) {
        let d = DiskSpec { read_bps: read, write_bps: read, contention,
                           op_overhead: wanpred_simnet::time::SimDuration::ZERO };
        let agg = d.aggregate(AccessKind::Read, k);
        prop_assert!(agg <= read * (1.0 + 1e-12));
        prop_assert!(agg > 0.0);
    }

    /// The cache never holds more bytes than its capacity, no matter the
    /// access sequence.
    #[test]
    fn cache_respects_budget(
        capacity in 1u64..10_000,
        ops in prop::collection::vec((0u8..20, 1u64..5_000), 1..200),
    ) {
        let mut c = FileCache::new(capacity, 1e9);
        for (name, size) in ops {
            c.read(&format!("f{name}"), size);
            prop_assert!(c.used() <= capacity, "used {} > cap {}", c.used(), capacity);
        }
    }

    /// A hit is only possible for a path previously inserted and small
    /// enough to fit.
    #[test]
    fn cache_hits_require_prior_insert(
        capacity in 100u64..10_000,
        size in 1u64..20_000,
    ) {
        let mut c = FileCache::new(capacity, 1e9);
        let first = c.read("x", size);
        prop_assert!(!first);
        let second = c.read("x", size);
        prop_assert_eq!(second, size <= capacity);
    }
}
