//! A byte-budgeted LRU file cache.
//!
//! Repeat reads of files that fit in the server's memory are served at
//! memory speed and bypass disk contention — a visible effect in the
//! paper's controlled workload, where the same 13 files are transferred
//! repeatedly for two weeks (small files re-read within the cache's reach
//! are fast; 1 GB files never fit in 2001-era RAM).

use std::collections::VecDeque;

/// An LRU cache over file paths with a byte budget.
#[derive(Debug)]
pub struct FileCache {
    capacity: u64,
    memory_bps: f64,
    /// Most-recently-used at the back. (path, size)
    entries: VecDeque<(String, u64)>,
    used: u64,
}

impl FileCache {
    /// Create a cache with a byte budget and a memory-copy rate.
    pub fn new(capacity: u64, memory_bps: f64) -> Self {
        assert!(memory_bps > 0.0);
        FileCache {
            capacity,
            memory_bps,
            entries: VecDeque::new(),
            used: 0,
        }
    }

    /// 2001-era server: ~384 MB usable page cache, ~180 MB/s memory copy.
    pub fn vintage_2001() -> Self {
        FileCache::new(384 * 1024 * 1024, 180e6)
    }

    /// A zero-capacity cache (disables caching for ablations).
    pub fn disabled() -> Self {
        FileCache::new(0, 1.0)
    }

    /// Rate at which cache-resident data is served, bytes/sec.
    pub fn memory_bps(&self) -> f64 {
        self.memory_bps
    }

    /// Record a read of `path` with the given size. Returns `true` if the
    /// read is served from cache (the file was resident); in either case
    /// the file becomes the most-recently-used entry (if it fits at all).
    pub fn read(&mut self, path: &str, size: u64) -> bool {
        let hit = self.touch(path);
        if !hit {
            self.insert(path, size);
        }
        hit
    }

    /// Insert (or refresh) a file, evicting LRU entries to fit. Files
    /// larger than the whole budget are never cached.
    pub fn insert(&mut self, path: &str, size: u64) {
        self.evict_path(path);
        if size > self.capacity {
            return;
        }
        while self.used + size > self.capacity {
            let (_, evicted) = self.entries.pop_front().expect("used > 0 implies entries");
            self.used -= evicted;
        }
        self.entries.push_back((path.to_string(), size));
        self.used += size;
    }

    /// Whether `path` is currently resident.
    pub fn contains(&self, path: &str) -> bool {
        self.entries.iter().any(|(p, _)| p == path)
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Move `path` to MRU position; returns whether it was resident.
    fn touch(&mut self, path: &str) -> bool {
        if let Some(i) = self.entries.iter().position(|(p, _)| p == path) {
            let e = self.entries.remove(i).expect("index valid");
            self.entries.push_back(e);
            true
        } else {
            false
        }
    }

    fn evict_path(&mut self, path: &str) {
        if let Some(i) = self.entries.iter().position(|(p, _)| p == path) {
            let (_, size) = self.entries.remove(i).expect("index valid");
            self.used -= size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_misses_second_hits() {
        let mut c = FileCache::new(100, 1e9);
        assert!(!c.read("a", 40));
        assert!(c.read("a", 40));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = FileCache::new(100, 1e9);
        c.read("a", 40);
        c.read("b", 40);
        c.read("c", 40); // evicts a
        assert!(!c.contains("a"));
        assert!(c.contains("b"));
        assert!(c.contains("c"));
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut c = FileCache::new(100, 1e9);
        c.read("a", 40);
        c.read("b", 40);
        c.read("a", 40); // a is now MRU
        c.read("c", 40); // evicts b, not a
        assert!(c.contains("a"));
        assert!(!c.contains("b"));
    }

    #[test]
    fn oversized_file_not_cached() {
        let mut c = FileCache::new(100, 1e9);
        assert!(!c.read("big", 200));
        assert!(!c.read("big", 200));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn reinsert_same_path_does_not_double_count() {
        let mut c = FileCache::new(100, 1e9);
        c.insert("a", 60);
        c.insert("a", 60);
        assert_eq!(c.used(), 60);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = FileCache::disabled();
        assert!(!c.read("a", 1));
        assert!(!c.read("a", 1));
    }

    #[test]
    fn eviction_frees_exactly_enough() {
        let mut c = FileCache::new(100, 1e9);
        c.insert("a", 30);
        c.insert("b", 30);
        c.insert("c", 30);
        assert_eq!(c.used(), 90);
        c.insert("d", 40); // evicting a alone (oldest) frees enough: 60+40=100
        assert_eq!(c.used(), 100);
        assert!(!c.contains("a"));
        assert!(c.contains("b") && c.contains("c") && c.contains("d"));
        c.insert("e", 50); // now b and c must both go
        assert_eq!(c.used(), 90);
        assert!(!c.contains("b") && !c.contains("c"));
        assert!(c.contains("d") && c.contains("e"));
    }
}
