//! Disk device model: sustained rates, per-operation overhead, and the
//! contention behaviour of concurrent accessors.
//!
//! §3 of the paper singles storage out as the end-to-end component *least*
//! amenable to "law of large numbers" smoothing: one extra concurrent
//! access visibly moves everyone's throughput. We model a device's
//! aggregate throughput under `k` concurrent accessors as
//!
//! ```text
//! aggregate(k) = sustained * 1 / (1 + contention * (k - 1))
//! ```
//!
//! so each additional accessor costs real seek/rotation efficiency, and
//! the per-accessor share `aggregate(k) / k` drops super-linearly — the
//! coarse-grained variance source the paper describes.

use serde::{Deserialize, Serialize};
use wanpred_simnet::time::SimDuration;

/// Direction of a storage access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Reading from the device (a GridFTP `Read`/retrieve serves these).
    Read,
    /// Writing to the device (a GridFTP `Write`/store serves these).
    Write,
}

/// Static description of a disk (or RAID volume presented as one device).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Sustained sequential read throughput, bytes/sec.
    pub read_bps: f64,
    /// Sustained sequential write throughput, bytes/sec.
    pub write_bps: f64,
    /// Efficiency loss per extra concurrent accessor, in `[0, 1]`.
    /// 0 = perfectly parallel device, larger = worse seek thrash.
    pub contention: f64,
    /// Fixed per-operation latency (open + initial positioning).
    pub op_overhead: SimDuration,
}

impl DiskSpec {
    /// A 2001-era fast SCSI disk / small RAID as found on the paper's
    /// testbed servers: ~40 MB/s reads, ~30 MB/s writes, noticeable
    /// contention, ~8 ms positioning.
    pub fn vintage_2001() -> Self {
        DiskSpec {
            read_bps: 40e6,
            write_bps: 30e6,
            contention: 0.18,
            op_overhead: SimDuration::from_millis(8),
        }
    }

    /// An idealized device with no contention and negligible overhead —
    /// useful to disable the storage bottleneck in ablation experiments.
    pub fn ideal() -> Self {
        DiskSpec {
            read_bps: 1e12,
            write_bps: 1e12,
            contention: 0.0,
            op_overhead: SimDuration::ZERO,
        }
    }

    /// Sustained rate for the access kind.
    pub fn sustained(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::Read => self.read_bps,
            AccessKind::Write => self.write_bps,
        }
    }

    /// Aggregate device throughput (bytes/sec) for `k` concurrent
    /// accessors of `kind`, after contention losses. `k = 0` returns the
    /// unloaded sustained rate.
    pub fn aggregate(&self, kind: AccessKind, k: usize) -> f64 {
        let s = self.sustained(kind);
        if k <= 1 {
            return s;
        }
        s / (1.0 + self.contention * (k as f64 - 1.0))
    }

    /// Fair per-accessor throughput (bytes/sec) when `k` accessors of
    /// `kind` are active.
    pub fn per_access(&self, kind: AccessKind, k: usize) -> f64 {
        let k = k.max(1);
        self.aggregate(kind, k) / k as f64
    }

    /// Validate invariants; called by [`crate::server::StorageServer`].
    pub fn validate(&self) {
        assert!(self.read_bps > 0.0 && self.read_bps.is_finite());
        assert!(self.write_bps > 0.0 && self.write_bps.is_finite());
        assert!((0.0..=1.0).contains(&self.contention));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_rate_is_sustained() {
        let d = DiskSpec::vintage_2001();
        assert_eq!(d.per_access(AccessKind::Read, 1), 40e6);
        assert_eq!(d.per_access(AccessKind::Write, 1), 30e6);
        assert_eq!(d.per_access(AccessKind::Read, 0), 40e6);
    }

    #[test]
    fn contention_is_superlinear() {
        let d = DiskSpec::vintage_2001();
        let r1 = d.per_access(AccessKind::Read, 1);
        let r2 = d.per_access(AccessKind::Read, 2);
        let r4 = d.per_access(AccessKind::Read, 4);
        // Strictly worse than fair splitting: r2 < r1/2, r4 < r1/4.
        assert!(r2 < r1 / 2.0);
        assert!(r4 < r1 / 4.0);
        // And monotone decreasing.
        assert!(r1 > r2 && r2 > r4);
    }

    #[test]
    fn aggregate_shrinks_with_population() {
        let d = DiskSpec::vintage_2001();
        assert!(d.aggregate(AccessKind::Read, 2) < d.aggregate(AccessKind::Read, 1));
        assert!(d.aggregate(AccessKind::Read, 8) < d.aggregate(AccessKind::Read, 2));
    }

    #[test]
    fn zero_contention_splits_fairly() {
        let d = DiskSpec {
            contention: 0.0,
            ..DiskSpec::vintage_2001()
        };
        assert!((d.per_access(AccessKind::Read, 4) - 10e6).abs() < 1.0);
    }

    #[test]
    fn ideal_disk_is_effectively_unbounded() {
        let d = DiskSpec::ideal();
        assert!(d.per_access(AccessKind::Write, 16) > 1e10);
    }

    #[test]
    #[should_panic]
    fn validate_rejects_bad_contention() {
        DiskSpec {
            contention: 1.5,
            ..DiskSpec::vintage_2001()
        }
        .validate();
    }
}
