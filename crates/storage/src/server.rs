//! A storage server: one disk spec plus the set of concurrently open
//! accesses, exposing the per-access throughput cap that the transfer
//! service feeds into the network flows' external caps.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::cache::FileCache;
use crate::disk::{AccessKind, DiskSpec};
use crate::volume::FileCatalog;

/// Identifier of an open access on a storage server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccessId(pub u64);

/// A storage server at one site.
#[derive(Debug)]
pub struct StorageServer {
    /// Server name, e.g. `"lbl-disk"`.
    pub name: String,
    spec: DiskSpec,
    catalog: FileCatalog,
    cache: FileCache,
    active: HashMap<AccessId, Access>,
    next_id: u64,
}

#[derive(Debug, Clone)]
struct Access {
    kind: AccessKind,
    /// Access is served from cache (reads of recently used files).
    cached: bool,
}

impl StorageServer {
    /// Create a server with the given disk spec, catalog and cache.
    pub fn new(
        name: impl Into<String>,
        spec: DiskSpec,
        catalog: FileCatalog,
        cache: FileCache,
    ) -> Self {
        spec.validate();
        StorageServer {
            name: name.into(),
            spec,
            catalog,
            cache,
            active: HashMap::new(),
            next_id: 0,
        }
    }

    /// Shortcut: vintage disk, a `/home/ftp` volume populated with the
    /// paper's file set, and a modest file cache.
    pub fn vintage_with_paper_fileset(name: impl Into<String>) -> Self {
        let mut catalog = FileCatalog::new();
        catalog.add_volume("/home/ftp");
        catalog
            .populate_paper_fileset("/home/ftp/vazhkuda")
            .expect("volume added above");
        StorageServer::new(
            name,
            DiskSpec::vintage_2001(),
            catalog,
            FileCache::vintage_2001(),
        )
    }

    /// The disk spec.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// The file catalog.
    pub fn catalog(&self) -> &FileCatalog {
        &self.catalog
    }

    /// Mutable access to the catalog (PUT creates files).
    pub fn catalog_mut(&mut self) -> &mut FileCatalog {
        &mut self.catalog
    }

    /// Open an access for reading `path`. Consults the cache: repeat reads
    /// of hot files are served at memory rate and do not contend for the
    /// disk. Returns the access id; the caller must look up the file first
    /// (missing paths are the transfer layer's error to report).
    pub fn open_read(&mut self, path: &str, size: u64) -> AccessId {
        let cached = self.cache.read(path, size);
        self.open(AccessKind::Read, cached)
    }

    /// Open an access for writing `path` (store). Writes always hit the
    /// device; the written file becomes cache-resident.
    pub fn open_write(&mut self, path: &str, size: u64) -> AccessId {
        self.cache.insert(path, size);
        self.open(AccessKind::Write, false)
    }

    fn open(&mut self, kind: AccessKind, cached: bool) -> AccessId {
        let id = AccessId(self.next_id);
        self.next_id += 1;
        self.active.insert(id, Access { kind, cached });
        id
    }

    /// Close an access. Returns whether it was open.
    pub fn close(&mut self, id: AccessId) -> bool {
        self.active.remove(&id).is_some()
    }

    /// Number of accesses currently contending for the physical device
    /// (cached reads excluded).
    pub fn disk_population(&self) -> usize {
        // tidy: allow(determinism-taint): count() folds the values without observing their order
        self.active.values().filter(|a| !a.cached).count()
    }

    /// Total open accesses, including cache-served ones.
    pub fn open_count(&self) -> usize {
        self.active.len()
    }

    /// Current throughput cap in bytes/sec for one access.
    ///
    /// Cache-served reads get the cache's memory rate; disk accesses get
    /// the contended per-access share. Returns `None` for unknown ids.
    pub fn access_cap(&self, id: AccessId) -> Option<f64> {
        let a = self.active.get(&id)?;
        if a.cached {
            return Some(self.cache.memory_bps());
        }
        Some(self.spec.per_access(a.kind, self.disk_population()))
    }

    /// Iterate over open access ids (to update caps after churn).
    pub fn access_ids(&self) -> impl Iterator<Item = AccessId> + '_ {
        self.active.keys().copied()
    }

    /// Fixed per-operation latency to charge when opening.
    pub fn op_overhead(&self) -> wanpred_simnet::time::SimDuration {
        self.spec.op_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> StorageServer {
        StorageServer::vintage_with_paper_fileset("test")
    }

    #[test]
    fn single_reader_gets_sustained_rate() {
        let mut s = server();
        // A 1 GB read cannot be cache resident.
        let id = s.open_read("/home/ftp/vazhkuda/1GB", 1_024_000_000);
        assert_eq!(s.access_cap(id), Some(40e6));
        assert!(s.close(id));
        assert!(!s.close(id));
    }

    #[test]
    fn concurrent_readers_contend() {
        let mut s = server();
        let a = s.open_read("/home/ftp/vazhkuda/1GB", 1_024_000_000);
        let cap1 = s.access_cap(a).unwrap();
        let b = s.open_read("/home/ftp/vazhkuda/750MB", 768_000_000);
        let cap2 = s.access_cap(a).unwrap();
        assert!(cap2 < cap1 / 2.0 + 1.0, "{cap1} -> {cap2}");
        s.close(b);
        assert_eq!(s.access_cap(a).unwrap(), cap1);
    }

    #[test]
    fn repeat_small_read_is_cache_served() {
        let mut s = server();
        let first = s.open_read("/home/ftp/vazhkuda/10MB", 10_240_000);
        s.close(first);
        let second = s.open_read("/home/ftp/vazhkuda/10MB", 10_240_000);
        assert!(s.access_cap(second).unwrap() > 100e6, "cache rate expected");
        // Cached read does not contend for the disk.
        assert_eq!(s.disk_population(), 0);
        assert_eq!(s.open_count(), 1);
    }

    #[test]
    fn huge_file_never_caches() {
        let mut s = server();
        let first = s.open_read("/home/ftp/vazhkuda/1GB", 1_024_000_000);
        s.close(first);
        let second = s.open_read("/home/ftp/vazhkuda/1GB", 1_024_000_000);
        assert_eq!(s.access_cap(second), Some(40e6));
    }

    #[test]
    fn writes_hit_the_disk_at_write_rate() {
        let mut s = server();
        let id = s.open_write("/home/ftp/incoming", 1_000_000);
        assert_eq!(s.access_cap(id), Some(30e6));
    }

    #[test]
    fn mixed_population_counts_disk_accessors() {
        let mut s = server();
        let r = s.open_read("/home/ftp/vazhkuda/1GB", 1_024_000_000);
        let w = s.open_write("/home/ftp/x", 1);
        assert_eq!(s.disk_population(), 2);
        let rc = s.access_cap(r).unwrap();
        let wc = s.access_cap(w).unwrap();
        assert!(rc < 40e6 / 2.0 + 1.0);
        assert!(wc < 30e6 / 2.0 + 1.0);
    }

    #[test]
    fn unknown_access_has_no_cap() {
        let s = server();
        assert_eq!(s.access_cap(AccessId(99)), None);
    }
}
