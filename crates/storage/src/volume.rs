//! Logical volumes and the file catalog.
//!
//! GridFTP log entries carry the *logical volume* a file was moved to or
//! from (Figure 3's `Volume` column, e.g. `/home/ftp`); the information
//! provider groups statistics by volume. A [`FileCatalog`] maps absolute
//! paths to sizes and owning volumes for one storage server.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A logical volume: a mount prefix on a storage server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Volume {
    /// Volume name/mount point, e.g. `/home/ftp`.
    pub mount: String,
}

/// A file known to a storage server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEntry {
    /// Absolute path, e.g. `/home/ftp/vazhkuda/100MB`.
    pub path: String,
    /// Size in bytes.
    pub size: u64,
}

/// Errors from catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// Lookup of a path that is not in the catalog.
    NotFound(String),
    /// Registration under a path not covered by any volume.
    NoVolume(String),
    /// Registration of a path that already exists.
    Exists(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::NotFound(p) => write!(f, "file not found: {p}"),
            CatalogError::NoVolume(p) => write!(f, "no volume covers: {p}"),
            CatalogError::Exists(p) => write!(f, "file already exists: {p}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// The per-server file catalog.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FileCatalog {
    volumes: Vec<Volume>,
    files: BTreeMap<String, FileEntry>,
}

impl FileCatalog {
    /// Empty catalog with no volumes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a logical volume (mount prefix). Longest-prefix match is used
    /// when resolving a file's volume.
    pub fn add_volume(&mut self, mount: impl Into<String>) {
        self.volumes.push(Volume {
            mount: mount.into(),
        });
    }

    /// Register a file. The path must fall under some volume.
    pub fn add_file(&mut self, path: impl Into<String>, size: u64) -> Result<(), CatalogError> {
        let path = path.into();
        if self.volume_of(&path).is_none() {
            return Err(CatalogError::NoVolume(path));
        }
        if self.files.contains_key(&path) {
            return Err(CatalogError::Exists(path));
        }
        self.files.insert(path.clone(), FileEntry { path, size });
        Ok(())
    }

    /// Register or replace a file (PUT semantics: overwrites are allowed).
    pub fn put_file(&mut self, path: impl Into<String>, size: u64) -> Result<(), CatalogError> {
        let path = path.into();
        if self.volume_of(&path).is_none() {
            return Err(CatalogError::NoVolume(path));
        }
        self.files.insert(path.clone(), FileEntry { path, size });
        Ok(())
    }

    /// Look up a file.
    pub fn lookup(&self, path: &str) -> Result<&FileEntry, CatalogError> {
        self.files
            .get(path)
            .ok_or_else(|| CatalogError::NotFound(path.to_string()))
    }

    /// The longest volume prefix covering `path`, if any.
    pub fn volume_of(&self, path: &str) -> Option<&Volume> {
        self.volumes
            .iter()
            .filter(|v| {
                path.starts_with(&v.mount)
                    && (path.len() == v.mount.len()
                        || path.as_bytes().get(v.mount.len()) == Some(&b'/')
                        || v.mount.ends_with('/'))
            })
            .max_by_key(|v| v.mount.len())
    }

    /// Remove a file; returns whether it existed.
    pub fn remove(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Iterate over files in path order.
    pub fn files(&self) -> impl Iterator<Item = &FileEntry> {
        self.files.values()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the catalog holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Populate the catalog with the paper's experiment file set under
    /// `dir` (the sizes drawn from in §6.1): 1M, 2M, 5M, 10M, 25M, 50M,
    /// 100M, 150M, 250M, 400M, 500M, 750M and 1G, with the paper's decimal
    /// size convention (1 MB file = 1_024_000 bytes per Figure 3, i.e.
    /// 1000 * 1024).
    pub fn populate_paper_fileset(&mut self, dir: &str) -> Result<(), CatalogError> {
        for (name, mb) in crate::paper_fileset() {
            let path = format!("{}/{}", dir.trim_end_matches('/'), name);
            self.put_file(path, mb_to_bytes(mb))?;
        }
        Ok(())
    }
}

/// Figure 3's size convention: a "10 MB" file is 10_240_000 bytes
/// (size_mb * 1000 * 1024).
pub fn mb_to_bytes(mb: u32) -> u64 {
    u64::from(mb) * 1_024_000
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> FileCatalog {
        let mut c = FileCatalog::new();
        c.add_volume("/home/ftp");
        c
    }

    #[test]
    fn add_and_lookup() {
        let mut c = catalog();
        c.add_file("/home/ftp/a", 100).unwrap();
        assert_eq!(c.lookup("/home/ftp/a").unwrap().size, 100);
        assert!(matches!(
            c.lookup("/home/ftp/b"),
            Err(CatalogError::NotFound(_))
        ));
    }

    #[test]
    fn volume_prefix_matching() {
        let mut c = catalog();
        c.add_volume("/home/ftp/deep");
        assert_eq!(c.volume_of("/home/ftp/x").unwrap().mount, "/home/ftp");
        assert_eq!(
            c.volume_of("/home/ftp/deep/x").unwrap().mount,
            "/home/ftp/deep"
        );
        assert!(c.volume_of("/tmp/x").is_none());
        // Prefix must be component-aligned: /home/ftpX is not in /home/ftp.
        assert!(c.volume_of("/home/ftpX/a").is_none());
    }

    #[test]
    fn add_rejects_duplicates_put_overwrites() {
        let mut c = catalog();
        c.add_file("/home/ftp/a", 1).unwrap();
        assert!(matches!(
            c.add_file("/home/ftp/a", 2),
            Err(CatalogError::Exists(_))
        ));
        c.put_file("/home/ftp/a", 2).unwrap();
        assert_eq!(c.lookup("/home/ftp/a").unwrap().size, 2);
    }

    #[test]
    fn uncovered_path_rejected() {
        let mut c = catalog();
        assert!(matches!(
            c.add_file("/etc/passwd", 1),
            Err(CatalogError::NoVolume(_))
        ));
    }

    #[test]
    fn paper_fileset_sizes() {
        let mut c = catalog();
        c.populate_paper_fileset("/home/ftp/vazhkuda").unwrap();
        assert_eq!(c.len(), 13);
        assert_eq!(
            c.lookup("/home/ftp/vazhkuda/10MB").unwrap().size,
            10_240_000
        );
        assert_eq!(
            c.lookup("/home/ftp/vazhkuda/1GB").unwrap().size,
            1_024_000_000
        );
    }

    #[test]
    fn remove_works() {
        let mut c = catalog();
        c.add_file("/home/ftp/a", 1).unwrap();
        assert!(c.remove("/home/ftp/a"));
        assert!(!c.remove("/home/ftp/a"));
        assert!(c.is_empty());
    }
}
