//! # wanpred-storage
//!
//! Storage-system models for the `wanpred` testbed: disk devices with
//! concurrency contention ([`disk`]), byte-budgeted LRU file caches
//! ([`cache`]), logical volumes with a file catalog ([`volume`]), and the
//! [`server::StorageServer`] that ties them together and exposes the
//! per-access throughput cap consumed by `wanpred-gridftp`.
//!
//! §3 of the reproduced paper motivates modelling storage explicitly: the
//! end-to-end transfer function includes devices where a *single* extra
//! concurrent access visibly shifts throughput, defeating
//! law-of-large-numbers smoothing — which is exactly why the paper
//! instruments whole transfers instead of probing the network alone.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod disk;
pub mod server;
pub mod volume;

pub use cache::FileCache;
pub use disk::{AccessKind, DiskSpec};
pub use server::{AccessId, StorageServer};
pub use volume::{mb_to_bytes, CatalogError, FileCatalog, FileEntry, Volume};

/// The paper's §6.1 file-size set: `(file name, size in "paper MB")`
/// where one paper-MB is 1_024_000 bytes (Figure 3's convention).
pub fn paper_fileset() -> [(&'static str, u32); 13] {
    [
        ("1MB", 1),
        ("2MB", 2),
        ("5MB", 5),
        ("10MB", 10),
        ("25MB", 25),
        ("50MB", 50),
        ("100MB", 100),
        ("150MB", 150),
        ("250MB", 250),
        ("400MB", 400),
        ("500MB", 500),
        ("750MB", 750),
        ("1GB", 1000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fileset_matches_paper_sizes() {
        let set = paper_fileset();
        assert_eq!(set.len(), 13);
        assert_eq!(set[0], ("1MB", 1));
        assert_eq!(set[12], ("1GB", 1000));
        // Strictly increasing sizes.
        for w in set.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }
}
