//! Property test: under arbitrary interleavings of submits and aborts,
//! the transfer manager never leaks resources — when everything has
//! drained, no storage access is open, no transfer is in flight, and
//! every *completed* transfer produced exactly its log records.

use std::any::Any;

use proptest::prelude::*;
use wanpred_gridftp::{
    stripe_shares, CompletedTransfer, ServerConfig, SubmitError, TransferKind, TransferManager,
    TransferRequest, TransferToken,
};
use wanpred_simnet::engine::{Agent, Ctx, Engine, TimerTag};
use wanpred_simnet::flow::FlowDone;
use wanpred_simnet::load::LoadModelConfig;
use wanpred_simnet::network::Network;
use wanpred_simnet::rng::MasterSeed;
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_simnet::topology::{NodeId, Topology};
use wanpred_storage::StorageServer;

#[derive(Debug, Clone)]
enum Op {
    /// Submit a GET of the i-th paper file at the given second.
    Get { at: u64, file: usize },
    /// Submit a striped GET across both servers.
    Striped { at: u64, file: usize },
    /// Submit a partial (REST-offset) GET of one chunk of a tiled plan.
    Partial {
        at: u64,
        server: NodeId,
        path: String,
        offset: u64,
        len: u64,
    },
    /// Abort the n-th submitted transfer shortly after the given second.
    Abort { at: u64, which: usize },
}

struct Chaos {
    mgr: TransferManager,
    client: NodeId,
    lbl: NodeId,
    isi: NodeId,
    ops: Vec<Op>,
    tokens: Vec<TransferToken>,
    completed: Vec<CompletedTransfer>,
    submit_errors: Vec<SubmitError>,
}

const FILES: [&str; 5] = ["1MB", "10MB", "50MB", "100MB", "250MB"];

impl Agent for Chaos {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, op) in self.ops.iter().enumerate() {
            let at = match op {
                Op::Get { at, .. }
                | Op::Striped { at, .. }
                | Op::Partial { at, .. }
                | Op::Abort { at, .. } => *at,
            };
            ctx.set_timer(SimDuration::from_secs(at.max(1)), i as TimerTag);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        if self.mgr.on_timer(ctx, tag) {
            return;
        }
        match self.ops[tag as usize].clone() {
            Op::Get { file, .. } => {
                let req = TransferRequest {
                    client: self.client,
                    kind: TransferKind::Get {
                        server: self.lbl,
                        path: format!("/home/ftp/vazhkuda/{}", FILES[file % FILES.len()]),
                    },
                    streams: 4,
                    tcp_buffer: 1_000_000,
                    partial: None,
                };
                match self.mgr.submit(ctx, req) {
                    Ok(t) => self.tokens.push(t),
                    Err(e) => self.submit_errors.push(e),
                }
            }
            Op::Striped { file, .. } => {
                let req = TransferRequest {
                    client: self.client,
                    kind: TransferKind::StripedGet {
                        servers: vec![self.lbl, self.isi],
                        path: format!("/home/ftp/vazhkuda/{}", FILES[file % FILES.len()]),
                    },
                    streams: 4,
                    tcp_buffer: 1_000_000,
                    partial: None,
                };
                match self.mgr.submit(ctx, req) {
                    Ok(t) => self.tokens.push(t),
                    Err(e) => self.submit_errors.push(e),
                }
            }
            Op::Partial {
                server,
                path,
                offset,
                len,
                ..
            } => {
                let req = TransferRequest {
                    client: self.client,
                    kind: TransferKind::Get { server, path },
                    streams: 4,
                    tcp_buffer: 1_000_000,
                    partial: Some((offset, len)),
                };
                match self.mgr.submit(ctx, req) {
                    Ok(t) => self.tokens.push(t),
                    Err(e) => self.submit_errors.push(e),
                }
            }
            Op::Abort { which, .. } => {
                if !self.tokens.is_empty() {
                    let t = self.tokens[which % self.tokens.len()];
                    let _ = self.mgr.abort(ctx, t);
                }
            }
        }
    }

    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
        if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
            self.completed.push(c);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn testnet() -> (Network, NodeId, NodeId, NodeId) {
    let mut t = Topology::new();
    let anl = t.add_node("anl");
    let lbl = t.add_node("lbl");
    let isi = t.add_node("isi");
    let (f1, r1) = t
        .add_duplex_link("anl-lbl", anl, lbl, 12e6, SimDuration::from_millis(27))
        .unwrap();
    let (f2, r2) = t
        .add_duplex_link("anl-isi", anl, isi, 12e6, SimDuration::from_millis(31))
        .unwrap();
    t.add_route(anl, lbl, vec![f1]).unwrap();
    t.add_route(lbl, anl, vec![r1]).unwrap();
    t.add_route(anl, isi, vec![f2]).unwrap();
    t.add_route(isi, anl, vec![r2]).unwrap();
    let cfg = LoadModelConfig {
        diurnal_mean_weight: 4.0,
        walk_sigma: 0.1,
        burst_weight: 2.0,
        ..LoadModelConfig::default()
    };
    (
        Network::with_uniform_load(t, cfg, MasterSeed(8)),
        anl,
        lbl,
        isi,
    )
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (1u64..120, 0usize..5).prop_map(|(at, file)| Op::Get { at, file }),
        (1u64..120, 0usize..5).prop_map(|(at, file)| Op::Striped { at, file }),
        (1u64..150, any::<usize>()).prop_map(|(at, which)| Op::Abort { at, which }),
    ];
    prop::collection::vec(op, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn no_resource_leaks_under_chaos(ops in arb_ops()) {
        let (net, anl, lbl, isi) = testnet();
        let mut mgr = TransferManager::new(996_000_000);
        mgr.add_host(anl, "anl.gov", "140.221.65.69");
        mgr.add_server(
            lbl,
            ServerConfig::new("lbl.gov", "131.243.2.11"),
            StorageServer::vintage_with_paper_fileset("lbl"),
        );
        mgr.add_server(
            isi,
            ServerConfig::new("isi.edu", "128.9.160.11"),
            StorageServer::vintage_with_paper_fileset("isi"),
        );
        let mut eng = Engine::new(net);
        let id = eng.add_agent(Box::new(Chaos {
            mgr,
            client: anl,
            lbl,
            isi,
            ops: ops.clone(),
            tokens: Vec::new(),
            completed: Vec::new(),
            submit_errors: Vec::new(),
        }));
        // Generous horizon: every non-aborted transfer finishes.
        eng.run_until(SimTime::from_secs(4_000));
        let chaos = eng.agent::<Chaos>(id).expect("registered");

        // Nothing in flight, nothing submitted failed (files all exist).
        prop_assert_eq!(chaos.mgr.inflight_count(), 0);
        prop_assert!(chaos.submit_errors.is_empty(), "{:?}", chaos.submit_errors);
        prop_assert_eq!(eng.network().active_flows(), 0);

        // Every storage access was released.
        for node in [lbl, isi] {
            let storage = chaos.mgr.storage(node).expect("server");
            prop_assert_eq!(storage.disk_population(), 0);
            prop_assert_eq!(storage.open_count(), 0);
        }

        // Completions + aborted <= submissions; every completion carries
        // a valid record and positive bandwidth.
        prop_assert!(chaos.completed.len() <= chaos.tokens.len());
        for c in &chaos.completed {
            prop_assert!(c.bandwidth_kbs > 0.0);
            prop_assert!(c.record.validate().is_ok(), "{:?}", c.record.validate());
        }

        // Log-record accounting: completed GETs log 1 read record (at
        // LBL), striped log one per stripe; aborted transfers log none.
        let lbl_reads = chaos.mgr.server_log(lbl).expect("lbl").len();
        let isi_reads = chaos.mgr.server_log(isi).expect("isi").len();
        let expected: usize = chaos.completed.len();
        // Each completion logs at least one record and at most two (one
        // per stripe server).
        prop_assert!(lbl_reads + isi_reads >= expected);
        prop_assert!(lbl_reads + isi_reads <= 2 * expected);
    }
}

proptest! {
    /// Every stripe plan exactly tiles `[0, bytes)`: shares sum to the
    /// file size, no share exceeds its even split by more than one byte,
    /// and laying the chunks end to end leaves no gap or overlap at any
    /// boundary — including zero-size files, `n > bytes`, and sizes the
    /// stripe count does not divide.
    #[test]
    fn stripe_plans_tile_exactly(bytes in 0u64..200_000_000, n in 1usize..16) {
        let shares = stripe_shares(bytes, n);
        prop_assert_eq!(shares.len(), n);
        prop_assert_eq!(shares.iter().sum::<u64>(), bytes);
        let base = bytes / n as u64;
        let mut offset = 0u64;
        for (i, &s) in shares.iter().enumerate() {
            prop_assert!(s == base || s == base + 1, "share {i} = {s}");
            // Chunk i occupies [offset, offset + s): contiguous, in order.
            offset = offset.checked_add(s).expect("no overflow");
        }
        prop_assert_eq!(offset, bytes, "chunks must land exactly on EOF");
        // Remainder bytes go to the leading stripes, so shares never
        // increase along the plan (the off-by-one lives at the front).
        for w in shares.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// Driving a whole tiled plan through real partial GETs moves every
    /// byte exactly once: each chunk's completed transfer reports the
    /// chunk's size, and the completions sum to the file size.
    #[test]
    fn partial_plan_round_trip_moves_every_byte_once(n in 1usize..6, file in 0usize..3) {
        let sizes = [1_024_000u64, 10_240_000, 51_200_000];
        let names = ["1MB", "10MB", "50MB"];
        let total = sizes[file];
        let path = format!("/home/ftp/vazhkuda/{}", names[file]);
        let (net, anl, lbl, isi) = testnet();
        let mut mgr = TransferManager::new(996_000_000);
        mgr.add_host(anl, "anl.gov", "140.221.65.69");
        mgr.add_server(
            lbl,
            ServerConfig::new("lbl.gov", "131.243.2.11"),
            StorageServer::vintage_with_paper_fileset("lbl"),
        );
        mgr.add_server(
            isi,
            ServerConfig::new("isi.edu", "128.9.160.11"),
            StorageServer::vintage_with_paper_fileset("isi"),
        );
        // One scripted partial GET per chunk, alternating servers.
        let mut ops = Vec::new();
        let mut offset = 0u64;
        for (i, share) in stripe_shares(total, n).into_iter().enumerate() {
            ops.push(Op::Partial {
                at: 1,
                server: if i % 2 == 0 { lbl } else { isi },
                path: path.clone(),
                offset,
                len: share,
            });
            offset += share;
        }
        let mut eng = Engine::new(net);
        let id = eng.add_agent(Box::new(Chaos {
            mgr,
            client: anl,
            lbl,
            isi,
            ops,
            tokens: Vec::new(),
            completed: Vec::new(),
            submit_errors: Vec::new(),
        }));
        eng.run_until(SimTime::from_secs(4_000));
        let chaos = eng.agent::<Chaos>(id).expect("registered");
        prop_assert!(chaos.submit_errors.is_empty(), "{:?}", chaos.submit_errors);
        prop_assert_eq!(chaos.completed.len(), n);
        let moved: u64 = chaos.completed.iter().map(|c| c.bytes).sum();
        prop_assert_eq!(moved, total, "tiled plan must move every byte exactly once");
    }
}
