//! The control-channel protocol: a GridFTP-flavoured FTP command subset.
//!
//! GridFTP (§3) extends RFC 959 FTP with security on the control and data
//! channels, parallel data channels, partial file transfers and
//! third-party transfers. This module implements the command grammar and
//! reply codes for the subset our server speaks:
//!
//! | command | purpose |
//! |---------|---------|
//! | `AUTH GSSAPI` + `USER`/`PASS` | (simulated) GSI authentication |
//! | `TYPE I` / `MODE E` | binary type, extended block mode |
//! | `SBUF <bytes>` | set TCP buffer size |
//! | `OPTS RETR Parallelism=n,n,n;` | set parallel stream count |
//! | `PASV` / `SPAS` | passive / striped-passive data channels |
//! | `PORT` / `SPOR` | active / striped-active data channels |
//! | `RETR <path>` / `STOR <path>` | retrieve / store |
//! | `REST <offset>` | restart marker (partial transfers) |
//! | `ERET P <off> <len> <path>` | extended partial retrieve |
//! | `SIZE <path>` | file size query |
//! | `QUIT` | end session |

use std::fmt;

use serde::{Deserialize, Serialize};

/// A parsed control-channel command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// Begin (simulated) GSI authentication.
    AuthGssapi,
    /// Present a subject/user name.
    User(String),
    /// Present credentials.
    Pass(String),
    /// Set representation type; only `I` (image/binary) is accepted.
    Type(char),
    /// Set transfer mode; `S` (stream) or `E` (extended block, required
    /// for parallelism).
    Mode(char),
    /// Set the per-stream TCP buffer size in bytes.
    Sbuf(u64),
    /// `OPTS RETR Parallelism=n,n,n;` — request `n` parallel streams.
    OptsParallelism(u32),
    /// Enter passive mode.
    Pasv,
    /// Enter striped passive mode (parallel channels).
    Spas,
    /// Active mode with a client address.
    Port(String),
    /// Striped active mode with client addresses.
    Spor(Vec<String>),
    /// Restart offset for the next transfer.
    Rest(u64),
    /// Retrieve a file.
    Retr(String),
    /// Store a file.
    Stor(String),
    /// Extended retrieve: partial block `(offset, length, path)`.
    EretPartial(u64, u64, String),
    /// Query a file's size.
    Size(String),
    /// End the session.
    Quit,
}

/// A control-channel reply: three-digit code plus text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reply {
    /// RFC 959 reply code.
    pub code: u16,
    /// Human-readable text.
    pub text: String,
}

impl Reply {
    /// Build a reply.
    pub fn new(code: u16, text: impl Into<String>) -> Self {
        Reply {
            code,
            text: text.into(),
        }
    }

    /// Positive completion / intermediate (1xx–3xx)?
    pub fn is_ok(&self) -> bool {
        self.code < 400
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.text)
    }
}

/// Errors from command parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line held no command token.
    Empty,
    /// Unknown command verb.
    Unknown(String),
    /// The verb was recognized but its arguments were invalid.
    BadArgs(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty command line"),
            ParseError::Unknown(v) => write!(f, "unknown command {v:?}"),
            ParseError::BadArgs(c) => write!(f, "bad arguments for {c}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse one control-channel line.
pub fn parse(line: &str) -> Result<Command, ParseError> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None if line.is_empty() => return Err(ParseError::Empty),
        None => (line, ""),
    };
    let verb_up = verb.to_ascii_uppercase();
    match verb_up.as_str() {
        "AUTH" => {
            if rest.eq_ignore_ascii_case("GSSAPI") {
                Ok(Command::AuthGssapi)
            } else {
                Err(ParseError::BadArgs("AUTH"))
            }
        }
        "USER" => {
            if rest.is_empty() {
                Err(ParseError::BadArgs("USER"))
            } else {
                Ok(Command::User(rest.to_string()))
            }
        }
        "PASS" => Ok(Command::Pass(rest.to_string())),
        "TYPE" => {
            let c = rest.chars().next().ok_or(ParseError::BadArgs("TYPE"))?;
            Ok(Command::Type(c.to_ascii_uppercase()))
        }
        "MODE" => {
            let c = rest.chars().next().ok_or(ParseError::BadArgs("MODE"))?;
            Ok(Command::Mode(c.to_ascii_uppercase()))
        }
        "SBUF" => rest
            .parse()
            .map(Command::Sbuf)
            .map_err(|_| ParseError::BadArgs("SBUF")),
        "OPTS" => {
            // OPTS RETR Parallelism=n,n,n;
            let rest_up = rest.to_ascii_uppercase();
            let tail = rest_up
                .strip_prefix("RETR ")
                .ok_or(ParseError::BadArgs("OPTS"))?
                .trim_start();
            let eq = tail
                .strip_prefix("PARALLELISM=")
                .ok_or(ParseError::BadArgs("OPTS"))?;
            let first = eq
                .split([',', ';'])
                .next()
                .ok_or(ParseError::BadArgs("OPTS"))?;
            let n: u32 = first.parse().map_err(|_| ParseError::BadArgs("OPTS"))?;
            if n == 0 {
                return Err(ParseError::BadArgs("OPTS"));
            }
            Ok(Command::OptsParallelism(n))
        }
        "PASV" => Ok(Command::Pasv),
        "SPAS" => Ok(Command::Spas),
        "PORT" => {
            if rest.is_empty() {
                Err(ParseError::BadArgs("PORT"))
            } else {
                Ok(Command::Port(rest.to_string()))
            }
        }
        "SPOR" => {
            let addrs: Vec<String> = rest.split_whitespace().map(|s| s.to_string()).collect();
            if addrs.is_empty() {
                Err(ParseError::BadArgs("SPOR"))
            } else {
                Ok(Command::Spor(addrs))
            }
        }
        "REST" => rest
            .parse()
            .map(Command::Rest)
            .map_err(|_| ParseError::BadArgs("REST")),
        "RETR" => {
            if rest.is_empty() {
                Err(ParseError::BadArgs("RETR"))
            } else {
                Ok(Command::Retr(rest.to_string()))
            }
        }
        "STOR" => {
            if rest.is_empty() {
                Err(ParseError::BadArgs("STOR"))
            } else {
                Ok(Command::Stor(rest.to_string()))
            }
        }
        "ERET" => {
            // ERET P <offset> <length> <path>
            let mut it = rest.split_whitespace();
            let p = it.next().ok_or(ParseError::BadArgs("ERET"))?;
            if !p.eq_ignore_ascii_case("P") {
                return Err(ParseError::BadArgs("ERET"));
            }
            let off: u64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError::BadArgs("ERET"))?;
            let len: u64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ParseError::BadArgs("ERET"))?;
            let path: Vec<&str> = it.collect();
            if path.is_empty() {
                return Err(ParseError::BadArgs("ERET"));
            }
            Ok(Command::EretPartial(off, len, path.join(" ")))
        }
        "SIZE" => {
            if rest.is_empty() {
                Err(ParseError::BadArgs("SIZE"))
            } else {
                Ok(Command::Size(rest.to_string()))
            }
        }
        "QUIT" => Ok(Command::Quit),
        _ => Err(ParseError::Unknown(verb.to_string())),
    }
}

/// Format a command back to wire form (for clients and tests).
pub fn format(cmd: &Command) -> String {
    match cmd {
        Command::AuthGssapi => "AUTH GSSAPI".to_string(),
        Command::User(u) => format!("USER {u}"),
        Command::Pass(p) => format!("PASS {p}"),
        Command::Type(c) => format!("TYPE {c}"),
        Command::Mode(c) => format!("MODE {c}"),
        Command::Sbuf(n) => format!("SBUF {n}"),
        Command::OptsParallelism(n) => format!("OPTS RETR Parallelism={n},{n},{n};"),
        Command::Pasv => "PASV".to_string(),
        Command::Spas => "SPAS".to_string(),
        Command::Port(a) => format!("PORT {a}"),
        Command::Spor(addrs) => format!("SPOR {}", addrs.join(" ")),
        Command::Rest(o) => format!("REST {o}"),
        Command::Retr(p) => format!("RETR {p}"),
        Command::Stor(p) => format!("STOR {p}"),
        Command::EretPartial(o, l, p) => format!("ERET P {o} {l} {p}"),
        Command::Size(p) => format!("SIZE {p}"),
        Command::Quit => "QUIT".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_commands() {
        assert_eq!(parse("AUTH GSSAPI"), Ok(Command::AuthGssapi));
        assert_eq!(
            parse("USER :globus-mapping:"),
            Ok(Command::User(":globus-mapping:".into()))
        );
        assert_eq!(parse("TYPE I"), Ok(Command::Type('I')));
        assert_eq!(parse("MODE E"), Ok(Command::Mode('E')));
        assert_eq!(parse("SBUF 1000000"), Ok(Command::Sbuf(1_000_000)));
        assert_eq!(parse("PASV"), Ok(Command::Pasv));
        assert_eq!(parse("QUIT"), Ok(Command::Quit));
    }

    #[test]
    fn parse_is_case_insensitive_on_verbs() {
        assert_eq!(parse("retr /a/b"), Ok(Command::Retr("/a/b".into())));
        assert_eq!(parse("sPaS"), Ok(Command::Spas));
    }

    #[test]
    fn parse_opts_parallelism() {
        assert_eq!(
            parse("OPTS RETR Parallelism=8,8,8;"),
            Ok(Command::OptsParallelism(8))
        );
        assert_eq!(
            parse("OPTS RETR Parallelism=4;"),
            Ok(Command::OptsParallelism(4))
        );
        assert_eq!(
            parse("OPTS RETR Parallelism=0;"),
            Err(ParseError::BadArgs("OPTS"))
        );
        assert_eq!(parse("OPTS MLST type"), Err(ParseError::BadArgs("OPTS")));
    }

    #[test]
    fn parse_eret_partial() {
        assert_eq!(
            parse("ERET P 1024 4096 /home/ftp/f"),
            Ok(Command::EretPartial(1024, 4096, "/home/ftp/f".into()))
        );
        assert_eq!(parse("ERET X 1 2 /f"), Err(ParseError::BadArgs("ERET")));
        assert_eq!(parse("ERET P 1 2"), Err(ParseError::BadArgs("ERET")));
    }

    #[test]
    fn parse_spor_addresses() {
        assert_eq!(
            parse("SPOR 140,221,65,69,8,1 140,221,65,69,8,2"),
            Ok(Command::Spor(vec![
                "140,221,65,69,8,1".into(),
                "140,221,65,69,8,2".into()
            ]))
        );
        assert_eq!(parse("SPOR"), Err(ParseError::BadArgs("SPOR")));
    }

    #[test]
    fn parse_rejects_unknown_and_empty() {
        assert_eq!(parse(""), Err(ParseError::Empty));
        assert!(matches!(parse("FLY /home"), Err(ParseError::Unknown(_))));
        assert_eq!(parse("SBUF lots"), Err(ParseError::BadArgs("SBUF")));
        assert_eq!(parse("RETR"), Err(ParseError::BadArgs("RETR")));
    }

    #[test]
    fn format_parse_roundtrip() {
        let cmds = vec![
            Command::AuthGssapi,
            Command::User("u".into()),
            Command::Pass("p".into()),
            Command::Type('I'),
            Command::Mode('E'),
            Command::Sbuf(1_000_000),
            Command::OptsParallelism(8),
            Command::Pasv,
            Command::Spas,
            Command::Port("1,2,3,4,5,6".into()),
            Command::Spor(vec!["a".into(), "b".into()]),
            Command::Rest(77),
            Command::Retr("/f".into()),
            Command::Stor("/g".into()),
            Command::EretPartial(10, 20, "/h".into()),
            Command::Size("/f".into()),
            Command::Quit,
        ];
        for c in cmds {
            assert_eq!(parse(&format(&c)), Ok(c.clone()), "{}", format(&c));
        }
    }

    #[test]
    fn reply_classification() {
        assert!(Reply::new(226, "ok").is_ok());
        assert!(Reply::new(150, "opening").is_ok());
        assert!(!Reply::new(550, "no such file").is_ok());
        assert_eq!(Reply::new(230, "in").to_string(), "230 in");
    }
}
