//! Transfer execution: turning negotiated transfers into simulated
//! network flows with storage contention and end-to-end instrumentation.
//!
//! [`TransferManager`] is designed to be *embedded* in a simulation agent
//! (the testbed's campaign driver, the examples' clients): the agent
//! forwards timer events whose tags satisfy [`owns_tag`] and all flow
//! completions to the manager, and receives [`CompletedTransfer`]s back.
//!
//! A transfer is one or more **legs** — classic GET/PUT and third-party
//! transfers have a single data leg; striped transfers (GridFTP's
//! SPAS/SPOR striping) have one leg per stripe server, each moving its
//! share of the payload in parallel. A transfer's life cycle:
//!
//! 1. **submit** — the request is validated against the server catalogs
//!    (GridFTP would return `550` here); a timer models the control
//!    channel setup: GSI authentication plus the command round trips to
//!    the farthest involved server.
//! 2. **setup fires** — every leg opens its storage accesses (charging
//!    the disk's positioning overhead) and starts its data flow with the
//!    negotiated stream count and buffer; every *other* in-flight
//!    transfer touching those servers gets its storage cap re-evaluated
//!    (one more concurrent access slows everyone: §3).
//! 3. **legs complete** — as each leg's flow drains, its accesses close
//!    (again re-evaluating peers). When the last leg lands, `STOR`
//!    targets appear in the destination catalog and each involved server
//!    writes a ULM record for the bytes *it* served, with the total time
//!    spanning submit→completion — the paper's end-to-end definition
//!    including protocol overheads.

use std::collections::BTreeMap;

use wanpred_logfmt::{Operation, TransferLog, TransferRecord, TransferRecordBuilder};
use wanpred_obs::{names, ObsSink};
use wanpred_simnet::engine::{Ctx, TimerTag};
use wanpred_simnet::flow::{FlowDone, FlowFailed, FlowId, FlowSpec, TcpParams};
use wanpred_simnet::index::VecMap;
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_simnet::topology::NodeId;
use wanpred_storage::{AccessId, StorageServer};

use crate::server::ServerConfig;

/// Timer-tag namespace claimed by transfer managers. Embedding agents
/// must forward any tag for which [`owns_tag`] is true.
pub const TAG_BASE: TimerTag = 1 << 62;

/// Bit offset of the timer-kind field inside a manager tag.
const KIND_SHIFT: u32 = 56;
/// Bit offset of the attempt number inside a manager tag.
const ATTEMPT_SHIFT: u32 = 48;
/// Low bits holding the transfer id.
const ID_MASK: u64 = (1 << ATTEMPT_SHIFT) - 1;
/// Timer kind: control-channel setup finished, start the data flows.
const KIND_SETUP: u64 = 0;
/// Timer kind: the per-attempt deadline expired.
const KIND_DEADLINE: u64 = 1;

fn setup_tag(id: u64, attempt: u32) -> TimerTag {
    TAG_BASE | (KIND_SETUP << KIND_SHIFT) | ((u64::from(attempt) & 0xFF) << ATTEMPT_SHIFT) | id
}

fn deadline_tag(id: u64, attempt: u32) -> TimerTag {
    TAG_BASE | (KIND_DEADLINE << KIND_SHIFT) | ((u64::from(attempt) & 0xFF) << ATTEMPT_SHIFT) | id
}

/// Does a timer tag belong to a [`TransferManager`]?
pub fn owns_tag(tag: TimerTag) -> bool {
    tag & TAG_BASE != 0
}

/// Retry-and-timeout policy applied to every transfer a manager runs.
///
/// An *attempt* ends in one of three ways: completion, a connection
/// reset (an injected flow kill), or the attempt deadline expiring. On
/// the latter two, surviving legs are torn down, the delivered byte
/// counts are retained, and — while the attempt budget lasts — a fresh
/// attempt is scheduled after an exponentially growing, jittered backoff
/// that resumes each leg from its delivered offset via the partial
/// (`REST`) machinery. Backoff for completed attempt `k` (1-based) is
/// `min(backoff_base * backoff_factor^(k-1), backoff_max)`, scaled by a
/// deterministic jitter in `[1 - jitter_frac, 1 + jitter_frac)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempt budget, including the first try (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub backoff_base: SimDuration,
    /// Multiplier applied per further failed attempt.
    pub backoff_factor: f64,
    /// Upper bound on the backoff delay.
    pub backoff_max: SimDuration,
    /// Jitter half-width as a fraction of the backoff (decorrelates
    /// retry storms; deterministic per transfer and attempt).
    pub jitter_frac: f64,
    /// Fixed floor of every attempt deadline (covers setup latency).
    pub deadline_floor: SimDuration,
    /// The deadline allows the attempt's remaining bytes to move at this
    /// floor rate (KB/s) before declaring the attempt dead.
    pub deadline_kbs: f64,
}

impl RetryPolicy {
    /// A calibrated wide-area policy: five attempts, 5 s → 5 min
    /// exponential backoff with 25 % jitter, and a deadline sized so an
    /// attempt effectively moving under 50 KB/s (far below even the
    /// congested testbed floor) is declared dead.
    pub fn wan_default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            backoff_base: SimDuration::from_secs(5),
            backoff_factor: 2.0,
            backoff_max: SimDuration::from_mins(5),
            jitter_frac: 0.25,
            deadline_floor: SimDuration::from_secs(60),
            deadline_kbs: 50.0,
        }
    }

    /// Backoff delay after `failed_attempts` completed attempts (≥ 1)
    /// for transfer `id`, jitter included.
    fn backoff(&self, id: u64, failed_attempts: u32) -> SimDuration {
        let exp = self
            .backoff_factor
            .powi(failed_attempts.saturating_sub(1) as i32);
        let raw = (self.backoff_base.as_secs_f64() * exp).min(self.backoff_max.as_secs_f64());
        // Deterministic jitter in [1 - f, 1 + f): transfers are decorrelated
        // by id, attempts by the counter, with no shared RNG state.
        let unit = jitter_unit(id, failed_attempts);
        let scale = 1.0 + self.jitter_frac * (2.0 * unit - 1.0);
        SimDuration::from_secs_f64((raw * scale).max(0.0))
    }

    /// Deadline for an attempt still owing `remaining` bytes.
    fn deadline(&self, remaining: u64) -> SimDuration {
        self.deadline_floor
            + SimDuration::from_secs_f64(remaining as f64 / (self.deadline_kbs * 1000.0))
    }
}

/// SplitMix64-style avalanche of `(id, attempt)` to a unit float.
fn jitter_unit(id: u64, attempt: u32) -> f64 {
    let mut z = id ^ (u64::from(attempt) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Why an attempt (or a whole transfer) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// A data flow was torn down by the network (connection reset).
    ConnectionReset,
    /// The attempt deadline expired (stalled or crawling transfer).
    DeadlineExceeded,
}

/// Recovery-path notifications surfaced to the embedding agent. Drain
/// with [`TransferManager::take_events`] after forwarding timer and flow
/// events.
#[derive(Debug, Clone)]
pub enum TransferEvent {
    /// An attempt failed and another one was scheduled.
    RetryScheduled {
        /// The transfer.
        token: TransferToken,
        /// The upcoming attempt number (2 = first retry).
        attempt: u32,
        /// Backoff delay before the attempt's control setup starts.
        delay: SimDuration,
        /// What ended the previous attempt.
        reason: FailureReason,
        /// Bytes delivered so far across all attempts and legs.
        delivered_bytes: u64,
    },
    /// The transfer exhausted its attempt budget and was abandoned.
    /// No ULM record is written (servers log completed transfers only).
    Failed {
        /// The transfer.
        token: TransferToken,
        /// Attempts consumed.
        attempts: u32,
        /// What ended the final attempt.
        reason: FailureReason,
        /// Bytes delivered so far across all attempts and legs.
        delivered_bytes: u64,
    },
}

/// Identifier of a submitted transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferToken(pub u64);

/// What kind of transfer to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferKind {
    /// Client retrieves `path` from `server` (server → client).
    Get {
        /// Serving node.
        server: NodeId,
        /// File path on the server.
        path: String,
    },
    /// Client stores `size` bytes as `path` on `server` (client → server).
    Put {
        /// Receiving node.
        server: NodeId,
        /// Destination path on the server.
        path: String,
        /// Payload size in bytes.
        size: u64,
    },
    /// Third-party: `from` server sends `path` directly to `to` server,
    /// orchestrated by the client's control channels.
    ThirdParty {
        /// Source server.
        from: NodeId,
        /// Destination server.
        to: NodeId,
        /// File path on the source server.
        path: String,
    },
    /// Striped retrieve: every server in `servers` holds a replica of
    /// `path`; each serves an even share of the bytes to the client in
    /// parallel (GridFTP SPAS striping). The transfer completes when the
    /// last stripe lands.
    StripedGet {
        /// Stripe servers (each must hold the file; sizes must agree).
        servers: Vec<NodeId>,
        /// File path on the stripe servers.
        path: String,
    },
}

/// A transfer request.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRequest {
    /// The requesting host.
    pub client: NodeId,
    /// What to transfer.
    pub kind: TransferKind,
    /// Parallel stream count (per leg, for striped transfers).
    pub streams: u32,
    /// Per-stream TCP buffer bytes.
    pub tcp_buffer: u64,
    /// Optional partial transfer `(offset, length)` (GETs only).
    pub partial: Option<(u64, u64)>,
}

/// Errors detected at submit time (the control-channel 5xx replies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The named node is not a registered GridFTP server.
    NotAServer(NodeId),
    /// File not found on the source server (550).
    FileNotFound(String),
    /// Partial-transfer offset beyond end of file (554).
    BadOffset,
    /// The topology has no route for a data leg.
    NoRoute,
    /// A striped request listed no servers.
    NoStripes,
    /// Stripe replicas disagree on the file size.
    StripeSizeMismatch,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::NotAServer(n) => write!(f, "{n} is not a GridFTP server"),
            SubmitError::FileNotFound(p) => write!(f, "550 no such file: {p}"),
            SubmitError::BadOffset => write!(f, "554 offset beyond end of file"),
            SubmitError::NoRoute => write!(f, "no route for data path"),
            SubmitError::NoStripes => write!(f, "striped request with no servers"),
            SubmitError::StripeSizeMismatch => write!(f, "stripe replicas disagree on size"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A finished transfer as reported to the embedding agent.
#[derive(Debug, Clone)]
pub struct CompletedTransfer {
    /// The token returned at submit.
    pub token: TransferToken,
    /// Submit time.
    pub submitted: SimTime,
    /// Completion time (last leg).
    pub finished: SimTime,
    /// Total bytes moved across all legs.
    pub bytes: u64,
    /// End-to-end bandwidth in KB/s over submit→finish (the paper's
    /// definition: file size / transfer time). For transfers that
    /// recovered from failed attempts, the denominator includes backoff
    /// and re-setup time — the end-to-end experience.
    pub bandwidth_kbs: f64,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// A record describing the whole logical transfer from the primary
    /// server's perspective (for single-leg transfers this is exactly
    /// the record appended to the primary server's log).
    pub record: TransferRecord,
}

/// Byte share of each stripe when `bytes` is split evenly across `n`
/// servers: the remainder is spread one byte at a time over the leading
/// stripes. The shares always sum to exactly `bytes` — laid end to end
/// they tile `[0, bytes)` with no gap or overlap — including the
/// degenerate `bytes = 0` and `n > bytes` cases (trailing stripes get
/// zero-byte shares).
pub fn stripe_shares(bytes: u64, n: usize) -> Vec<u64> {
    assert!(n > 0, "stripe plans need at least one server");
    let n = n as u64;
    let share = bytes / n;
    let rem = bytes % n;
    (0..n).map(|i| share + u64::from(i < rem)).collect()
}

/// One registered server.
struct ServerRuntime {
    config: ServerConfig,
    storage: StorageServer,
    log: TransferLog,
}

/// One data leg of a transfer.
struct Leg {
    src: NodeId,
    dst: NodeId,
    /// Bytes the *current* attempt still has to move on this leg.
    bytes: u64,
    /// Bytes delivered by earlier (failed) attempts: the REST offset the
    /// current attempt resumes from. The leg's original share is
    /// `bytes + prior_delivered`.
    prior_delivered: u64,
    flow: Option<FlowId>,
    src_access: Option<(NodeId, AccessId)>,
    dst_access: Option<(NodeId, AccessId)>,
    done: bool,
}

impl Leg {
    /// Bytes delivered so far across all attempts.
    fn delivered(&self) -> u64 {
        if self.done {
            self.prior_delivered + self.bytes
        } else {
            self.prior_delivered
        }
    }

    /// The leg's original payload share (for logging).
    fn share(&self) -> u64 {
        self.bytes + self.prior_delivered
    }
}

/// In-flight transfer state.
struct Inflight {
    token: TransferToken,
    client: NodeId,
    /// Primary logging server (the storage-operating server closest to
    /// the paper's instrumented endpoint; first stripe for striped).
    primary: NodeId,
    path: String,
    volume: String,
    total_bytes: u64,
    streams: u32,
    tcp_buffer: u64,
    /// On completion of a PUT/third-party, register the file here.
    register_at: Option<NodeId>,
    submitted: SimTime,
    legs: Vec<Leg>,
    pending: usize,
    /// Current attempt number (1-based; bumped when a retry is scheduled).
    attempt: u32,
    /// Control-channel setup delay, re-charged on every attempt.
    setup: SimDuration,
}

/// The embedded transfer engine.
pub struct TransferManager {
    servers: BTreeMap<NodeId, ServerRuntime>,
    hosts: BTreeMap<NodeId, (String, String)>,
    /// Hot per-transfer state, keyed by the monotonic transfer counter:
    /// a sorted-vec map so the per-event lookups in the replay loop stay
    /// in one contiguous allocation (see `wanpred_simnet::index`).
    inflight: VecMap<u64, Inflight>,
    /// Flow → transfer back-map; flow ids are allocated monotonically by
    /// the network, so inserts append.
    by_flow: VecMap<FlowId, u64>,
    next: u64,
    /// Unix seconds corresponding to `SimTime::ZERO`.
    epoch_unix: u64,
    /// Retry/timeout policy; `None` fails transfers on the first fault.
    retry: Option<RetryPolicy>,
    /// Recovery notifications awaiting [`TransferManager::take_events`].
    events: Vec<TransferEvent>,
    /// Observability sink (null by default).
    obs: ObsSink,
}

impl TransferManager {
    /// Create a manager; `epoch_unix` maps simulation time zero to a wall
    /// clock for log timestamps.
    pub fn new(epoch_unix: u64) -> Self {
        TransferManager {
            servers: BTreeMap::new(),
            hosts: BTreeMap::new(),
            inflight: VecMap::new(),
            by_flow: VecMap::new(),
            next: 0,
            epoch_unix,
            retry: None,
            events: Vec::new(),
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink: transfer life-cycle counters,
    /// duration/byte histograms, and a sim-time span per modeled log
    /// append flow through it.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Install a retry/timeout policy (attempt deadlines, exponential
    /// backoff, resume-from-offset). Without one, a connection reset
    /// fails the transfer outright and no deadlines are armed.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        self.retry = Some(policy);
    }

    /// The installed retry policy, if any.
    pub fn retry_policy(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// Drain pending recovery notifications (retries scheduled, transfers
    /// abandoned). Call after forwarding timer/flow events.
    pub fn take_events(&mut self) -> Vec<TransferEvent> {
        std::mem::take(&mut self.events)
    }

    /// Register a GridFTP server at a node.
    pub fn add_server(&mut self, node: NodeId, config: ServerConfig, storage: StorageServer) {
        self.hosts
            .insert(node, (config.host.clone(), config.address.clone()));
        self.servers.insert(
            node,
            ServerRuntime {
                config,
                storage,
                log: TransferLog::new(),
            },
        );
    }

    /// Register a plain (client) host's name and address for logging.
    pub fn add_host(&mut self, node: NodeId, host: impl Into<String>, address: impl Into<String>) {
        self.hosts.insert(node, (host.into(), address.into()));
    }

    /// The transfer log accumulated at a server.
    pub fn server_log(&self, node: NodeId) -> Option<&TransferLog> {
        self.servers.get(&node).map(|s| &s.log)
    }

    /// The storage server at a node (inspection/tests).
    pub fn storage(&self, node: NodeId) -> Option<&StorageServer> {
        self.servers.get(&node).map(|s| &s.storage)
    }

    /// Number of in-flight transfers.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    fn addr_of(&self, node: NodeId) -> (String, String) {
        self.hosts
            .get(&node)
            .cloned()
            .unwrap_or_else(|| (format!("{node}"), format!("{node}")))
    }

    /// Look up a file on a registered server.
    fn lookup(&self, server: NodeId, path: &str) -> Result<u64, SubmitError> {
        let rt = self
            .servers
            .get(&server)
            .ok_or(SubmitError::NotAServer(server))?;
        rt.storage
            .catalog()
            .lookup(path)
            .map(|e| e.size)
            .map_err(|_| SubmitError::FileNotFound(path.to_string()))
    }

    /// Submit a transfer. On success, the data starts flowing after the
    /// control-channel setup delay and the completion arrives through
    /// [`TransferManager::on_flow_complete`].
    pub fn submit(
        &mut self,
        ctx: &mut Ctx<'_>,
        req: TransferRequest,
    ) -> Result<TransferToken, SubmitError> {
        let apply_partial = |total: u64, partial: Option<(u64, u64)>| -> Result<u64, SubmitError> {
            match partial {
                Some((off, len)) => {
                    // Any nonzero offset at or past EOF is a 554 — including
                    // into a zero-size file, where `total - off` would wrap.
                    if off > 0 && off >= total {
                        return Err(SubmitError::BadOffset);
                    }
                    Ok(len.min(total - off))
                }
                None => Ok(total),
            }
        };

        // Resolve legs, the primary server and registration target.
        // (src, dst, bytes) triples for every data leg.
        type LegSpec = (NodeId, NodeId, u64);
        let (legs, primary, path, register_at): (Vec<LegSpec>, NodeId, String, Option<NodeId>) =
            match &req.kind {
                TransferKind::Get { server, path } => {
                    let total = self.lookup(*server, path)?;
                    let bytes = apply_partial(total, req.partial)?;
                    (
                        vec![(*server, req.client, bytes)],
                        *server,
                        path.clone(),
                        None,
                    )
                }
                TransferKind::Put { server, path, size } => {
                    self.servers
                        .get(server)
                        .ok_or(SubmitError::NotAServer(*server))?;
                    (
                        vec![(req.client, *server, *size)],
                        *server,
                        path.clone(),
                        Some(*server),
                    )
                }
                TransferKind::ThirdParty { from, to, path } => {
                    let total = self.lookup(*from, path)?;
                    self.servers.get(to).ok_or(SubmitError::NotAServer(*to))?;
                    (vec![(*from, *to, total)], *from, path.clone(), Some(*to))
                }
                TransferKind::StripedGet { servers, path } => {
                    if servers.is_empty() {
                        return Err(SubmitError::NoStripes);
                    }
                    let sizes: Vec<u64> = servers
                        .iter()
                        .map(|s| self.lookup(*s, path))
                        .collect::<Result<_, _>>()?;
                    if sizes.iter().zip(sizes.iter().skip(1)).any(|(a, b)| a != b) {
                        return Err(SubmitError::StripeSizeMismatch);
                    }
                    let first_size = *sizes
                        .first()
                        .expect("guarded: servers checked non-empty above");
                    let bytes = apply_partial(first_size, req.partial)?;
                    let legs = servers
                        .iter()
                        .zip(stripe_shares(bytes, servers.len()))
                        .map(|(s, b)| (*s, req.client, b))
                        .collect();
                    let primary = *servers
                        .first()
                        .expect("guarded: servers checked non-empty above");
                    (legs, primary, path.clone(), None)
                }
            };

        // Every data path must exist before we commit.
        for (src, dst, _) in &legs {
            ctx.network()
                .topology()
                .route(*src, *dst)
                .map_err(|_| SubmitError::NoRoute)?;
        }

        let primary_rt = self.servers.get(&primary).expect("validated above");
        let volume = primary_rt
            .storage
            .catalog()
            .volume_of(&path)
            .map(|v| v.mount.clone())
            .unwrap_or_default();

        // Control-channel setup: GSI handshake plus command round trips
        // between the client and the farthest involved server.
        let rtt_to = |server: NodeId| -> SimDuration {
            ctx.network()
                .topology()
                .rtt(req.client, server)
                .unwrap_or(SimDuration::from_millis(1))
        };
        let mut control_rtt = SimDuration::ZERO;
        for (src, dst, _) in &legs {
            for node in [src, dst] {
                if self.servers.contains_key(node) {
                    control_rtt = control_rtt.max(rtt_to(*node));
                }
            }
        }
        let cfg = &primary_rt.config;
        let setup = SimDuration::from_millis(cfg.auth_delay_ms)
            + control_rtt * u64::from(cfg.setup_round_trips);

        let id = self.next;
        self.next += 1;
        let token = TransferToken(id);
        let total_bytes = legs.iter().map(|(_, _, b)| b).sum();
        let pending = legs.len();
        self.inflight.insert(
            id,
            Inflight {
                token,
                client: req.client,
                primary,
                path,
                volume,
                total_bytes,
                streams: req.streams.max(1),
                tcp_buffer: req.tcp_buffer,
                register_at,
                submitted: ctx.now(),
                legs: legs
                    .into_iter()
                    .map(|(src, dst, bytes)| Leg {
                        src,
                        dst,
                        bytes,
                        prior_delivered: 0,
                        flow: None,
                        src_access: None,
                        dst_access: None,
                        done: false,
                    })
                    .collect(),
                pending,
                attempt: 1,
                setup,
            },
        );
        ctx.set_timer(setup, setup_tag(id, 1));
        self.obs.inc(names::GRIDFTP_SUBMITTED);
        Ok(token)
    }

    /// Handle a timer event. Returns `true` if the tag belonged to this
    /// manager (the embedding agent should then stop processing it).
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) -> bool {
        if !owns_tag(tag) {
            return false;
        }
        let id = tag & ID_MASK;
        let kind = (tag >> KIND_SHIFT) & 0x3F;
        let attempt = ((tag >> ATTEMPT_SHIFT) & 0xFF) as u32;
        match kind {
            KIND_SETUP => self.start_attempt(ctx, id, attempt),
            KIND_DEADLINE => self.deadline_fired(ctx, id, attempt),
            _ => {}
        }
        true
    }

    /// A setup timer fired: open storage accesses and start the data
    /// flows for every unfinished leg, then arm the attempt deadline.
    fn start_attempt(&mut self, ctx: &mut Ctx<'_>, id: u64, attempt: u32) {
        let Some(t) = self.inflight.get(&id) else {
            return; // stale timer for an aborted transfer
        };
        if t.attempt != attempt {
            return; // stale setup from a superseded attempt
        }
        let path = t.path.clone();
        let streams = t.streams;
        let tcp_buffer = t.tcp_buffer;
        let leg_specs: Vec<(usize, NodeId, NodeId, u64)> = t
            .legs
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.done)
            .map(|(i, l)| (i, l.src, l.dst, l.bytes))
            .collect();

        let mut touched = Vec::new();
        for (i, src, dst, bytes) in leg_specs {
            let src_access = self.servers.get_mut(&src).map(|rt| {
                let a = rt.storage.open_read(&path, bytes);
                (src, a)
            });
            let dst_access = self.servers.get_mut(&dst).map(|rt| {
                let a = rt.storage.open_write(&path, bytes);
                (dst, a)
            });
            let spec = FlowSpec {
                from: src,
                to: dst,
                bytes,
                streams,
                tcp: TcpParams {
                    buffer_bytes: tcp_buffer,
                    init_window: 2 * 1460,
                    mss: 1460,
                },
                external_cap: f64::INFINITY, // set by refresh_caps below
            };
            let flow = ctx
                .start_flow(spec)
                .expect("route validated at submit time");
            let t = self.inflight.get_mut(&id).expect("checked above");
            t.legs[i].src_access = src_access;
            t.legs[i].dst_access = dst_access;
            t.legs[i].flow = Some(flow);
            self.by_flow.insert(flow, id);
            touched.push(Some(src));
            touched.push(Some(dst));
        }

        // Contention changed at every touched server: refresh every
        // affected cap, including the new flows' own.
        self.refresh_caps(ctx, &touched);

        // Arm this attempt's deadline, sized to its remaining bytes.
        if let Some(p) = &self.retry {
            let t = &self.inflight[&id];
            let remaining: u64 = t.legs.iter().filter(|l| !l.done).map(|l| l.bytes).sum();
            ctx.set_timer(p.deadline(remaining), deadline_tag(id, attempt));
        }
    }

    /// A deadline timer fired. Ignore it unless it belongs to the
    /// transfer's *current* attempt (completion removes the transfer;
    /// failure bumps the attempt counter, staling old deadlines).
    fn deadline_fired(&mut self, ctx: &mut Ctx<'_>, id: u64, attempt: u32) {
        let Some(t) = self.inflight.get(&id) else {
            return;
        };
        if t.attempt != attempt {
            return;
        }
        self.fail_attempt(ctx, id, FailureReason::DeadlineExceeded);
    }

    /// Handle a flow-failed event (connection reset injected by the
    /// network). Returns `true` if the flow belonged to this manager.
    pub fn on_flow_failed(&mut self, ctx: &mut Ctx<'_>, failed: &FlowFailed) -> bool {
        let Some(&id) = self.by_flow.get(&failed.id) else {
            return false;
        };
        // The network already tore the flow down: credit its delivered
        // bytes to the leg, then fail the whole attempt (GridFTP aborts
        // the transfer when any stripe's connection drops).
        self.by_flow.remove(&failed.id);
        let t = self.inflight.get_mut(&id).expect("flow maps to inflight");
        if let Some(leg) = t.legs.iter_mut().find(|l| l.flow == Some(failed.id)) {
            leg.flow = None;
            let delivered = failed.delivered_bytes.min(leg.bytes);
            leg.prior_delivered += delivered;
            leg.bytes -= delivered;
        }
        self.fail_attempt(ctx, id, FailureReason::ConnectionReset);
        true
    }

    /// Tear down the current attempt (abort surviving flows, close
    /// storage accesses, bank delivered bytes) and either schedule the
    /// next attempt or abandon the transfer.
    fn fail_attempt(&mut self, ctx: &mut Ctx<'_>, id: u64, reason: FailureReason) {
        let mut touched = Vec::new();
        {
            let t = self
                .inflight
                .get_mut(&id)
                .expect("failing unknown transfer");
            for leg in &mut t.legs {
                if leg.done {
                    continue;
                }
                if let Some(flow) = leg.flow.take() {
                    self.by_flow.remove(&flow);
                    if let Some(fraction) = ctx.abort_flow(flow) {
                        let delivered =
                            ((fraction * leg.bytes as f64).floor() as u64).min(leg.bytes);
                        leg.prior_delivered += delivered;
                        leg.bytes -= delivered;
                    }
                }
                for access in [leg.src_access.take(), leg.dst_access.take()]
                    .into_iter()
                    .flatten()
                {
                    let (node, a) = access;
                    if let Some(rt) = self.servers.get_mut(&node) {
                        rt.storage.close(a);
                    }
                    touched.push(Some(node));
                }
            }
        }
        self.refresh_caps(ctx, &touched);

        let t = self.inflight.get_mut(&id).expect("still present");
        let delivered: u64 = t.legs.iter().map(Leg::delivered).sum();
        let retry_allowed = self
            .retry
            .as_ref()
            .map(|p| t.attempt < p.max_attempts)
            .unwrap_or(false);
        if retry_allowed {
            let policy = self.retry.as_ref().expect("checked above");
            let failed_attempts = t.attempt;
            t.attempt += 1;
            t.pending = t.legs.iter().filter(|l| !l.done).count();
            let backoff = policy.backoff(id, failed_attempts);
            // Re-run control-channel setup after the backoff: retries pay
            // authentication and command round trips again.
            ctx.set_timer(backoff + t.setup, setup_tag(id, t.attempt));
            self.obs.inc(names::GRIDFTP_RETRIES);
            self.events.push(TransferEvent::RetryScheduled {
                token: t.token,
                attempt: t.attempt,
                delay: backoff,
                reason,
                delivered_bytes: delivered,
            });
        } else {
            let t = self.inflight.remove(&id).expect("still present");
            self.obs.inc(names::GRIDFTP_FAILED);
            self.events.push(TransferEvent::Failed {
                token: t.token,
                attempts: t.attempt,
                reason,
                delivered_bytes: delivered,
            });
        }
    }

    /// Handle a flow completion. Returns the completed transfer when its
    /// *last* leg lands.
    pub fn on_flow_complete(
        &mut self,
        ctx: &mut Ctx<'_>,
        done: &FlowDone,
    ) -> Option<CompletedTransfer> {
        let id = self.by_flow.remove(&done.id)?;
        let finished_all = {
            let t = self.inflight.get_mut(&id).expect("flow maps to inflight");
            let leg = t
                .legs
                .iter_mut()
                .find(|l| l.flow == Some(done.id))
                .expect("completed flow belongs to a leg");
            leg.done = true;
            t.pending -= 1;
            let touched = [
                leg.src_access.map(|(n, _)| n),
                leg.dst_access.map(|(n, _)| n),
            ];
            // Close this leg's accesses.
            let closes = [leg.src_access.take(), leg.dst_access.take()];
            for (node, a) in closes.into_iter().flatten() {
                if let Some(rt) = self.servers.get_mut(&node) {
                    rt.storage.close(a);
                }
            }
            self.refresh_caps(ctx, &touched);
            self.inflight[&id].pending == 0
        };
        if !finished_all {
            return None;
        }
        let t = self.inflight.remove(&id).expect("checked above");

        // A completed STOR/third-party target appears in the catalog.
        if let Some(node) = t.register_at {
            if let Some(rt) = self.servers.get_mut(&node) {
                rt.storage
                    .catalog_mut()
                    .put_file(t.path.clone(), t.total_bytes)
                    .ok();
            }
        }

        let finished = ctx.now();
        let total_s = finished.saturating_since(t.submitted).as_secs_f64();
        let start_unix = self.epoch_unix + t.submitted.as_secs();
        let end_unix = self.epoch_unix + finished.as_secs();

        let build_record =
            |mgr: &Self, server_node: NodeId, remote: NodeId, bytes: u64, op: Operation| {
                let (_, remote_addr) = mgr.addr_of(remote);
                let (host, _) = mgr.addr_of(server_node);
                TransferRecordBuilder::new()
                    .source(remote_addr)
                    .host(host)
                    .file_name(t.path.clone())
                    .file_size(bytes)
                    .volume(t.volume.clone())
                    .start_unix(start_unix)
                    .end_unix(end_unix)
                    .total_time_s(total_s)
                    .streams(t.streams)
                    .tcp_buffer(t.tcp_buffer)
                    .operation(op)
                    .build()
                    .expect("all fields set")
            };

        // Each involved registered server logs the bytes it served; the
        // remote party is the other data endpoint (or the client for
        // GET/PUT, matching Figure 3 where LBL logs the ANL client).
        // A retried leg logs its full original share (earlier attempts'
        // bytes included), so per-server records sum to the file size.
        for leg in &t.legs {
            for (server_node, op_here) in [(leg.src, Operation::Read), (leg.dst, Operation::Write)]
            {
                if !self.servers.contains_key(&server_node) {
                    continue;
                }
                let other = if server_node == leg.src {
                    leg.dst
                } else {
                    leg.src
                };
                let remote = if self.servers.contains_key(&other) && other != t.client {
                    other
                } else {
                    t.client
                };
                let record = build_record(self, server_node, remote, leg.share(), op_here);
                // Span the modeled ULM append on the sim clock: the
                // paper's ~25 ms logging overhead becomes a per-append
                // duration histogram under the span's name.
                let at = finished.as_micros();
                let cost = crate::instrument::modeled_logging_cost(&record).as_micros();
                self.obs.span_enter(names::GRIDFTP_LOG_APPEND, at);
                self.obs.span_exit(names::GRIDFTP_LOG_APPEND, at + cost);
                self.servers
                    .get_mut(&server_node)
                    .expect("checked above")
                    .log
                    .append(record);
            }
        }

        // The logical-transfer record for the caller: total bytes from
        // the primary server's perspective.
        self.obs.inc(names::GRIDFTP_COMPLETED);
        self.obs.observe(
            names::GRIDFTP_TRANSFER_DURATION_US,
            finished.saturating_since(t.submitted).as_micros(),
        );
        self.obs
            .observe(names::GRIDFTP_TRANSFER_BYTES, t.total_bytes);

        let record = build_record(self, t.primary, t.client, t.total_bytes, Operation::Read);
        let bandwidth_kbs = if total_s > 0.0 {
            t.total_bytes as f64 / total_s / 1_000.0
        } else {
            0.0
        };
        Some(CompletedTransfer {
            token: t.token,
            submitted: t.submitted,
            finished,
            bytes: t.total_bytes,
            bandwidth_kbs,
            attempts: t.attempt,
            record,
        })
    }

    /// Sample the payload bytes delivered so far by an in-flight transfer
    /// without disturbing it: prior-attempt credit plus the fluid
    /// progress of every active leg flow, floored to whole bytes. The
    /// floor means this never over-reports, so a REST resume from the
    /// returned offset can never skip data. Returns `None` for unknown
    /// (or already completed/aborted) tokens.
    pub fn progress(&self, ctx: &mut Ctx<'_>, token: TransferToken) -> Option<u64> {
        let t = self.inflight.get(&token.0)?;
        let mut delivered = 0u64;
        for leg in &t.legs {
            delivered += leg.prior_delivered;
            if leg.done {
                delivered += leg.bytes;
            } else if let Some(flow) = leg.flow {
                let fraction = ctx.flow_progress(flow).unwrap_or(1.0);
                delivered += ((fraction * leg.bytes as f64).floor() as u64).min(leg.bytes);
            }
        }
        Some(delivered)
    }

    /// Abort like [`TransferManager::abort`], but return the exact number
    /// of payload bytes delivered (prior-attempt credit plus floored
    /// fluid progress per leg) instead of a byte-weighted fraction.
    /// Co-allocating callers re-plan the remaining `[delivered, share)`
    /// range onto another source from this offset, so it must be a whole
    /// byte count that never over-reports — a float fraction rounds.
    pub fn abort_exact(&mut self, ctx: &mut Ctx<'_>, token: TransferToken) -> Option<u64> {
        let id = token.0;
        let t = self.inflight.remove(&id)?;
        let mut delivered = 0u64;
        let mut touched = Vec::new();
        for leg in &t.legs {
            delivered += leg.prior_delivered;
            if let Some(flow) = leg.flow {
                self.by_flow.remove(&flow);
                if leg.done {
                    delivered += leg.bytes;
                } else {
                    let fraction = ctx.abort_flow(flow).unwrap_or(1.0);
                    delivered += ((fraction * leg.bytes as f64).floor() as u64).min(leg.bytes);
                }
            }
            for access in [leg.src_access, leg.dst_access].into_iter().flatten() {
                let (node, a) = access;
                if let Some(rt) = self.servers.get_mut(&node) {
                    rt.storage.close(a);
                }
                touched.push(Some(node));
            }
        }
        self.refresh_caps(ctx, &touched);
        Some(delivered)
    }

    /// Abort an in-flight (or still pending) transfer — connection drop
    /// or client cancellation. All legs' flows stop, storage accesses
    /// close, peers' caps are re-evaluated, and **no log record is
    /// written** (the paper's server logs completed transfers only).
    /// Returns the byte-weighted fraction of the payload delivered
    /// (`0.0` if no data flow had started), or `None` for
    /// unknown/finished tokens.
    pub fn abort(&mut self, ctx: &mut Ctx<'_>, token: TransferToken) -> Option<f64> {
        let id = token.0;
        let t = self.inflight.remove(&id)?;
        let mut delivered = 0.0f64;
        let mut touched = Vec::new();
        for leg in &t.legs {
            let leg_fraction = match leg.flow {
                Some(flow) => {
                    self.by_flow.remove(&flow);
                    if leg.done {
                        1.0
                    } else {
                        ctx.abort_flow(flow).unwrap_or(1.0)
                    }
                }
                None => 0.0, // setup timer still pending
            };
            delivered += leg_fraction * leg.bytes as f64 + leg.prior_delivered as f64;
            for access in [leg.src_access, leg.dst_access].into_iter().flatten() {
                let (node, a) = access;
                if let Some(rt) = self.servers.get_mut(&node) {
                    rt.storage.close(a);
                }
                touched.push(Some(node));
            }
        }
        self.refresh_caps(ctx, &touched);
        if t.total_bytes == 0 {
            return Some(0.0);
        }
        Some(delivered / t.total_bytes as f64)
    }

    /// Re-evaluate the storage cap of every in-flight transfer touching
    /// the given servers.
    fn refresh_caps(&mut self, ctx: &mut Ctx<'_>, touched: &[Option<NodeId>]) {
        let touched: Vec<NodeId> = touched.iter().flatten().copied().collect();
        for t in self.inflight.values() {
            for leg in &t.legs {
                let Some(flow) = leg.flow else { continue };
                if leg.done {
                    continue;
                }
                let involves = |n: &Option<(NodeId, AccessId)>| {
                    n.map(|(node, _)| touched.contains(&node)).unwrap_or(false)
                };
                if !involves(&leg.src_access) && !involves(&leg.dst_access) {
                    continue;
                }
                let mut cap = f64::INFINITY;
                for access in [leg.src_access, leg.dst_access].into_iter().flatten() {
                    let (node, a) = access;
                    if let Some(rt) = self.servers.get(&node) {
                        cap = cap.min(rt.storage.access_cap(a).unwrap_or(f64::INFINITY));
                    }
                }
                ctx.set_external_cap(flow, cap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use wanpred_simnet::engine::{Agent, Engine};
    use wanpred_simnet::load::LoadModelConfig;
    use wanpred_simnet::network::Network;
    use wanpred_simnet::rng::MasterSeed;
    use wanpred_simnet::topology::Topology;

    fn quiet_cfg() -> LoadModelConfig {
        LoadModelConfig {
            diurnal_mean_weight: 0.0,
            walk_sigma: 0.0,
            burst_weight: 0.0,
            ..LoadModelConfig::default()
        }
    }

    /// Three-node line: client(anl) -- server(lbl), server(isi).
    fn testnet() -> (Network, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let anl = t.add_node("anl");
        let lbl = t.add_node("lbl");
        let isi = t.add_node("isi");
        let (f1, r1) = t
            .add_duplex_link("anl-lbl", anl, lbl, 12e6, SimDuration::from_millis(27))
            .unwrap();
        let (f2, r2) = t
            .add_duplex_link("anl-isi", anl, isi, 12e6, SimDuration::from_millis(31))
            .unwrap();
        t.add_route(anl, lbl, vec![f1]).unwrap();
        t.add_route(lbl, anl, vec![r1]).unwrap();
        t.add_route(anl, isi, vec![f2]).unwrap();
        t.add_route(isi, anl, vec![r2]).unwrap();
        t.add_route(lbl, isi, vec![r1, f2]).unwrap();
        t.add_route(isi, lbl, vec![r2, f1]).unwrap();
        (
            Network::with_uniform_load(t, quiet_cfg(), MasterSeed(3)),
            anl,
            lbl,
            isi,
        )
    }

    fn manager(anl: NodeId, lbl: NodeId, isi: NodeId) -> TransferManager {
        let mut m = TransferManager::new(998_000_000);
        m.add_host(anl, "pitcairn.mcs.anl.gov", "140.221.65.69");
        m.add_server(
            lbl,
            ServerConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
            StorageServer::vintage_with_paper_fileset("lbl"),
        );
        m.add_server(
            isi,
            ServerConfig::new("jet.isi.edu", "128.9.160.11"),
            StorageServer::vintage_with_paper_fileset("isi"),
        );
        m
    }

    /// Agent driving a scripted list of requests at given times.
    struct Driver {
        mgr: TransferManager,
        script: Vec<(SimDuration, TransferRequest)>,
        completed: Vec<CompletedTransfer>,
        errors: Vec<SubmitError>,
    }

    impl Agent for Driver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, (delay, _)) in self.script.iter().enumerate() {
                ctx.set_timer(*delay, i as TimerTag);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
            if self.mgr.on_timer(ctx, tag) {
                return;
            }
            let req = self.script[tag as usize].1.clone();
            if let Err(e) = self.mgr.submit(ctx, req) {
                self.errors.push(e);
            }
        }
        fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
            if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
                self.completed.push(c);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn get_req(client: NodeId, server: NodeId, path: &str) -> TransferRequest {
        TransferRequest {
            client,
            kind: TransferKind::Get {
                server,
                path: path.into(),
            },
            streams: 8,
            tcp_buffer: 1_000_000,
            partial: None,
        }
    }

    fn run(script: Vec<(SimDuration, TransferRequest)>, secs: u64) -> Driver {
        let (net, anl, lbl, isi) = testnet();
        let mgr = manager(anl, lbl, isi);
        let mut eng = Engine::new(net);
        let id = eng.add_agent(Box::new(Driver {
            mgr,
            script,
            completed: Vec::new(),
            errors: Vec::new(),
        }));
        eng.run_until(SimTime::from_secs(secs));
        let d = eng.agent_mut::<Driver>(id).unwrap();
        std::mem::replace(
            d,
            Driver {
                mgr: TransferManager::new(0),
                script: Vec::new(),
                completed: Vec::new(),
                errors: Vec::new(),
            },
        )
    }

    #[test]
    fn get_transfer_completes_and_logs() {
        let (net, anl, lbl, isi) = testnet();
        drop(net);
        let script = vec![(
            SimDuration::from_secs(1),
            get_req(anl, lbl, "/home/ftp/vazhkuda/100MB"),
        )];
        let d = run(script, 300);
        let _ = isi;
        assert_eq!(d.completed.len(), 1, "errors: {:?}", d.errors);
        let c = &d.completed[0];
        assert_eq!(c.bytes, 102_400_000);
        // 12 MB/s link, quiet: ~8.5 s + setup ~0.7 s.
        let secs = c.finished.saturating_since(c.submitted).as_secs_f64();
        assert!(secs > 8.0 && secs < 12.0, "{secs}");
        // The LBL server logged one Read record with the ANL client as
        // source.
        let log = d.mgr.server_log(lbl).unwrap();
        assert_eq!(log.len(), 1);
        let r = &log.records()[0];
        assert_eq!(r.operation, Operation::Read);
        assert_eq!(r.source, "140.221.65.69");
        assert_eq!(r.host, "dpsslx04.lbl.gov");
        assert_eq!(r.streams, 8);
        assert_eq!(r.tcp_buffer, 1_000_000);
        assert!(r.validate().is_ok(), "{:?}", r.validate());
        assert_eq!(r.start_unix, 998_000_001);
    }

    #[test]
    fn missing_file_fails_at_submit() {
        let (_, anl, lbl, _) = testnet();
        let script = vec![(
            SimDuration::from_secs(1),
            get_req(anl, lbl, "/home/ftp/nope"),
        )];
        let d = run(script, 60);
        assert!(d.completed.is_empty());
        assert_eq!(d.errors.len(), 1);
        assert!(matches!(d.errors[0], SubmitError::FileNotFound(_)));
    }

    #[test]
    fn put_registers_file_on_destination() {
        let (_, anl, lbl, _) = testnet();
        let script = vec![(
            SimDuration::from_secs(1),
            TransferRequest {
                client: anl,
                kind: TransferKind::Put {
                    server: lbl,
                    path: "/home/ftp/incoming/new".into(),
                    size: 10_000_000,
                },
                streams: 4,
                tcp_buffer: 1_000_000,
                partial: None,
            },
        )];
        let d = run(script, 120);
        assert_eq!(d.completed.len(), 1, "{:?}", d.errors);
        let storage = d.mgr.storage(lbl).unwrap();
        assert_eq!(
            storage
                .catalog()
                .lookup("/home/ftp/incoming/new")
                .unwrap()
                .size,
            10_000_000
        );
        let r = &d.mgr.server_log(lbl).unwrap().records()[0];
        assert_eq!(r.operation, Operation::Write);
    }

    #[test]
    fn third_party_logs_at_both_servers() {
        let (_, anl, lbl, isi) = testnet();
        let script = vec![(
            SimDuration::from_secs(1),
            TransferRequest {
                client: anl,
                kind: TransferKind::ThirdParty {
                    from: lbl,
                    to: isi,
                    path: "/home/ftp/vazhkuda/50MB".into(),
                },
                streams: 8,
                tcp_buffer: 1_000_000,
                partial: None,
            },
        )];
        let d = run(script, 300);
        assert_eq!(d.completed.len(), 1, "{:?}", d.errors);
        let lbl_log = d.mgr.server_log(lbl).unwrap();
        let isi_log = d.mgr.server_log(isi).unwrap();
        assert_eq!(lbl_log.len(), 1);
        assert_eq!(isi_log.len(), 1);
        assert_eq!(lbl_log.records()[0].operation, Operation::Read);
        assert_eq!(isi_log.records()[0].operation, Operation::Write);
        // Each logs the *other server* as the remote endpoint.
        assert_eq!(lbl_log.records()[0].source, "128.9.160.11");
        assert_eq!(isi_log.records()[0].source, "131.243.2.11");
        // The file materialized at ISI.
        assert!(d
            .mgr
            .storage(isi)
            .unwrap()
            .catalog()
            .lookup("/home/ftp/vazhkuda/50MB")
            .is_ok());
    }

    #[test]
    fn partial_get_moves_only_requested_bytes() {
        let (_, anl, lbl, _) = testnet();
        let mut req = get_req(anl, lbl, "/home/ftp/vazhkuda/100MB");
        req.partial = Some((100_000_000, 10_000_000));
        let script = vec![(SimDuration::from_secs(1), req)];
        let d = run(script, 120);
        assert_eq!(d.completed.len(), 1);
        // 102_400_000 - 100_000_000 = 2_400_000 bytes remain after offset.
        assert_eq!(d.completed[0].bytes, 2_400_000);
    }

    #[test]
    fn bad_partial_offset_rejected() {
        let (_, anl, lbl, _) = testnet();
        let mut req = get_req(anl, lbl, "/home/ftp/vazhkuda/10MB");
        req.partial = Some((99_999_999_999, 1));
        let d = run(vec![(SimDuration::from_secs(1), req)], 60);
        assert_eq!(d.errors, vec![SubmitError::BadOffset]);
    }

    #[test]
    fn concurrent_gets_contend_on_storage_and_link() {
        let (_, anl, lbl, _) = testnet();
        let script = vec![
            (
                SimDuration::from_secs(1),
                get_req(anl, lbl, "/home/ftp/vazhkuda/250MB"),
            ),
            (
                SimDuration::from_secs(1),
                get_req(anl, lbl, "/home/ftp/vazhkuda/400MB"),
            ),
        ];
        let d = run(script, 600);
        assert_eq!(d.completed.len(), 2, "{:?}", d.errors);
        // Two 8-stream flows share a 12 MB/s link: each well under the
        // solo rate while both active. The smaller finishes first; total
        // data 650 paper-MB at 12 MB/s aggregate is >= 55 s.
        let last = d
            .completed
            .iter()
            .map(|c| c.finished.as_secs_f64())
            .fold(0.0, f64::max);
        assert!(last > 55.0, "finished too fast: {last}");
    }

    #[test]
    fn records_are_ulm_serializable() {
        let (_, anl, lbl, _) = testnet();
        let script = vec![(
            SimDuration::from_secs(1),
            get_req(anl, lbl, "/home/ftp/vazhkuda/10MB"),
        )];
        let d = run(script, 120);
        let log = d.mgr.server_log(lbl).unwrap();
        let doc = log.to_ulm_string();
        let back = TransferLog::from_ulm_str(&doc).unwrap();
        assert_eq!(back.len(), 1);
        assert!(doc.len() < 512);
    }

    #[test]
    fn not_a_server_is_rejected() {
        let (_, anl, lbl, _) = testnet();
        let script = vec![(
            SimDuration::from_secs(1),
            get_req(anl, anl, "/home/ftp/vazhkuda/10MB"),
        )];
        let _ = lbl;
        let d = run(script, 60);
        assert!(matches!(d.errors[0], SubmitError::NotAServer(_)));
    }

    // ---- striped transfers -------------------------------------------

    fn striped_req(client: NodeId, servers: Vec<NodeId>, path: &str) -> TransferRequest {
        TransferRequest {
            client,
            kind: TransferKind::StripedGet {
                servers,
                path: path.into(),
            },
            streams: 4,
            tcp_buffer: 1_000_000,
            partial: None,
        }
    }

    #[test]
    fn striped_get_uses_both_paths_and_is_faster() {
        let (_, anl, lbl, isi) = testnet();
        // Plain get of 500MB from LBL alone...
        let plain = run(
            vec![(
                SimDuration::from_secs(1),
                get_req(anl, lbl, "/home/ftp/vazhkuda/500MB"),
            )],
            600,
        );
        // ...vs striped across LBL and ISI (two disjoint 12 MB/s paths).
        let striped = run(
            vec![(
                SimDuration::from_secs(1),
                striped_req(anl, vec![lbl, isi], "/home/ftp/vazhkuda/500MB"),
            )],
            600,
        );
        assert_eq!(striped.completed.len(), 1, "{:?}", striped.errors);
        let c = &striped.completed[0];
        assert_eq!(c.bytes, 512_000_000);
        let t_plain = plain.completed[0]
            .finished
            .saturating_since(plain.completed[0].submitted)
            .as_secs_f64();
        let t_striped = c.finished.saturating_since(c.submitted).as_secs_f64();
        assert!(
            t_striped < 0.6 * t_plain,
            "striping should nearly halve the time: {t_striped} vs {t_plain}"
        );
        // Each stripe server logged its half.
        let lbl_rec = &striped.mgr.server_log(lbl).unwrap().records()[0];
        let isi_rec = &striped.mgr.server_log(isi).unwrap().records()[0];
        assert_eq!(lbl_rec.file_size + isi_rec.file_size, 512_000_000);
        assert_eq!(lbl_rec.operation, Operation::Read);
        assert_eq!(isi_rec.operation, Operation::Read);
        assert_eq!(lbl_rec.source, "140.221.65.69");
    }

    #[test]
    fn striped_odd_bytes_split_exactly() {
        let (_, anl, lbl, isi) = testnet();
        // Partial striped get with an odd byte count.
        let mut req = striped_req(anl, vec![lbl, isi], "/home/ftp/vazhkuda/10MB");
        req.partial = Some((0, 1_000_001));
        let d = run(vec![(SimDuration::from_secs(1), req)], 120);
        assert_eq!(d.completed.len(), 1, "{:?}", d.errors);
        assert_eq!(d.completed[0].bytes, 1_000_001);
        let lbl_rec = &d.mgr.server_log(lbl).unwrap().records()[0];
        let isi_rec = &d.mgr.server_log(isi).unwrap().records()[0];
        assert_eq!(lbl_rec.file_size + isi_rec.file_size, 1_000_001);
        assert_eq!(lbl_rec.file_size.abs_diff(isi_rec.file_size), 1);
    }

    #[test]
    fn striped_requires_servers_and_matching_sizes() {
        let (_, anl, lbl, isi) = testnet();
        let d = run(
            vec![(
                SimDuration::from_secs(1),
                striped_req(anl, vec![], "/home/ftp/vazhkuda/10MB"),
            )],
            30,
        );
        assert_eq!(d.errors, vec![SubmitError::NoStripes]);

        // Single-stripe degenerates to a plain get.
        let d = run(
            vec![(
                SimDuration::from_secs(1),
                striped_req(anl, vec![lbl], "/home/ftp/vazhkuda/10MB"),
            )],
            120,
        );
        assert_eq!(d.completed.len(), 1, "{:?}", d.errors);
        assert_eq!(d.completed[0].bytes, 10_240_000);
        let _ = isi;
    }

    #[test]
    fn striped_missing_replica_rejected() {
        let (net, anl, lbl, isi) = testnet();
        drop(net);
        // Remove the file from ISI so the stripe set is inconsistent.
        let (net2, anl2, lbl2, isi2) = testnet();
        let mut mgr = manager(anl2, lbl2, isi2);
        mgr.servers
            .get_mut(&isi2)
            .unwrap()
            .storage
            .catalog_mut()
            .remove("/home/ftp/vazhkuda/10MB");
        let mut eng = Engine::new(net2);
        let id = eng.add_agent(Box::new(Driver {
            mgr,
            script: vec![(
                SimDuration::from_secs(1),
                striped_req(anl2, vec![lbl2, isi2], "/home/ftp/vazhkuda/10MB"),
            )],
            completed: Vec::new(),
            errors: Vec::new(),
        }));
        eng.run_until(SimTime::from_secs(60));
        let d = eng.agent::<Driver>(id).unwrap();
        assert!(matches!(d.errors[0], SubmitError::FileNotFound(_)));
        let _ = (anl, lbl, isi);
    }

    // ---- zero-size files (regression) ---------------------------------

    #[test]
    fn zero_size_get_offset_rejected_and_offset_zero_legal() {
        // Regression: a nonzero partial offset into a zero-size file used
        // to pass the `off >= total && total > 0` guard and wrap
        // `total - off`; it must be a 554/BadOffset.
        let (net, anl, lbl, isi) = testnet();
        let mut mgr = manager(anl, lbl, isi);
        mgr.servers
            .get_mut(&lbl)
            .unwrap()
            .storage
            .catalog_mut()
            .put_file("/home/ftp/empty", 0)
            .unwrap();
        let mut bad = get_req(anl, lbl, "/home/ftp/empty");
        bad.partial = Some((5, 10));
        let mut ok = get_req(anl, lbl, "/home/ftp/empty");
        ok.partial = Some((0, 10));
        let mut eng = Engine::new(net);
        let id = eng.add_agent(Box::new(Driver {
            mgr,
            script: vec![
                (SimDuration::from_secs(1), bad),
                (SimDuration::from_secs(2), ok),
            ],
            completed: Vec::new(),
            errors: Vec::new(),
        }));
        eng.run_until(SimTime::from_secs(60));
        let d = eng.agent::<Driver>(id).unwrap();
        assert_eq!(d.errors, vec![SubmitError::BadOffset]);
        assert_eq!(d.completed.len(), 1, "offset 0 into empty file is legal");
        assert_eq!(d.completed[0].bytes, 0);
    }

    // ---- faults and retries -------------------------------------------

    use wanpred_simnet::fault::{FaultAction, FaultSchedule, TimedFault};

    /// Driver that forwards flow failures to the manager and collects
    /// recovery events.
    struct FaultyDriver {
        mgr: TransferManager,
        script: Vec<(SimDuration, TransferRequest)>,
        completed: Vec<CompletedTransfer>,
        events: Vec<TransferEvent>,
        errors: Vec<SubmitError>,
    }

    impl FaultyDriver {
        fn drain(&mut self) {
            self.events.extend(self.mgr.take_events());
        }
    }

    impl Agent for FaultyDriver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, (delay, _)) in self.script.iter().enumerate() {
                ctx.set_timer(*delay, i as TimerTag);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
            if !self.mgr.on_timer(ctx, tag) {
                let req = self.script[tag as usize].1.clone();
                if let Err(e) = self.mgr.submit(ctx, req) {
                    self.errors.push(e);
                }
            }
            self.drain();
        }
        fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
            if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
                self.completed.push(c);
            }
            self.drain();
        }
        fn on_flow_failed(&mut self, ctx: &mut Ctx<'_>, failed: FlowFailed) {
            self.mgr.on_flow_failed(ctx, &failed);
            self.drain();
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn run_faulty(
        script: Vec<(SimDuration, TransferRequest)>,
        policy: Option<RetryPolicy>,
        faults: FaultSchedule,
        secs: u64,
    ) -> FaultyDriver {
        let (net, anl, lbl, isi) = testnet();
        let mut mgr = manager(anl, lbl, isi);
        if let Some(p) = policy {
            mgr.set_retry_policy(p);
        }
        let mut eng = Engine::new(net);
        eng.inject_faults(&faults);
        let id = eng.add_agent(Box::new(FaultyDriver {
            mgr,
            script,
            completed: Vec::new(),
            events: Vec::new(),
            errors: Vec::new(),
        }));
        eng.run_until(SimTime::from_secs(secs));
        let d = eng.agent_mut::<FaultyDriver>(id).unwrap();
        std::mem::replace(
            d,
            FaultyDriver {
                mgr: TransferManager::new(0),
                script: Vec::new(),
                completed: Vec::new(),
                events: Vec::new(),
                errors: Vec::new(),
            },
        )
    }

    /// Kill the lbl→anl data flow mid-transfer; with a retry policy the
    /// transfer resumes from the delivered offset and completes, and its
    /// `total_time_s` spans submit→final completion (backoff included).
    #[test]
    fn killed_flow_retries_resumes_and_logs_end_to_end_time() {
        let (net, anl, lbl, _) = testnet();
        let link = net.topology().route(lbl, anl).unwrap().links[0];
        let faults = FaultSchedule::from_events(vec![TimedFault {
            at: SimTime::from_secs(5),
            action: FaultAction::KillFlows(link),
        }]);
        let d = run_faulty(
            vec![(
                SimDuration::from_secs(1),
                get_req(anl, lbl, "/home/ftp/vazhkuda/100MB"),
            )],
            Some(RetryPolicy::wan_default()),
            faults,
            600,
        );
        assert_eq!(d.completed.len(), 1, "errors {:?}", d.errors);
        let c = &d.completed[0];
        assert_eq!(c.attempts, 2);
        assert_eq!(c.bytes, 102_400_000);
        assert!(d
            .events
            .iter()
            .any(|e| matches!(e, TransferEvent::RetryScheduled { attempt: 2, .. })));
        // The kill at t=5 delivered ~40 MB; with a >=3.75 s backoff and
        // re-setup, end-to-end time must exceed the clean ~9.2 s run.
        let secs = c.finished.saturating_since(c.submitted).as_secs_f64();
        assert!(secs > 12.0, "took {secs}s — no recovery time included?");
        assert!((c.record.total_time_s - secs).abs() < 0.5);
        // The server logged the whole file once, not just the resumed tail.
        let log = d.mgr.server_log(NodeId(1)).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].file_size, 102_400_000);
    }

    /// Without a retry policy, a connection reset abandons the transfer:
    /// a `Failed` event, no log record, nothing left in flight.
    #[test]
    fn killed_flow_without_policy_fails_fast() {
        let (net, anl, lbl, _) = testnet();
        let link = net.topology().route(lbl, anl).unwrap().links[0];
        let faults = FaultSchedule::from_events(vec![TimedFault {
            at: SimTime::from_secs(5),
            action: FaultAction::KillFlows(link),
        }]);
        let d = run_faulty(
            vec![(
                SimDuration::from_secs(1),
                get_req(anl, lbl, "/home/ftp/vazhkuda/100MB"),
            )],
            None,
            faults,
            600,
        );
        assert!(d.completed.is_empty());
        assert_eq!(d.mgr.inflight_count(), 0);
        assert_eq!(d.mgr.server_log(NodeId(1)).unwrap().len(), 0);
        match &d.events[..] {
            [TransferEvent::Failed {
                attempts,
                reason,
                delivered_bytes,
                ..
            }] => {
                assert_eq!(*attempts, 1);
                assert_eq!(*reason, FailureReason::ConnectionReset);
                assert!(*delivered_bytes > 0);
            }
            other => panic!("expected one Failed event, got {other:?}"),
        }
    }

    /// A striped transfer loses one stripe's flow to a fault: the whole
    /// attempt aborts (both legs torn down) and the retry re-splits the
    /// remaining bytes, completing with per-server logs that sum to the
    /// file size.
    #[test]
    fn striped_transfer_aborts_under_fault_and_recovers() {
        let (net, anl, _, isi) = testnet();
        let isi_link = net.topology().route(isi, anl).unwrap().links[0];
        let faults = FaultSchedule::from_events(vec![TimedFault {
            at: SimTime::from_secs(10),
            action: FaultAction::KillFlows(isi_link),
        }]);
        let (_, anl2, lbl2, isi2) = testnet();
        let d = run_faulty(
            vec![(
                SimDuration::from_secs(1),
                striped_req(anl2, vec![lbl2, isi2], "/home/ftp/vazhkuda/500MB"),
            )],
            Some(RetryPolicy::wan_default()),
            faults,
            900,
        );
        let _ = anl;
        assert_eq!(d.completed.len(), 1, "errors {:?}", d.errors);
        let c = &d.completed[0];
        assert_eq!(c.attempts, 2);
        assert_eq!(c.bytes, 512_000_000);
        // Both stripes' logs carry their full original share.
        let lbl_rec = &d.mgr.server_log(lbl2).unwrap().records()[0];
        let isi_rec = &d.mgr.server_log(isi2).unwrap().records()[0];
        assert_eq!(lbl_rec.file_size + isi_rec.file_size, 512_000_000);
        // During the attempt no storage access leaked.
        assert_eq!(d.mgr.storage(lbl2).unwrap().disk_population(), 0);
        assert_eq!(d.mgr.storage(isi2).unwrap().disk_population(), 0);
    }

    /// An outage stalls the only data flow; the attempt deadline expires,
    /// and the retry lands after the link recovers.
    #[test]
    fn deadline_times_out_stalled_attempt_then_recovers() {
        let (net, anl, lbl, _) = testnet();
        let link = net.topology().route(lbl, anl).unwrap().links[0];
        let faults = FaultSchedule::from_events(vec![
            TimedFault {
                at: SimTime::from_secs(3),
                action: FaultAction::LinkDown(link),
            },
            TimedFault {
                at: SimTime::from_secs(40),
                action: FaultAction::LinkUp(link),
            },
        ]);
        let policy = RetryPolicy {
            // Tight deadline so the stall is caught inside the outage.
            deadline_floor: SimDuration::from_secs(5),
            deadline_kbs: 10_000.0,
            ..RetryPolicy::wan_default()
        };
        let d = run_faulty(
            vec![(
                SimDuration::from_secs(1),
                get_req(anl, lbl, "/home/ftp/vazhkuda/100MB"),
            )],
            Some(policy),
            faults,
            600,
        );
        assert_eq!(d.completed.len(), 1, "events {:?}", d.events);
        let c = &d.completed[0];
        assert!(c.attempts >= 2, "attempts {}", c.attempts);
        assert!(
            c.finished > SimTime::from_secs(40),
            "finished {} before the link came back",
            c.finished
        );
        assert!(d.events.iter().any(|e| matches!(
            e,
            TransferEvent::RetryScheduled {
                reason: FailureReason::DeadlineExceeded,
                ..
            }
        )));
    }

    /// Retry backoff grows and is jittered deterministically.
    #[test]
    fn backoff_grows_and_is_deterministic() {
        let p = RetryPolicy::wan_default();
        let b1 = p.backoff(7, 1);
        let b2 = p.backoff(7, 2);
        let b3 = p.backoff(7, 3);
        assert_eq!(b1, p.backoff(7, 1), "same inputs, same backoff");
        // Jitter is ±25%, growth is 2x: consecutive backoffs still rank.
        assert!(b2 > b1, "{b1} !< {b2}");
        assert!(b3 > b2, "{b2} !< {b3}");
        assert_ne!(p.backoff(8, 1), b1, "different transfers decorrelate");
        // Bounded by backoff_max plus jitter headroom.
        let late = p.backoff(7, 30);
        assert!(late.as_secs_f64() <= 300.0 * 1.25);
    }

    // ---- aborts -------------------------------------------------------

    /// Driver variant that aborts its transfer at a scheduled time.
    struct Aborter {
        mgr: TransferManager,
        client: NodeId,
        server: NodeId,
        abort_at: SimDuration,
        token: Option<TransferToken>,
        progress: Option<f64>,
        completed: usize,
    }

    impl Agent for Aborter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), 1);
            ctx.set_timer(self.abort_at, 2);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
            if self.mgr.on_timer(ctx, tag) {
                return;
            }
            match tag {
                1 => {
                    self.token = self
                        .mgr
                        .submit(
                            ctx,
                            TransferRequest {
                                client: self.client,
                                kind: TransferKind::Get {
                                    server: self.server,
                                    path: "/home/ftp/vazhkuda/1GB".into(),
                                },
                                streams: 8,
                                tcp_buffer: 1_000_000,
                                partial: None,
                            },
                        )
                        .ok();
                }
                2 => {
                    if let Some(t) = self.token {
                        self.progress = self.mgr.abort(ctx, t);
                    }
                }
                _ => {}
            }
        }
        fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
            if self.mgr.on_flow_complete(ctx, &done).is_some() {
                self.completed += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn run_abort(abort_secs: u64) -> Aborter {
        let (net, anl, lbl, isi) = testnet();
        let mgr = manager(anl, lbl, isi);
        let mut eng = Engine::new(net);
        let id = eng.add_agent(Box::new(Aborter {
            mgr,
            client: anl,
            server: lbl,
            abort_at: SimDuration::from_secs(abort_secs),
            token: None,
            progress: None,
            completed: 0,
        }));
        eng.run_until(SimTime::from_secs(600));
        let a = eng.agent_mut::<Aborter>(id).unwrap();
        std::mem::replace(
            a,
            Aborter {
                mgr: TransferManager::new(0),
                client: anl,
                server: lbl,
                abort_at: SimDuration::ZERO,
                token: None,
                progress: None,
                completed: 0,
            },
        )
    }

    #[test]
    fn abort_mid_flight_releases_storage_and_logs_nothing() {
        // 1 GB at ~12 MB/s takes ~86 s; abort at t=30 is mid-flight.
        let a = run_abort(30);
        let p = a.progress.expect("abort found the transfer");
        assert!(p > 0.05 && p < 0.95, "progress {p}");
        assert_eq!(a.completed, 0);
        assert_eq!(a.mgr.inflight_count(), 0);
        let storage = a.mgr.storage(NodeId(1)).unwrap();
        assert_eq!(storage.disk_population(), 0, "read access released");
        assert_eq!(a.mgr.server_log(NodeId(1)).unwrap().len(), 0);
    }

    #[test]
    fn abort_during_setup_reports_zero_progress() {
        // Setup takes ~0.7 s; abort fires just after submit at t=1.001.
        let (net, anl, lbl, isi) = testnet();
        let mgr = manager(anl, lbl, isi);
        let mut eng = Engine::new(net);
        let id = eng.add_agent(Box::new(Aborter {
            mgr,
            client: anl,
            server: lbl,
            abort_at: SimDuration::from_millis(1_001),
            token: None,
            progress: None,
            completed: 0,
        }));
        eng.run_until(SimTime::from_secs(600));
        let a = eng.agent::<Aborter>(id).unwrap();
        assert_eq!(a.progress, Some(0.0));
        assert_eq!(a.completed, 0, "stale setup timer must not start a flow");
        let _ = isi;
    }

    #[test]
    fn abort_of_finished_transfer_is_none() {
        // Abort long after the ~87 s transfer finished.
        let a = run_abort(500);
        assert_eq!(a.progress, None);
        assert_eq!(a.completed, 1);
        assert_eq!(a.mgr.server_log(NodeId(1)).unwrap().len(), 1);
    }

    #[test]
    fn stripe_shares_cover_edges() {
        assert_eq!(stripe_shares(0, 3), vec![0, 0, 0]);
        assert_eq!(stripe_shares(2, 3), vec![1, 1, 0]);
        assert_eq!(stripe_shares(10, 3), vec![4, 3, 3]);
        assert_eq!(stripe_shares(9, 1), vec![9]);
        // Shares laid end to end tile [0, bytes): the last offset plus
        // the last share lands exactly on the file size.
        let shares = stripe_shares(102_400_000, 7);
        assert_eq!(shares.iter().sum::<u64>(), 102_400_000);
    }

    /// A mid-flight progress sample equals what an exact abort banks at
    /// the same instant, and resuming the remainder as a partial GET
    /// from the other server moves exactly `total - delivered` bytes —
    /// the zero-re-fetch contract the co-allocator builds on.
    #[test]
    fn progress_sample_matches_exact_abort_and_resume_tiles() {
        const TOTAL: u64 = 102_400_000; // the 100MB paper file

        struct Sampler {
            mgr: TransferManager,
            anl: NodeId,
            lbl: NodeId,
            isi: NodeId,
            token: Option<TransferToken>,
            sampled: Option<u64>,
            banked: Option<u64>,
            completed: Vec<CompletedTransfer>,
        }
        impl Agent for Sampler {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
                ctx.set_timer(SimDuration::from_secs(5), 1);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
                if self.mgr.on_timer(ctx, tag) {
                    return;
                }
                if tag == 0 {
                    let req = get_req(self.anl, self.lbl, "/home/ftp/vazhkuda/100MB");
                    self.token = Some(self.mgr.submit(ctx, req).expect("submit"));
                } else {
                    let token = self.token.expect("submitted at t=1");
                    self.sampled = self.mgr.progress(ctx, token);
                    self.banked = self.mgr.abort_exact(ctx, token);
                    let delivered = self.banked.expect("mid-flight");
                    let mut req = get_req(self.anl, self.isi, "/home/ftp/vazhkuda/100MB");
                    req.partial = Some((delivered, TOTAL - delivered));
                    self.mgr.submit(ctx, req).expect("resume submit");
                }
            }
            fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
                if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
                    self.completed.push(c);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (net, anl, lbl, isi) = testnet();
        let mgr = manager(anl, lbl, isi);
        let mut eng = Engine::new(net);
        let id = eng.add_agent(Box::new(Sampler {
            mgr,
            anl,
            lbl,
            isi,
            token: None,
            sampled: None,
            banked: None,
            completed: Vec::new(),
        }));
        eng.run_until(SimTime::from_secs(300));
        let s = eng.agent::<Sampler>(id).unwrap();
        let sampled = s.sampled.expect("progress saw the transfer");
        let banked = s.banked.expect("abort_exact saw the transfer");
        // Same integration instant, same floor: identical byte counts.
        assert_eq!(sampled, banked);
        assert!(banked > 0 && banked < TOTAL, "mid-flight: {banked}");
        // Only the resumed remainder completed, and it tiles the file
        // exactly: delivered + remainder == TOTAL, nothing re-fetched.
        assert_eq!(s.completed.len(), 1);
        assert_eq!(s.completed[0].bytes, TOTAL - banked);
        // Sampling an unknown token is None, not a panic.
        assert!(s.mgr.inflight_count() == 0);
    }
}
