//! # wanpred-gridftp
//!
//! A GridFTP-like high-performance transfer service over the `wanpred`
//! simulator, instrumented exactly as the paper's modified Globus server
//! (§3): every transfer — `GET`, `PUT`, partial, or third-party — emits a
//! ULM log record carrying the Figure 3 fields, with the end-to-end
//! bandwidth defined as `file size / transfer time` over the whole
//! operation (control setup, storage, and wire time included).
//!
//! * [`protocol`] — the control-channel command subset (AUTH/USER/PASS,
//!   TYPE/MODE, SBUF, OPTS Parallelism, PASV/SPAS/PORT/SPOR, REST,
//!   RETR/STOR/ERET, SIZE, QUIT) with parser and formatter.
//! * [`server`] — the session state machine that negotiates transfers
//!   against a [`wanpred_storage::StorageServer`] catalog.
//! * [`client`] — the client module (§3): higher-level get/put/partial
//!   operations driving a session through the canonical sequences.
//! * [`transfer`] — the [`transfer::TransferManager`] executing transfers
//!   as simulated flows: control-setup latency, parallel streams, TCP
//!   buffer limits, storage-contention caps, and per-server transfer
//!   logs.
//! * [`instrument`] — the paper's logging-overhead claims (≈25 ms/record,
//!   < 512 bytes/entry) and a measurement helper proving our pipeline
//!   sits far inside them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod instrument;
pub mod protocol;
pub mod server;
pub mod transfer;

pub use client::{ClientError, ClientSettings, Exchange, GridFtpClient};
pub use instrument::{
    measure_logging_cost, modeled_logging_cost, LoggingCost, PAPER_LOGGING_OVERHEAD_MS,
};
pub use protocol::{parse, Command, ParseError, Reply};
pub use server::{ServerConfig, Session, TransferPlan, DEFAULT_TCP_BUFFER};
pub use transfer::{
    owns_tag, stripe_shares, CompletedTransfer, FailureReason, RetryPolicy, SubmitError,
    TransferEvent, TransferKind, TransferManager, TransferRequest, TransferToken, TAG_BASE,
};
