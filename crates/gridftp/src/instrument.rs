//! Instrumentation utilities and the paper's overhead claims.
//!
//! The paper's §3 measures the entire logging process — gathering the
//! transfer metadata, formatting the ULM entry and writing it — at about
//! **25 ms per transfer** on 2001 hardware, insignificant next to
//! multi-second transfers. This module exposes that budget as a constant
//! plus a measurement helper the `logging_overhead` bench uses to show
//! our implementation sits far inside it.

use std::time::Instant;

use wanpred_logfmt::{encode, TransferLog, TransferRecord};

/// The paper's measured logging overhead per transfer (milliseconds).
pub const PAPER_LOGGING_OVERHEAD_MS: f64 = 25.0;

/// The paper's bound on a single log entry's size (bytes).
pub const PAPER_MAX_ENTRY_BYTES: usize = 512;

/// Result of measuring the local logging pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoggingCost {
    /// Mean wall time per record, milliseconds.
    pub mean_ms: f64,
    /// Size of the encoded entry, bytes.
    pub entry_bytes: usize,
    /// Records processed.
    pub iterations: usize,
}

/// Measure the cost of the full logging path (encode to ULM + append to
/// an in-memory log) for `iterations` repetitions of `record`.
pub fn measure_logging_cost(record: &TransferRecord, iterations: usize) -> LoggingCost {
    assert!(iterations > 0);
    let entry_bytes = encode(record).len();
    let mut log = TransferLog::new();
    let start = Instant::now();
    for _ in 0..iterations {
        let line = encode(record);
        // Parsing on append mirrors a reader-validated pipeline; real
        // servers write the line out, which is O(len) just the same.
        std::hint::black_box(&line);
        log.append(record.clone());
    }
    let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
    LoggingCost {
        mean_ms: elapsed / iterations as f64,
        entry_bytes,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_logfmt::sample_record;

    #[test]
    fn logging_is_far_cheaper_than_papers_budget() {
        let cost = measure_logging_cost(&sample_record(), 1_000);
        assert!(
            cost.mean_ms < PAPER_LOGGING_OVERHEAD_MS,
            "mean {} ms exceeds the paper's 25 ms",
            cost.mean_ms
        );
    }

    #[test]
    fn entry_respects_size_bound() {
        let cost = measure_logging_cost(&sample_record(), 1);
        assert!(cost.entry_bytes < PAPER_MAX_ENTRY_BYTES);
    }
}
