//! Deterministic logging-overhead accounting for the paper's §3 claims.
//!
//! The paper measures the entire logging process — gathering the transfer
//! metadata, formatting the ULM entry and writing it — at about **25 ms
//! per transfer** on 2001 hardware, insignificant next to multi-second
//! transfers, and bounds each entry at 512 bytes. An earlier version of
//! this module timed the real encode path with `Instant::now`, the one
//! wall-clock dependence left on the simulation path; instrumented
//! overheads now come from a *modeled* cost function of the encoded entry
//! instead, so every number a campaign produces is reproducible from its
//! master seed alone. Real-hardware timing lives in the
//! `logging_overhead` bench, where wall clocks belong.

use wanpred_logfmt::{encode, TransferRecord};
use wanpred_simnet::time::SimDuration;

/// The paper's measured logging overhead per transfer (milliseconds).
pub const PAPER_LOGGING_OVERHEAD_MS: f64 = 25.0;

/// The paper's bound on a single log entry's size (bytes).
pub const PAPER_MAX_ENTRY_BYTES: usize = 512;

/// Modeled fixed cost of producing one log record — metadata gathering,
/// buffer setup, write-path floor — in microseconds. Calibrated generous
/// for 2001-era hardware yet far inside the paper's 25 ms budget.
pub const MODELED_BASE_COST_US: u64 = 500;

/// Modeled marginal cost per encoded byte (format + copy + flush), in
/// nanoseconds.
pub const MODELED_PER_BYTE_NS: u64 = 250;

/// Per-transfer logging cost, expressed against the paper's budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoggingCost {
    /// Modeled time per record, milliseconds.
    pub mean_ms: f64,
    /// Size of the encoded entry, bytes.
    pub entry_bytes: usize,
    /// Records accounted.
    pub iterations: usize,
}

/// Modeled cost of logging `record` once, on the simulation clock.
///
/// Deterministic by construction: the cost is a pure function of the
/// encoded entry, so identical seeds yield identical instrumented
/// overheads no matter where or when the simulation runs.
pub fn modeled_logging_cost(record: &TransferRecord) -> SimDuration {
    let bytes = encode(record).len() as u64;
    SimDuration::from_micros(MODELED_BASE_COST_US + bytes * MODELED_PER_BYTE_NS / 1_000)
}

/// Account the logging cost of `iterations` repetitions of `record`.
///
/// The per-record cost comes from [`modeled_logging_cost`]; `iterations`
/// is retained so call sites can still express "a campaign's worth of
/// records" when comparing totals against the paper's budget.
pub fn measure_logging_cost(record: &TransferRecord, iterations: usize) -> LoggingCost {
    assert!(iterations > 0);
    LoggingCost {
        mean_ms: modeled_logging_cost(record).as_secs_f64() * 1_000.0,
        entry_bytes: encode(record).len(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_logfmt::sample_record;

    #[test]
    fn logging_is_far_cheaper_than_papers_budget() {
        let cost = measure_logging_cost(&sample_record(), 1_000);
        assert!(
            cost.mean_ms < PAPER_LOGGING_OVERHEAD_MS,
            "mean {} ms exceeds the paper's 25 ms",
            cost.mean_ms
        );
    }

    #[test]
    fn entry_respects_size_bound() {
        let cost = measure_logging_cost(&sample_record(), 1);
        assert!(cost.entry_bytes < PAPER_MAX_ENTRY_BYTES);
    }

    #[test]
    fn modeled_cost_is_deterministic_and_size_monotone() {
        let r = sample_record();
        assert_eq!(modeled_logging_cost(&r), modeled_logging_cost(&r));

        let mut long = sample_record();
        long.file_name = format!("{}/{}", long.file_name, "x".repeat(100));
        assert!(modeled_logging_cost(&long) > modeled_logging_cost(&r));
    }

    #[test]
    fn worst_case_entry_stays_inside_budget() {
        // Even a maximal 512-byte entry models out well under 25 ms.
        let worst_us =
            MODELED_BASE_COST_US + (PAPER_MAX_ENTRY_BYTES as u64) * MODELED_PER_BYTE_NS / 1_000;
        assert!((worst_us as f64) / 1_000.0 < PAPER_LOGGING_OVERHEAD_MS);
    }
}
