//! The GridFTP server's control-channel session state machine.
//!
//! A [`Session`] consumes [`Command`]s and produces [`Reply`]s, enforcing
//! authentication, negotiating transfer settings (type/mode, TCP buffer,
//! parallelism, data channels, restart markers) and turning `RETR`/`STOR`
//! /`ERET` into [`TransferPlan`]s that the transfer manager executes over
//! the simulated network.

use serde::{Deserialize, Serialize};
use wanpred_logfmt::Operation;
use wanpred_storage::StorageServer;

use crate::protocol::{Command, Reply};

/// Static configuration of one GridFTP server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Server host name, e.g. `dpsslx04.lbl.gov`.
    pub host: String,
    /// Server address as logged in `SRC` fields of its peers.
    pub address: String,
    /// Control port (GridFTP convention: 2811).
    pub port: u16,
    /// Extra one-time latency charged for the (simulated) GSI handshake.
    pub auth_delay_ms: u64,
    /// Number of control-channel round trips consumed by transfer set-up
    /// (TYPE/MODE/SBUF/OPTS/PASV/RETR exchange).
    pub setup_round_trips: u32,
    /// Instrumentation overhead per transfer (the paper measures ≈25 ms).
    pub logging_overhead_ms: u64,
}

impl ServerConfig {
    /// Defaults matching the paper's testbed servers.
    pub fn new(host: impl Into<String>, address: impl Into<String>) -> Self {
        ServerConfig {
            host: host.into(),
            address: address.into(),
            port: 2811,
            auth_delay_ms: 350,
            setup_round_trips: 6,
            logging_overhead_ms: 25,
        }
    }
}

/// Session authentication state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AuthState {
    Fresh,
    AuthRequested,
    UserGiven,
    Authenticated,
}

/// Negotiated data-channel layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelMode {
    /// No data channel negotiated yet.
    None,
    /// Single passive channel.
    Passive,
    /// Striped passive (parallel) channels.
    StripedPassive,
    /// Active (client-specified address).
    Active,
    /// Striped active.
    StripedActive,
}

/// A fully negotiated transfer, ready for execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferPlan {
    /// File path on this server.
    pub path: String,
    /// Direction from this server's viewpoint.
    pub operation: Operation,
    /// Bytes to move (after partial-transfer clamping).
    pub bytes: u64,
    /// Byte offset of a partial transfer (0 for whole files).
    pub offset: u64,
    /// Parallel stream count.
    pub streams: u32,
    /// Per-stream TCP buffer size in bytes.
    pub tcp_buffer: u64,
    /// The file's logical volume.
    pub volume: String,
}

/// One control-channel session.
#[derive(Debug)]
pub struct Session {
    auth: AuthState,
    mode: char,
    ty: char,
    tcp_buffer: u64,
    streams: u32,
    channels: ChannelMode,
    rest_offset: u64,
    closed: bool,
}

/// Default per-stream TCP buffer if no `SBUF` is issued (untuned 16 KB,
/// as 2001 kernels shipped).
pub const DEFAULT_TCP_BUFFER: u64 = 16 * 1024;

impl Default for Session {
    fn default() -> Self {
        Session {
            auth: AuthState::Fresh,
            mode: 'S',
            ty: 'A',
            tcp_buffer: DEFAULT_TCP_BUFFER,
            streams: 1,
            channels: ChannelMode::None,
            rest_offset: 0,
            closed: false,
        }
    }
}

impl Session {
    /// A fresh, unauthenticated session.
    pub fn new() -> Self {
        Session::default()
    }

    /// Whether `QUIT` has been processed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Whether authentication completed.
    pub fn is_authenticated(&self) -> bool {
        self.auth == AuthState::Authenticated
    }

    /// Negotiated stream count.
    pub fn streams(&self) -> u32 {
        self.streams
    }

    /// Negotiated per-stream buffer.
    pub fn tcp_buffer(&self) -> u64 {
        self.tcp_buffer
    }

    /// Process one command against the server's storage; returns the
    /// reply and, for `RETR`/`STOR`/`ERET`, the transfer plan.
    pub fn handle(
        &mut self,
        cmd: &Command,
        storage: &StorageServer,
    ) -> (Reply, Option<TransferPlan>) {
        if self.closed {
            return (Reply::new(421, "Session closed"), None);
        }
        match cmd {
            Command::AuthGssapi => {
                self.auth = AuthState::AuthRequested;
                (Reply::new(334, "Using authentication type GSSAPI"), None)
            }
            Command::User(_) => match self.auth {
                AuthState::AuthRequested | AuthState::UserGiven => {
                    self.auth = AuthState::UserGiven;
                    (Reply::new(331, "Password required"), None)
                }
                _ => (Reply::new(530, "AUTH first"), None),
            },
            Command::Pass(_) => match self.auth {
                AuthState::UserGiven => {
                    self.auth = AuthState::Authenticated;
                    (Reply::new(230, "User logged in"), None)
                }
                _ => (Reply::new(503, "Bad sequence of commands"), None),
            },
            _ if !self.is_authenticated() => {
                (Reply::new(530, "Please login with AUTH/USER/PASS"), None)
            }
            Command::Type(c) => {
                if *c == 'I' {
                    self.ty = 'I';
                    (Reply::new(200, "Type set to I"), None)
                } else {
                    (Reply::new(504, "Only type I supported"), None)
                }
            }
            Command::Mode(c) => {
                if *c == 'S' || *c == 'E' {
                    self.mode = *c;
                    (Reply::new(200, format!("Mode set to {c}")), None)
                } else {
                    (Reply::new(504, "Only modes S and E supported"), None)
                }
            }
            Command::Sbuf(n) => {
                if *n == 0 {
                    (Reply::new(500, "Buffer must be positive"), None)
                } else {
                    self.tcp_buffer = *n;
                    (Reply::new(200, "Buffer size set"), None)
                }
            }
            Command::OptsParallelism(n) => {
                if self.mode != 'E' {
                    (Reply::new(536, "Parallelism requires MODE E"), None)
                } else {
                    self.streams = *n;
                    (Reply::new(200, "Parallelism set"), None)
                }
            }
            Command::Pasv => {
                self.channels = ChannelMode::Passive;
                (Reply::new(227, "Entering Passive Mode (0,0,0,0,0,0)"), None)
            }
            Command::Spas => {
                self.channels = ChannelMode::StripedPassive;
                (Reply::new(229, "Entering Striped Passive Mode"), None)
            }
            Command::Port(_) => {
                self.channels = ChannelMode::Active;
                (Reply::new(200, "PORT command successful"), None)
            }
            Command::Spor(_) => {
                self.channels = ChannelMode::StripedActive;
                (Reply::new(200, "SPOR command successful"), None)
            }
            Command::Rest(o) => {
                self.rest_offset = *o;
                (Reply::new(350, "Restart marker accepted"), None)
            }
            Command::Size(path) => match storage.catalog().lookup(path) {
                Ok(e) => (Reply::new(213, e.size.to_string()), None),
                Err(_) => (Reply::new(550, "No such file"), None),
            },
            Command::Retr(path) => self.plan_retrieve(path, None, storage),
            Command::EretPartial(off, len, path) => {
                self.plan_retrieve(path, Some((*off, *len)), storage)
            }
            Command::Stor(path) => {
                if self.channels == ChannelMode::None {
                    return (Reply::new(425, "Use PASV/SPAS first"), None);
                }
                if storage.catalog().volume_of(path).is_none() {
                    return (Reply::new(553, "Path outside any volume"), None);
                }
                let plan = TransferPlan {
                    path: path.clone(),
                    operation: Operation::Write,
                    bytes: 0, // filled in by the client side, which knows the size
                    offset: self.take_rest(),
                    streams: self.effective_streams(),
                    tcp_buffer: self.tcp_buffer,
                    volume: storage
                        .catalog()
                        .volume_of(path)
                        .expect("checked above")
                        .mount
                        .clone(),
                };
                (Reply::new(150, "Opening data connection"), Some(plan))
            }
            Command::Quit => {
                self.closed = true;
                (Reply::new(221, "Goodbye"), None)
            }
        }
    }

    fn plan_retrieve(
        &mut self,
        path: &str,
        partial: Option<(u64, u64)>,
        storage: &StorageServer,
    ) -> (Reply, Option<TransferPlan>) {
        if self.channels == ChannelMode::None {
            return (Reply::new(425, "Use PASV/SPAS first"), None);
        }
        let entry = match storage.catalog().lookup(path) {
            Ok(e) => e,
            Err(_) => return (Reply::new(550, "No such file"), None),
        };
        // Any nonzero offset at or past EOF is a 554 — the `off > 0`
        // half matters for zero-size files, where an unchecked offset
        // would wrap `entry.size - off`. Offset 0 into an empty file is
        // a legal zero-byte retrieve.
        let (offset, bytes) = match partial {
            Some((off, len)) => {
                if off > 0 && off >= entry.size {
                    return (Reply::new(554, "Offset beyond end of file"), None);
                }
                (off, len.min(entry.size - off))
            }
            None => {
                let off = self.take_rest();
                if off > 0 && off >= entry.size {
                    return (Reply::new(554, "Restart beyond end of file"), None);
                }
                (off, entry.size - off)
            }
        };
        let plan = TransferPlan {
            path: path.to_string(),
            operation: Operation::Read,
            bytes,
            offset,
            streams: self.effective_streams(),
            tcp_buffer: self.tcp_buffer,
            volume: storage
                .catalog()
                .volume_of(path)
                .map(|v| v.mount.clone())
                .unwrap_or_default(),
        };
        (Reply::new(150, "Opening data connection"), Some(plan))
    }

    /// Streams actually usable: parallelism needs striped channels or
    /// extended mode; stream mode forces one channel.
    fn effective_streams(&self) -> u32 {
        if self.mode == 'E' {
            self.streams
        } else {
            1
        }
    }

    fn take_rest(&mut self) -> u64 {
        std::mem::take(&mut self.rest_offset)
    }
}

/// Run the canonical authentication + tuning preamble on a session,
/// returning the replies (helper for clients and tests).
pub fn standard_preamble(
    session: &mut Session,
    storage: &StorageServer,
    buffer: u64,
    streams: u32,
) -> Vec<Reply> {
    let cmds = [
        Command::AuthGssapi,
        Command::User(":globus-mapping:".into()),
        Command::Pass("".into()),
        Command::Type('I'),
        Command::Mode('E'),
        Command::Sbuf(buffer),
        Command::OptsParallelism(streams),
        Command::Spas,
    ];
    cmds.iter().map(|c| session.handle(c, storage).0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_storage::StorageServer;

    fn storage() -> StorageServer {
        StorageServer::vintage_with_paper_fileset("lbl")
    }

    fn authed_session(storage: &StorageServer) -> Session {
        let mut s = Session::new();
        let replies = standard_preamble(&mut s, storage, 1_000_000, 8);
        assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
        s
    }

    #[test]
    fn auth_sequence_enforced() {
        let st = storage();
        let mut s = Session::new();
        // Commands before auth are rejected.
        let (r, _) = s.handle(&Command::Retr("/home/ftp/vazhkuda/10MB".into()), &st);
        assert_eq!(r.code, 530);
        // PASS before USER is a bad sequence.
        let (r, _) = s.handle(&Command::AuthGssapi, &st);
        assert_eq!(r.code, 334);
        let (r, _) = s.handle(&Command::Pass("x".into()), &st);
        assert_eq!(r.code, 503);
        let (r, _) = s.handle(&Command::User("u".into()), &st);
        assert_eq!(r.code, 331);
        let (r, _) = s.handle(&Command::Pass("x".into()), &st);
        assert_eq!(r.code, 230);
        assert!(s.is_authenticated());
    }

    #[test]
    fn retr_produces_plan_with_negotiated_settings() {
        let st = storage();
        let mut s = authed_session(&st);
        let (r, plan) = s.handle(&Command::Retr("/home/ftp/vazhkuda/100MB".into()), &st);
        assert_eq!(r.code, 150);
        let plan = plan.unwrap();
        assert_eq!(plan.bytes, 102_400_000);
        assert_eq!(plan.streams, 8);
        assert_eq!(plan.tcp_buffer, 1_000_000);
        assert_eq!(plan.operation, Operation::Read);
        assert_eq!(plan.volume, "/home/ftp");
        assert_eq!(plan.offset, 0);
    }

    #[test]
    fn retr_missing_file_is_550() {
        let st = storage();
        let mut s = authed_session(&st);
        let (r, plan) = s.handle(&Command::Retr("/home/ftp/nope".into()), &st);
        assert_eq!(r.code, 550);
        assert!(plan.is_none());
    }

    #[test]
    fn retr_without_data_channel_is_425() {
        let st = storage();
        let mut s = Session::new();
        s.handle(&Command::AuthGssapi, &st);
        s.handle(&Command::User("u".into()), &st);
        s.handle(&Command::Pass("".into()), &st);
        let (r, _) = s.handle(&Command::Retr("/home/ftp/vazhkuda/10MB".into()), &st);
        assert_eq!(r.code, 425);
    }

    #[test]
    fn parallelism_requires_mode_e() {
        let st = storage();
        let mut s = Session::new();
        s.handle(&Command::AuthGssapi, &st);
        s.handle(&Command::User("u".into()), &st);
        s.handle(&Command::Pass("".into()), &st);
        let (r, _) = s.handle(&Command::OptsParallelism(8), &st);
        assert_eq!(r.code, 536);
        s.handle(&Command::Mode('E'), &st);
        let (r, _) = s.handle(&Command::OptsParallelism(8), &st);
        assert_eq!(r.code, 200);
    }

    #[test]
    fn stream_mode_forces_single_stream() {
        let st = storage();
        let mut s = authed_session(&st);
        s.handle(&Command::Mode('S'), &st);
        let (_, plan) = s.handle(&Command::Retr("/home/ftp/vazhkuda/10MB".into()), &st);
        assert_eq!(plan.unwrap().streams, 1);
    }

    #[test]
    fn rest_offsets_shrink_transfer_and_reset() {
        let st = storage();
        let mut s = authed_session(&st);
        let (r, _) = s.handle(&Command::Rest(10_000_000), &st);
        assert_eq!(r.code, 350);
        let (_, plan) = s.handle(&Command::Retr("/home/ftp/vazhkuda/100MB".into()), &st);
        let plan = plan.unwrap();
        assert_eq!(plan.offset, 10_000_000);
        assert_eq!(plan.bytes, 92_400_000);
        // Marker consumed: the next transfer is whole-file again.
        let (_, plan2) = s.handle(&Command::Retr("/home/ftp/vazhkuda/100MB".into()), &st);
        assert_eq!(plan2.unwrap().offset, 0);
    }

    #[test]
    fn eret_partial_clamps_length() {
        let st = storage();
        let mut s = authed_session(&st);
        let (_, plan) = s.handle(
            &Command::EretPartial(10_230_000, 999_999, "/home/ftp/vazhkuda/10MB".into()),
            &st,
        );
        assert_eq!(plan.unwrap().bytes, 10_000);
        let (r, _) = s.handle(
            &Command::EretPartial(99_999_999_999, 1, "/home/ftp/vazhkuda/10MB".into()),
            &st,
        );
        assert_eq!(r.code, 554);
    }

    /// Regression: a REST or ERET offset into a zero-size file used to
    /// evade the 554 guard (`off >= size && size > 0`) and underflow
    /// `entry.size - off`; it must reply 554. Offset 0 stays legal.
    #[test]
    fn zero_size_file_rest_and_eret_offsets() {
        let mut st = storage();
        st.catalog_mut().put_file("/home/ftp/empty", 0).unwrap();
        let mut s = authed_session(&st);

        // RETR of the empty file: a legal zero-byte plan.
        let (r, plan) = s.handle(&Command::Retr("/home/ftp/empty".into()), &st);
        assert_eq!(r.code, 150);
        assert_eq!(plan.unwrap().bytes, 0);

        // REST 1 into the empty file: 554, not an underflowed plan.
        let (r, _) = s.handle(&Command::Rest(1), &st);
        assert_eq!(r.code, 350);
        let (r, plan) = s.handle(&Command::Retr("/home/ftp/empty".into()), &st);
        assert_eq!(r.code, 554, "plan: {plan:?}");
        assert!(plan.is_none());

        // ERET with nonzero offset: same 554.
        let (r, plan) = s.handle(&Command::EretPartial(1, 10, "/home/ftp/empty".into()), &st);
        assert_eq!(r.code, 554, "plan: {plan:?}");
        assert!(plan.is_none());

        // ERET at offset 0 of the empty file: zero-byte plan, no error.
        let (r, plan) = s.handle(&Command::EretPartial(0, 10, "/home/ftp/empty".into()), &st);
        assert_eq!(r.code, 150);
        assert_eq!(plan.unwrap().bytes, 0);
    }

    #[test]
    fn stor_plans_write_into_volume() {
        let st = storage();
        let mut s = authed_session(&st);
        let (r, plan) = s.handle(&Command::Stor("/home/ftp/incoming/new".into()), &st);
        assert_eq!(r.code, 150);
        let plan = plan.unwrap();
        assert_eq!(plan.operation, Operation::Write);
        let (r, _) = s.handle(&Command::Stor("/etc/shadow".into()), &st);
        assert_eq!(r.code, 553);
    }

    #[test]
    fn size_query() {
        let st = storage();
        let mut s = authed_session(&st);
        let (r, _) = s.handle(&Command::Size("/home/ftp/vazhkuda/1GB".into()), &st);
        assert_eq!(r.code, 213);
        assert_eq!(r.text, "1024000000");
    }

    #[test]
    fn quit_closes_session() {
        let st = storage();
        let mut s = authed_session(&st);
        let (r, _) = s.handle(&Command::Quit, &st);
        assert_eq!(r.code, 221);
        assert!(s.is_closed());
        let (r, _) = s.handle(&Command::Pasv, &st);
        assert_eq!(r.code, 421);
    }

    #[test]
    fn type_a_rejected() {
        let st = storage();
        let mut s = authed_session(&st);
        let (r, _) = s.handle(&Command::Type('A'), &st);
        assert_eq!(r.code, 504);
    }
}
