//! The GridFTP client module (§3): higher-level get/put operations that
//! drive a control-channel [`Session`] through the canonical command
//! sequences and return the negotiated plan plus the full exchange
//! transcript.
//!
//! The client exists so examples and tests exercise the *protocol* path
//! the way real tools (`globus-url-copy`) do; the simulation's transfer
//! manager consumes the resulting [`TransferPlan`] parameters.

use wanpred_storage::StorageServer;

use crate::protocol::{format, Command, Reply};
use crate::server::{Session, TransferPlan};

/// Client-side transfer settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSettings {
    /// Parallel data streams to request.
    pub streams: u32,
    /// Per-stream TCP buffer to request (bytes).
    pub tcp_buffer: u64,
}

impl ClientSettings {
    /// The paper's tuned settings: 8 streams, 1 MB buffers.
    pub fn paper_tuned() -> Self {
        ClientSettings {
            streams: 8,
            tcp_buffer: 1_000_000,
        }
    }
}

/// One command/reply exchange in a session transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct Exchange {
    /// The command as sent on the wire.
    pub command: String,
    /// The server's reply.
    pub reply: Reply,
}

/// Errors from a client operation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The server rejected a command; the transcript shows where.
    Rejected {
        /// The failing command.
        command: String,
        /// The server's negative reply.
        reply: Reply,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected { command, reply } => {
                write!(f, "server rejected {command:?}: {reply}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A protocol-level GridFTP client bound to one server session.
pub struct GridFtpClient {
    session: Session,
    settings: ClientSettings,
    transcript: Vec<Exchange>,
    authenticated: bool,
    tuned: bool,
}

impl GridFtpClient {
    /// New client with the given settings.
    pub fn new(settings: ClientSettings) -> Self {
        GridFtpClient {
            session: Session::new(),
            settings,
            transcript: Vec::new(),
            authenticated: false,
            tuned: false,
        }
    }

    /// The full command/reply transcript so far.
    pub fn transcript(&self) -> &[Exchange] {
        &self.transcript
    }

    fn send(
        &mut self,
        cmd: Command,
        storage: &StorageServer,
    ) -> Result<(Reply, Option<TransferPlan>), ClientError> {
        let wire = format(&cmd);
        let (reply, plan) = self.session.handle(&cmd, storage);
        self.transcript.push(Exchange {
            command: wire.clone(),
            reply: reply.clone(),
        });
        if !reply.is_ok() {
            return Err(ClientError::Rejected {
                command: wire,
                reply,
            });
        }
        Ok((reply, plan))
    }

    /// Authenticate (simulated GSI) if not already done.
    pub fn ensure_authenticated(&mut self, storage: &StorageServer) -> Result<(), ClientError> {
        if self.authenticated {
            return Ok(());
        }
        self.send(Command::AuthGssapi, storage)?;
        self.send(Command::User(":globus-mapping:".into()), storage)?;
        self.send(Command::Pass(String::new()), storage)?;
        self.authenticated = true;
        Ok(())
    }

    /// Negotiate type/mode/buffer/parallelism/data channels once.
    pub fn ensure_tuned(&mut self, storage: &StorageServer) -> Result<(), ClientError> {
        self.ensure_authenticated(storage)?;
        if self.tuned {
            return Ok(());
        }
        self.send(Command::Type('I'), storage)?;
        self.send(Command::Mode('E'), storage)?;
        self.send(Command::Sbuf(self.settings.tcp_buffer), storage)?;
        self.send(Command::OptsParallelism(self.settings.streams), storage)?;
        self.send(Command::Spas, storage)?;
        self.tuned = true;
        Ok(())
    }

    /// Query a file's size (`SIZE`).
    pub fn size(&mut self, path: &str, storage: &StorageServer) -> Result<u64, ClientError> {
        self.ensure_authenticated(storage)?;
        let (reply, _) = self.send(Command::Size(path.into()), storage)?;
        Ok(reply.text.trim().parse().unwrap_or(0))
    }

    /// Negotiate a whole-file retrieval; returns the plan the transfer
    /// manager executes.
    pub fn get(
        &mut self,
        path: &str,
        storage: &StorageServer,
    ) -> Result<TransferPlan, ClientError> {
        self.ensure_tuned(storage)?;
        let (_, plan) = self.send(Command::Retr(path.into()), storage)?;
        Ok(plan.expect("150 reply carries a plan"))
    }

    /// Negotiate a partial retrieval of `len` bytes from `offset`.
    pub fn get_partial(
        &mut self,
        path: &str,
        offset: u64,
        len: u64,
        storage: &StorageServer,
    ) -> Result<TransferPlan, ClientError> {
        self.ensure_tuned(storage)?;
        let (_, plan) = self.send(Command::EretPartial(offset, len, path.into()), storage)?;
        Ok(plan.expect("150 reply carries a plan"))
    }

    /// Negotiate a store.
    pub fn put(
        &mut self,
        path: &str,
        storage: &StorageServer,
    ) -> Result<TransferPlan, ClientError> {
        self.ensure_tuned(storage)?;
        let (_, plan) = self.send(Command::Stor(path.into()), storage)?;
        Ok(plan.expect("150 reply carries a plan"))
    }

    /// Close the session (`QUIT`).
    pub fn quit(&mut self, storage: &StorageServer) -> Result<(), ClientError> {
        self.send(Command::Quit, storage)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_logfmt::Operation;

    fn storage() -> StorageServer {
        StorageServer::vintage_with_paper_fileset("lbl")
    }

    #[test]
    fn get_negotiates_full_sequence_once() {
        let st = storage();
        let mut c = GridFtpClient::new(ClientSettings::paper_tuned());
        let plan = c.get("/home/ftp/vazhkuda/100MB", &st).unwrap();
        assert_eq!(plan.streams, 8);
        assert_eq!(plan.tcp_buffer, 1_000_000);
        assert_eq!(plan.bytes, 102_400_000);
        assert_eq!(plan.operation, Operation::Read);
        // AUTH,USER,PASS,TYPE,MODE,SBUF,OPTS,SPAS,RETR = 9 exchanges.
        assert_eq!(c.transcript().len(), 9);
        // A second get skips the preamble.
        let _ = c.get("/home/ftp/vazhkuda/10MB", &st).unwrap();
        assert_eq!(c.transcript().len(), 10);
    }

    #[test]
    fn size_and_partial() {
        let st = storage();
        let mut c = GridFtpClient::new(ClientSettings::paper_tuned());
        assert_eq!(
            c.size("/home/ftp/vazhkuda/1GB", &st).unwrap(),
            1_024_000_000
        );
        let plan = c
            .get_partial("/home/ftp/vazhkuda/1GB", 1_000, 2_000, &st)
            .unwrap();
        assert_eq!(plan.offset, 1_000);
        assert_eq!(plan.bytes, 2_000);
    }

    #[test]
    fn rejection_surfaces_with_transcript() {
        let st = storage();
        let mut c = GridFtpClient::new(ClientSettings::paper_tuned());
        let err = c.get("/home/ftp/missing", &st).unwrap_err();
        match &err {
            ClientError::Rejected { command, reply } => {
                assert!(command.starts_with("RETR"));
                assert_eq!(reply.code, 550);
            }
        }
        // The failed exchange is on the transcript too.
        assert_eq!(c.transcript().last().unwrap().reply.code, 550);
        // The session survives: a valid get still works.
        assert!(c.get("/home/ftp/vazhkuda/10MB", &st).is_ok());
    }

    #[test]
    fn put_and_quit() {
        let st = storage();
        let mut c = GridFtpClient::new(ClientSettings::paper_tuned());
        let plan = c.put("/home/ftp/incoming/x", &st).unwrap();
        assert_eq!(plan.operation, Operation::Write);
        c.quit(&st).unwrap();
        // After QUIT the session is closed: further commands fail.
        assert!(c.size("/home/ftp/vazhkuda/1GB", &st).is_err());
    }
}
