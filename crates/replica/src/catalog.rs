//! The replica catalog: logical file names mapped to physical replicas.
//!
//! Data Grids (§1) replicate large data sets across sites; a logical
//! file name (LFN) resolves to several physical copies. The catalog is
//! deliberately simple — the paper's contribution is *selecting among*
//! replicas, not cataloguing them — but supports the operations the
//! broker and examples need.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One physical copy of a logical file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalReplica {
    /// Hosting GridFTP server's host name (matches the info service's
    /// `hostname` attribute).
    pub host: String,
    /// Path on that server.
    pub path: String,
    /// File size in bytes.
    pub size: u64,
}

impl PhysicalReplica {
    /// The replica's GridFTP URL.
    pub fn url(&self) -> String {
        format!("gsiftp://{}:2811{}", self.host, self.path)
    }
}

/// Errors from catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// Unknown logical file.
    UnknownLfn(String),
    /// A registered replica duplicates an existing `(host, path)`.
    Duplicate {
        /// The logical file.
        lfn: String,
        /// The duplicated host.
        host: String,
    },
    /// Replica sizes for one LFN disagree.
    SizeMismatch {
        /// The logical file.
        lfn: String,
        /// The size already registered.
        expected: u64,
        /// The conflicting size.
        got: u64,
    },
    /// The broker was handed an empty candidate list.
    NoCandidates,
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::UnknownLfn(l) => write!(f, "unknown logical file {l}"),
            ReplicaError::Duplicate { lfn, host } => {
                write!(f, "replica of {lfn} on {host} already registered")
            }
            ReplicaError::SizeMismatch { lfn, expected, got } => {
                write!(f, "replica of {lfn} size {got} != registered {expected}")
            }
            ReplicaError::NoCandidates => write!(f, "no candidate replicas to select among"),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// The catalog.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplicaCatalog {
    entries: BTreeMap<String, Vec<PhysicalReplica>>,
}

impl ReplicaCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a replica of a logical file. All replicas of one LFN must
    /// agree on size; `(host, path)` pairs must be unique per LFN.
    pub fn register(
        &mut self,
        lfn: impl Into<String>,
        replica: PhysicalReplica,
    ) -> Result<(), ReplicaError> {
        let lfn = lfn.into();
        let list = self.entries.entry(lfn.clone()).or_default();
        if let Some(first) = list.first() {
            if first.size != replica.size {
                let expected = first.size;
                if list.is_empty() {
                    self.entries.remove(&lfn);
                }
                return Err(ReplicaError::SizeMismatch {
                    lfn,
                    expected,
                    got: replica.size,
                });
            }
        }
        if list
            .iter()
            .any(|r| r.host == replica.host && r.path == replica.path)
        {
            return Err(ReplicaError::Duplicate {
                lfn,
                host: replica.host,
            });
        }
        list.push(replica);
        Ok(())
    }

    /// All replicas of a logical file.
    pub fn lookup(&self, lfn: &str) -> Result<&[PhysicalReplica], ReplicaError> {
        self.entries
            .get(lfn)
            .map(Vec::as_slice)
            .ok_or_else(|| ReplicaError::UnknownLfn(lfn.to_string()))
    }

    /// Remove one replica; drops the LFN entirely when its last replica
    /// goes. Returns whether anything was removed.
    pub fn unregister(&mut self, lfn: &str, host: &str, path: &str) -> bool {
        let Some(list) = self.entries.get_mut(lfn) else {
            return false;
        };
        let before = list.len();
        list.retain(|r| !(r.host == host && r.path == path));
        let removed = list.len() != before;
        if list.is_empty() {
            self.entries.remove(lfn);
        }
        removed
    }

    /// Logical files in name order.
    pub fn logical_files(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of logical files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(host: &str, size: u64) -> PhysicalReplica {
        PhysicalReplica {
            host: host.into(),
            path: "/home/ftp/f".into(),
            size,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut c = ReplicaCatalog::new();
        c.register("lfn://exp/run1", rep("lbl.gov", 100)).unwrap();
        c.register("lfn://exp/run1", rep("isi.edu", 100)).unwrap();
        let reps = c.lookup("lfn://exp/run1").unwrap();
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].url(), "gsiftp://lbl.gov:2811/home/ftp/f");
    }

    #[test]
    fn unknown_lfn_errors() {
        let c = ReplicaCatalog::new();
        assert!(matches!(
            c.lookup("lfn://nope"),
            Err(ReplicaError::UnknownLfn(_))
        ));
    }

    #[test]
    fn duplicates_rejected() {
        let mut c = ReplicaCatalog::new();
        c.register("l", rep("lbl.gov", 1)).unwrap();
        assert!(matches!(
            c.register("l", rep("lbl.gov", 1)),
            Err(ReplicaError::Duplicate { .. })
        ));
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut c = ReplicaCatalog::new();
        c.register("l", rep("lbl.gov", 1)).unwrap();
        assert!(matches!(
            c.register("l", rep("isi.edu", 2)),
            Err(ReplicaError::SizeMismatch {
                expected: 1,
                got: 2,
                ..
            })
        ));
    }

    #[test]
    fn unregister_last_removes_lfn() {
        let mut c = ReplicaCatalog::new();
        c.register("l", rep("lbl.gov", 1)).unwrap();
        assert!(c.unregister("l", "lbl.gov", "/home/ftp/f"));
        assert!(!c.unregister("l", "lbl.gov", "/home/ftp/f"));
        assert!(c.is_empty());
    }

    #[test]
    fn logical_files_sorted() {
        let mut c = ReplicaCatalog::new();
        c.register("b", rep("x", 1)).unwrap();
        c.register("a", rep("x", 1)).unwrap();
        let names: Vec<&str> = c.logical_files().collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
