//! Co-allocating multi-replica transfers with mid-stream failover.
//!
//! The broker half of the pipeline (this crate) predicts which replica
//! will be fastest; this module closes the loop described in ROADMAP
//! item 4 and in Allcock et al.'s striped/partial transfer machinery: a
//! client that fetches **one file from several replicas at once** and
//! survives a source degrading or dying mid-stream.
//!
//! The [`Coallocator`] takes the broker's top-k sources with their
//! predicted bandwidths, splits the file into contiguous REST/partial
//! chunks weighted by those predictions ([`plan_chunks`]), and drives
//! one independent partial GET per chunk through the
//! [`wanpred_gridftp::TransferManager`]. Each stripe is then watched by
//! a deterministic progress monitor on sim-time windows:
//!
//! * **degradation** — a windowed EWMA of the stripe's delivered
//!   throughput falls past `degrade_ratio × predicted` for
//!   `degrade_windows` consecutive windows → the source is demoted: the
//!   stripe is aborted with an exact byte count
//!   ([`TransferManager::abort_exact`]), the delivered prefix is banked,
//!   and the *remaining* byte range is re-planned onto the surviving
//!   sources;
//! * **death** — the transfer manager exhausts its
//!   [`wanpred_gridftp::RetryPolicy`] budget for the stripe (connection
//!   resets from `simnet::fault` schedules, attempt deadlines) and
//!   reports it `Failed` → same rebalance, crediting the bytes the
//!   retries already delivered.
//!
//! Either way the replacement chunks resume from the delivered offset —
//! **no byte is ever fetched twice** ([`CompletedCoalloc::verify_tiling`]
//! proves the covered ranges tile `[0, size)` exactly). Demoted sources
//! land on a blacklist whose penalty doubles on repeat offenses and
//! decays after a quiet period, so a recovered source rejoins the pool.

use std::collections::BTreeMap;

use wanpred_gridftp::transfer::{
    CompletedTransfer, SubmitError, TransferKind, TransferManager, TransferRequest, TransferToken,
};
use wanpred_obs::{names, ObsSink};
use wanpred_simnet::engine::{Ctx, TimerTag};
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_simnet::topology::NodeId;

/// Timer-tag namespace for the co-allocator's monitor ticks. Bit 61 is
/// set and bit 62 clear, so [`owns_tag`] never collides with the
/// transfer manager's namespace (bit 62) or with the small indices
/// campaign agents use for workload timers.
pub const COALLOC_TAG_BASE: TimerTag = 1 << 61;

/// Whether a timer tag belongs to a [`Coallocator`]. Check the transfer
/// manager's [`wanpred_gridftp::owns_tag`] first — its tags keep bit 62.
pub fn owns_tag(tag: TimerTag) -> bool {
    tag & COALLOC_TAG_BASE != 0 && tag & wanpred_gridftp::TAG_BASE == 0
}

/// Split `[0, total)` into one contiguous chunk per weight, sized
/// proportionally to the weights (predicted bandwidths). Boundaries are
/// placed by cumulative rounding, so the chunks always tile `[0, total)`
/// exactly — no gap, no overlap, last chunk pinned to EOF — for any
/// weights, including zeros, non-finite values (treated as zero), and
/// `total = 0`. When no weight is usable the split degrades to even
/// shares. Chunks can come out zero-sized when a weight is a vanishing
/// fraction of the total; callers should skip those stripes.
pub fn plan_chunks(total: u64, weights: &[f64]) -> Vec<(u64, u64)> {
    assert!(!weights.is_empty(), "plans need at least one source");
    let clean: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .collect();
    let sum: f64 = clean.iter().sum();
    let n = clean.len();
    let mut out = Vec::with_capacity(n);
    if sum <= 0.0 {
        let mut off = 0u64;
        for s in wanpred_gridftp::stripe_shares(total, n) {
            out.push((off, s));
            off += s;
        }
        return out;
    }
    let mut cum = 0.0f64;
    let mut prev = 0u64;
    for (i, w) in clean.iter().enumerate() {
        cum += w;
        let boundary = if i == n - 1 {
            // The last boundary is pinned to EOF: float error can never
            // leave a tail byte unplanned.
            total
        } else {
            (((total as f64) * (cum / sum)).round() as u64).clamp(prev, total)
        };
        out.push((prev, boundary - prev));
        prev = boundary;
    }
    out
}

/// Monitor and rebalance knobs. All thresholds are deterministic
/// functions of sim time — no wall clock anywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct CoallocPolicy {
    /// Progress-monitor tick: each live transfer samples every stripe's
    /// delivered bytes at this period.
    pub probe_interval: SimDuration,
    /// EWMA smoothing weight for the newest window's throughput.
    pub ewma_alpha: f64,
    /// Demote a stripe when its EWMA throughput has been below
    /// `degrade_ratio × predicted` …
    pub degrade_ratio: f64,
    /// … for this many consecutive monitor windows.
    pub degrade_windows: u32,
    /// Windows to wait before judging a fresh stripe (control-channel
    /// setup and TCP slow start look like degradation otherwise).
    pub warmup_windows: u32,
    /// Never plan a chunk smaller than this: below it, stripe setup
    /// overhead outweighs the parallelism (also caps the stripe count
    /// for small files).
    pub min_chunk_bytes: u64,
    /// First blacklist penalty after a demotion or death.
    pub blacklist_base: SimDuration,
    /// Penalty multiplier per repeat offense…
    pub blacklist_factor: f64,
    /// …capped here. Also the quiet period after which an expired
    /// entry's strike count resets (the decay half of
    /// blacklist-with-decay).
    pub blacklist_max: SimDuration,
}

impl CoallocPolicy {
    /// Defaults tuned for the paper's WAN testbed: 20 s monitor windows
    /// (a few windows per even the fastest interesting transfer), three
    /// strikes at a quarter of the predicted rate, megabyte chunk floor,
    /// 5 min → 30 min blacklist ladder.
    pub fn wan_default() -> Self {
        CoallocPolicy {
            probe_interval: SimDuration::from_secs(20),
            ewma_alpha: 0.4,
            degrade_ratio: 0.25,
            degrade_windows: 3,
            warmup_windows: 2,
            min_chunk_bytes: 1_024_000,
            blacklist_base: SimDuration::from_mins(5),
            blacklist_factor: 2.0,
            blacklist_max: SimDuration::from_mins(30),
        }
    }
}

/// One candidate source for a co-allocated transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoallocSource {
    /// The server node.
    pub node: NodeId,
    /// Predicted bandwidth (KB/s) from the broker's ranking; drives the
    /// chunk weights and the degradation threshold.
    pub predicted_kbs: f64,
}

/// A co-allocated GET request: fetch `path` from up to `k` of the
/// ranked `sources` at once.
#[derive(Debug, Clone)]
pub struct CoallocRequest {
    /// Receiving client node.
    pub client: NodeId,
    /// File path (must resolve to the same size on every source).
    pub path: String,
    /// Candidate sources, best first (the broker's top-k order).
    pub sources: Vec<CoallocSource>,
    /// Stripe across at most this many sources.
    pub k: usize,
    /// Parallel streams per stripe.
    pub streams: u32,
    /// TCP buffer per stripe.
    pub tcp_buffer: u64,
}

/// One byte range delivered by one source — the completion report's
/// proof obligation: a completed transfer's reports tile `[0, size)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeReport {
    /// Delivering server.
    pub source: NodeId,
    /// First byte of the range.
    pub offset: u64,
    /// Length of the range.
    pub len: u64,
}

/// A finished co-allocated transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedCoalloc {
    /// The co-allocated transfer id (the [`Coallocator::start`] handle).
    pub id: u64,
    /// File path.
    pub path: String,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time of the last stripe.
    pub finished: SimTime,
    /// End-to-end bandwidth (KB/s): total bytes over wall time,
    /// the paper's whole-operation definition.
    pub bandwidth_kbs: f64,
    /// Stripes driven: the initial plan plus every rebalance replacement.
    pub stripes: u32,
    /// Rebalances performed.
    pub rebalances: u32,
    /// Bytes banked from demoted or dead stripes (kept, not re-fetched).
    pub bytes_salvaged: u64,
    /// Every delivered byte range; see
    /// [`CompletedCoalloc::verify_tiling`].
    pub covered: Vec<StripeReport>,
}

impl CompletedCoalloc {
    /// Check the no-double-fetch contract: sorted by offset, the covered
    /// ranges must tile `[0, total_bytes)` contiguously — any gap means
    /// a byte was lost, any overlap means a byte was fetched twice.
    pub fn verify_tiling(&self) -> Result<(), String> {
        let mut ranges: Vec<(u64, u64)> = self.covered.iter().map(|r| (r.offset, r.len)).collect();
        ranges.sort_unstable();
        let mut at = 0u64;
        for (off, len) in ranges {
            if off != at {
                return Err(format!(
                    "range starting at byte {off} does not abut the {at} bytes covered so far"
                ));
            }
            at += len;
        }
        if at != self.total_bytes {
            return Err(format!("covered {at} of {} bytes", self.total_bytes));
        }
        Ok(())
    }
}

/// A co-allocated transfer abandoned with no surviving source.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedCoalloc {
    /// The co-allocated transfer id.
    pub id: u64,
    /// File path.
    pub path: String,
    /// Bytes that had been delivered when the transfer was abandoned.
    pub delivered_bytes: u64,
    /// Total payload bytes.
    pub total_bytes: u64,
}

/// Notifications drained with [`Coallocator::take_events`].
#[derive(Debug, Clone, PartialEq)]
pub enum CoallocEvent {
    /// A stripe's EWMA throughput fell past the degradation threshold.
    Demoted {
        /// The co-allocated transfer.
        id: u64,
        /// The demoted source.
        source: NodeId,
        /// Its EWMA throughput at demotion (KB/s).
        ewma_kbs: f64,
        /// The prediction it was judged against (KB/s).
        predicted_kbs: f64,
    },
    /// A byte range was re-planned onto surviving sources.
    Rebalanced {
        /// The co-allocated transfer.
        id: u64,
        /// The source whose range was taken away.
        from: NodeId,
        /// Bytes handed to the survivors.
        bytes_replanned: u64,
        /// How many sources picked up the range.
        survivors: usize,
    },
    /// A source entered the blacklist.
    Blacklisted {
        /// The offender.
        source: NodeId,
        /// Penalty expiry (sim time).
        until: SimTime,
        /// Consecutive offenses counted against it.
        strikes: u32,
    },
    /// A blacklisted source's penalty expired; it is selectable again.
    Rejoined {
        /// The recovered source.
        source: NodeId,
    },
    /// The transfer was abandoned: no surviving source could take the
    /// remaining bytes.
    Failed(FailedCoalloc),
}

/// One live stripe.
#[derive(Debug, Clone)]
struct Stripe {
    source: NodeId,
    offset: u64,
    len: u64,
    token: TransferToken,
    predicted_kbs: f64,
    /// Delivered bytes at the last monitor tick.
    last_bytes: u64,
    last_at: SimTime,
    ewma_kbs: Option<f64>,
    windows_seen: u32,
    windows_below: u32,
}

/// One co-allocated transfer in flight.
#[derive(Debug, Clone)]
struct Xfer {
    path: String,
    client: NodeId,
    total: u64,
    streams: u32,
    tcp_buffer: u64,
    submitted: SimTime,
    /// The co-allocated sources (the rebalance targets).
    candidates: Vec<CoallocSource>,
    /// Live stripes only; finished or demoted stripes move their ranges
    /// into `covered`.
    stripes: Vec<Stripe>,
    covered: Vec<StripeReport>,
    stripes_started: u32,
    rebalances: u32,
    bytes_salvaged: u64,
}

#[derive(Debug, Clone, Copy)]
struct BlacklistEntry {
    until: SimTime,
    strikes: u32,
}

/// The co-allocating transfer client. Embed it next to a
/// [`TransferManager`] inside an agent and forward events:
///
/// * `on_timer` → [`TransferManager::on_timer`] first, then
///   [`Coallocator::on_timer`];
/// * after forwarding flow events, drain
///   [`TransferManager::take_events`] and route `Failed` stripes into
///   [`Coallocator::on_transfer_failed`];
/// * completions from [`TransferManager::on_flow_complete`] go through
///   [`Coallocator::on_transfer_complete`].
pub struct Coallocator {
    policy: CoallocPolicy,
    xfers: BTreeMap<u64, Xfer>,
    by_token: BTreeMap<TransferToken, (u64, usize)>,
    blacklist: BTreeMap<NodeId, BlacklistEntry>,
    events: Vec<CoallocEvent>,
    next: u64,
    obs: ObsSink,
}

impl Coallocator {
    /// Build over a policy.
    pub fn new(policy: CoallocPolicy) -> Self {
        Coallocator {
            policy,
            xfers: BTreeMap::new(),
            by_token: BTreeMap::new(),
            blacklist: BTreeMap::new(),
            events: Vec::new(),
            next: 0,
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink (stripe counts, rebalances, bytes
    /// salvaged, demotions — all registered in `names::all()`).
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Drain pending notifications.
    pub fn take_events(&mut self) -> Vec<CoallocEvent> {
        std::mem::take(&mut self.events)
    }

    /// Live co-allocated transfers.
    pub fn active(&self) -> usize {
        self.xfers.len()
    }

    /// Whether a source is currently serving a blacklist penalty.
    pub fn is_blacklisted(&self, node: NodeId, now: SimTime) -> bool {
        self.blacklist.get(&node).is_some_and(|e| now < e.until)
    }

    /// Expire and drop a source's penalty if its time has been served;
    /// returns whether the source is usable now.
    fn usable(&mut self, node: NodeId, now: SimTime) -> bool {
        match self.blacklist.get(&node) {
            None => true,
            Some(e) if now < e.until => false,
            Some(e) => {
                // Strike memory decays after a quiet period: an entry
                // that sat expired for `blacklist_max` starts over.
                if now.saturating_since(e.until) >= self.policy.blacklist_max {
                    self.blacklist.remove(&node);
                }
                self.obs.inc(names::REPLICA_COALLOC_REJOINS);
                self.events.push(CoallocEvent::Rejoined { source: node });
                true
            }
        }
    }

    /// Blacklist a source (demotion or death), escalating the penalty
    /// for repeat offenses within the decay window.
    fn punish(&mut self, node: NodeId, now: SimTime) {
        let strikes = match self.blacklist.get(&node) {
            Some(e) => e.strikes + 1,
            None => 1,
        };
        let micros = self.policy.blacklist_base.as_micros() as f64
            * self.policy.blacklist_factor.powi(strikes as i32 - 1);
        let penalty = SimDuration::from_micros(micros as u64).min(self.policy.blacklist_max);
        let until = now + penalty;
        self.blacklist
            .insert(node, BlacklistEntry { until, strikes });
        self.obs.inc(names::REPLICA_COALLOC_BLACKLISTED);
        self.events.push(CoallocEvent::Blacklisted {
            source: node,
            until,
            strikes,
        });
    }

    /// Start a co-allocated GET. Validates every candidate against its
    /// catalog (sizes must agree), filters sources serving a blacklist
    /// penalty (unless that would empty the pool — a degraded pool still
    /// beats an instant failure), plans prediction-weighted chunks, and
    /// submits one partial GET per chunk. Returns the co-allocated
    /// transfer id.
    pub fn start(
        &mut self,
        ctx: &mut Ctx<'_>,
        mgr: &mut TransferManager,
        req: CoallocRequest,
    ) -> Result<u64, SubmitError> {
        let now = ctx.now();
        let mut pool: Vec<CoallocSource> = Vec::new();
        for s in &req.sources {
            if self.usable(s.node, now) {
                pool.push(*s);
            }
        }
        if pool.is_empty() {
            pool = req.sources.clone();
        }
        // Validate candidates and agree on the file size.
        let mut total: Option<u64> = None;
        let mut first_err: Option<SubmitError> = None;
        pool.retain(|s| {
            let size = mgr
                .storage(s.node)
                .ok_or(SubmitError::NotAServer(s.node))
                .and_then(|st| {
                    st.catalog()
                        .lookup(&req.path)
                        .map(|e| e.size)
                        .map_err(|_| SubmitError::FileNotFound(req.path.clone()))
                });
            match size {
                Ok(sz) => match total {
                    None => {
                        total = Some(sz);
                        true
                    }
                    Some(t) if t == sz => true,
                    Some(_) => {
                        first_err.get_or_insert(SubmitError::StripeSizeMismatch);
                        false
                    }
                },
                Err(e) => {
                    first_err.get_or_insert(e);
                    false
                }
            }
        });
        let Some(total) = total else {
            return Err(first_err.unwrap_or(SubmitError::NoStripes));
        };

        // Stripe count: the caller's k, capped by the pool and by the
        // chunk floor so small files don't shatter into setup overhead.
        let by_floor = (total / self.policy.min_chunk_bytes.max(1)).max(1);
        let k = req.k.max(1).min(pool.len()).min(by_floor as usize);
        let picks = &pool[..k];
        let weights: Vec<f64> = picks.iter().map(|s| s.predicted_kbs.max(1e-9)).collect();
        let chunks = plan_chunks(total, &weights);

        let id = self.next;
        self.next += 1;
        let mut xfer = Xfer {
            path: req.path.clone(),
            client: req.client,
            total,
            streams: req.streams,
            tcp_buffer: req.tcp_buffer,
            submitted: now,
            // The failover set is exactly the co-allocated sources: with
            // k = 1 there is no survivor to rebalance onto, which is what
            // makes coalloc(1) the honest single-best baseline.
            candidates: picks.to_vec(),
            stripes: Vec::new(),
            covered: Vec::new(),
            stripes_started: 0,
            rebalances: 0,
            bytes_salvaged: 0,
        };
        for (src, (offset, len)) in picks.iter().zip(chunks) {
            // A zero-length chunk can only happen on a zero-size file
            // with one pick (fetch it: the empty GET produces the log
            // record) or a vanishing weight (skip the stripe).
            if len == 0 && total > 0 {
                continue;
            }
            let token = mgr.submit(
                ctx,
                TransferRequest {
                    client: req.client,
                    kind: TransferKind::Get {
                        server: src.node,
                        path: req.path.clone(),
                    },
                    streams: req.streams,
                    tcp_buffer: req.tcp_buffer,
                    partial: Some((offset, len)),
                },
            )?;
            self.by_token.insert(token, (id, xfer.stripes.len()));
            xfer.stripes.push(Stripe {
                source: src.node,
                offset,
                len,
                token,
                predicted_kbs: src.predicted_kbs,
                last_bytes: 0,
                last_at: now,
                ewma_kbs: None,
                windows_seen: 0,
                windows_below: 0,
            });
            xfer.stripes_started += 1;
        }
        self.obs.inc(names::REPLICA_COALLOC_TRANSFERS);
        self.xfers.insert(id, xfer);
        ctx.set_timer(self.policy.probe_interval, COALLOC_TAG_BASE | id);
        Ok(id)
    }

    /// Handle a monitor tick. Returns `true` if the tag belongs to this
    /// co-allocator (forward to [`TransferManager::on_timer`] *first* —
    /// its namespace keeps bit 62).
    pub fn on_timer(
        &mut self,
        ctx: &mut Ctx<'_>,
        mgr: &mut TransferManager,
        tag: TimerTag,
    ) -> bool {
        if !owns_tag(tag) {
            return false;
        }
        let id = tag & !COALLOC_TAG_BASE;
        if !self.xfers.contains_key(&id) {
            return true; // stale tick for a finished transfer
        }
        let now = ctx.now();
        let policy = self.policy.clone();

        // Sample every live stripe, then collect demotions; mutating the
        // stripe list mid-scan would skew sibling indices.
        let mut demote: Vec<TransferToken> = Vec::new();
        {
            let xfer = self.xfers.get_mut(&id).expect("checked above");
            for s in &mut xfer.stripes {
                let Some(delivered) = mgr.progress(ctx, s.token) else {
                    continue; // completion event is already in flight
                };
                let dt = now.saturating_since(s.last_at).as_secs_f64();
                if dt <= 0.0 {
                    continue;
                }
                let inst_kbs = delivered.saturating_sub(s.last_bytes) as f64 / dt / 1_000.0;
                s.last_bytes = delivered;
                s.last_at = now;
                s.ewma_kbs = Some(match s.ewma_kbs {
                    Some(prev) => policy.ewma_alpha * inst_kbs + (1.0 - policy.ewma_alpha) * prev,
                    None => inst_kbs,
                });
                s.windows_seen += 1;
                if s.windows_seen <= policy.warmup_windows {
                    continue;
                }
                let ewma = s.ewma_kbs.expect("assigned above");
                if ewma < policy.degrade_ratio * s.predicted_kbs {
                    s.windows_below += 1;
                } else {
                    s.windows_below = 0;
                }
                if s.windows_below >= policy.degrade_windows {
                    demote.push(s.token);
                }
            }
        }
        for token in demote {
            self.demote_stripe(ctx, mgr, token);
        }
        if self.xfers.contains_key(&id) {
            ctx.set_timer(self.policy.probe_interval, COALLOC_TAG_BASE | id);
        }
        true
    }

    /// Demote one stripe: exact-abort it, bank the delivered prefix,
    /// blacklist the source, and re-plan the remainder.
    fn demote_stripe(
        &mut self,
        ctx: &mut Ctx<'_>,
        mgr: &mut TransferManager,
        token: TransferToken,
    ) {
        let Some((id, idx)) = self.by_token.remove(&token) else {
            return; // completed in the same tick
        };
        let now = ctx.now();
        let delivered = mgr.abort_exact(ctx, token).unwrap_or(0);
        let (source, offset, len, ewma, predicted) = {
            let xfer = self.xfers.get_mut(&id).expect("stripe maps to transfer");
            let s = xfer.stripes.remove(idx);
            // Sibling stripes after the removed one shift down one slot.
            for t in &xfer.stripes[idx..] {
                if let Some(entry) = self.by_token.get_mut(&t.token) {
                    entry.1 -= 1;
                }
            }
            let banked = delivered.min(s.len);
            if banked > 0 {
                xfer.covered.push(StripeReport {
                    source: s.source,
                    offset: s.offset,
                    len: banked,
                });
                xfer.bytes_salvaged += banked;
            }
            (
                s.source,
                s.offset + banked,
                s.len - banked,
                s.ewma_kbs.unwrap_or(0.0),
                s.predicted_kbs,
            )
        };
        self.obs.inc(names::REPLICA_COALLOC_DEMOTIONS);
        self.events.push(CoallocEvent::Demoted {
            id,
            source,
            ewma_kbs: ewma,
            predicted_kbs: predicted,
        });
        self.punish(source, now);
        self.replan(ctx, mgr, id, source, offset, len);
    }

    /// A stripe's transfer exhausted its retry budget and was abandoned
    /// by the manager. Bank what the attempts delivered and re-plan the
    /// rest. Returns `true` if the token belonged to a stripe.
    pub fn on_transfer_failed(
        &mut self,
        ctx: &mut Ctx<'_>,
        mgr: &mut TransferManager,
        token: TransferToken,
        delivered_bytes: u64,
    ) -> bool {
        let Some((id, idx)) = self.by_token.remove(&token) else {
            return false;
        };
        let now = ctx.now();
        let (source, offset, len) = {
            let xfer = self.xfers.get_mut(&id).expect("stripe maps to transfer");
            let s = xfer.stripes.remove(idx);
            for t in &xfer.stripes[idx..] {
                if let Some(entry) = self.by_token.get_mut(&t.token) {
                    entry.1 -= 1;
                }
            }
            let banked = delivered_bytes.min(s.len);
            if banked > 0 {
                xfer.covered.push(StripeReport {
                    source: s.source,
                    offset: s.offset,
                    len: banked,
                });
                xfer.bytes_salvaged += banked;
            }
            (s.source, s.offset + banked, s.len - banked)
        };
        self.punish(source, now);
        self.replan(ctx, mgr, id, source, offset, len);
        true
    }

    /// Re-plan `[offset, offset + len)` onto the surviving sources,
    /// weighted by their live EWMA throughput where available (falling
    /// back to the original prediction). With no survivors the transfer
    /// is abandoned.
    fn replan(
        &mut self,
        ctx: &mut Ctx<'_>,
        mgr: &mut TransferManager,
        id: u64,
        from: NodeId,
        offset: u64,
        len: u64,
    ) {
        if len == 0 {
            // The dead stripe had already delivered everything; nothing
            // to move, but the transfer may now be complete.
            self.finish_if_done(ctx, id);
            return;
        }
        let now = ctx.now();
        let candidates = self
            .xfers
            .get(&id)
            .map(|x| x.candidates.clone())
            .unwrap_or_default();
        // Survivors: every non-blacklisted candidate, weighted by the
        // EWMA of its live stripes when it has any (live evidence beats
        // the prediction that just failed us).
        let mut survivors: Vec<(NodeId, f64)> = Vec::new();
        for c in candidates {
            if c.node == from || !self.usable(c.node, now) {
                continue;
            }
            let xfer = self.xfers.get(&id).expect("transfer is live");
            let live = xfer
                .stripes
                .iter()
                .filter(|s| s.source == c.node)
                .filter_map(|s| s.ewma_kbs)
                .fold(f64::NEG_INFINITY, f64::max);
            let w = if live.is_finite() && live > 0.0 {
                live
            } else {
                c.predicted_kbs
            };
            survivors.push((c.node, w.max(1e-9)));
        }
        if survivors.is_empty() {
            self.fail_transfer(ctx, mgr, id);
            return;
        }
        // Respect the chunk floor when splitting the remainder.
        let by_floor = (len / self.policy.min_chunk_bytes.max(1)).max(1);
        survivors.truncate((by_floor as usize).max(1).min(survivors.len()));
        let weights: Vec<f64> = survivors.iter().map(|(_, w)| *w).collect();
        let chunks = plan_chunks(len, &weights);
        let n = survivors.len();
        let (path, client, streams, tcp_buffer) = {
            let x = self.xfers.get(&id).expect("transfer is live");
            (x.path.clone(), x.client, x.streams, x.tcp_buffer)
        };
        for ((node, w), (rel_off, chunk_len)) in survivors.into_iter().zip(chunks) {
            if chunk_len == 0 {
                continue;
            }
            let sub = mgr.submit(
                ctx,
                TransferRequest {
                    client,
                    kind: TransferKind::Get {
                        server: node,
                        path: path.clone(),
                    },
                    streams,
                    tcp_buffer,
                    partial: Some((offset + rel_off, chunk_len)),
                },
            );
            match sub {
                Ok(token) => {
                    let xfer = self.xfers.get_mut(&id).expect("transfer is live");
                    self.by_token.insert(token, (id, xfer.stripes.len()));
                    xfer.stripes.push(Stripe {
                        source: node,
                        offset: offset + rel_off,
                        len: chunk_len,
                        token,
                        predicted_kbs: w,
                        last_bytes: 0,
                        last_at: now,
                        ewma_kbs: None,
                        windows_seen: 0,
                        windows_below: 0,
                    });
                    xfer.stripes_started += 1;
                }
                Err(_) => {
                    // A survivor that cannot take its chunk (route or
                    // catalog loss) dooms only that range; treat it like
                    // a failed stripe with nothing delivered.
                    self.punish(node, now);
                    self.replan(ctx, mgr, id, node, offset + rel_off, chunk_len);
                    if !self.xfers.contains_key(&id) {
                        return; // the recursive replan abandoned it
                    }
                }
            }
        }
        let xfer = self.xfers.get_mut(&id).expect("transfer is live");
        xfer.rebalances += 1;
        self.obs.inc(names::REPLICA_COALLOC_REBALANCES);
        self.events.push(CoallocEvent::Rebalanced {
            id,
            from,
            bytes_replanned: len,
            survivors: n,
        });
        self.finish_if_done(ctx, id);
    }

    /// A transfer completed at the manager. If it was one of ours,
    /// record the covered range and — when it was the last live stripe —
    /// assemble the completion report. Feed the returned report's
    /// tiling check in tests; it is the no-double-fetch proof.
    pub fn on_transfer_complete(
        &mut self,
        ctx: &mut Ctx<'_>,
        c: &CompletedTransfer,
    ) -> Option<CompletedCoalloc> {
        let (id, idx) = self.by_token.remove(&c.token)?;
        {
            let xfer = self.xfers.get_mut(&id).expect("stripe maps to transfer");
            let s = xfer.stripes.remove(idx);
            for t in &xfer.stripes[idx..] {
                if let Some(entry) = self.by_token.get_mut(&t.token) {
                    entry.1 -= 1;
                }
            }
            xfer.covered.push(StripeReport {
                source: s.source,
                offset: s.offset,
                len: s.len,
            });
        }
        self.finish_if_done(ctx, id)
    }

    /// When the last live stripe of `id` is gone, emit the completion.
    fn finish_if_done(&mut self, ctx: &mut Ctx<'_>, id: u64) -> Option<CompletedCoalloc> {
        let done = self
            .xfers
            .get(&id)
            .map(|x| x.stripes.is_empty())
            .unwrap_or(false);
        if !done {
            return None;
        }
        let x = self.xfers.remove(&id).expect("checked above");
        let finished = ctx.now();
        let total_s = finished.saturating_since(x.submitted).as_secs_f64();
        let bandwidth_kbs = if total_s > 0.0 {
            x.total as f64 / total_s / 1_000.0
        } else {
            0.0
        };
        self.obs.inc(names::REPLICA_COALLOC_COMPLETED);
        self.obs
            .observe(names::REPLICA_COALLOC_STRIPES, u64::from(x.stripes_started));
        self.obs
            .inc_by(names::REPLICA_COALLOC_BYTES_SALVAGED, x.bytes_salvaged);
        Some(CompletedCoalloc {
            id,
            path: x.path,
            total_bytes: x.total,
            submitted: x.submitted,
            finished,
            bandwidth_kbs,
            stripes: x.stripes_started,
            rebalances: x.rebalances,
            bytes_salvaged: x.bytes_salvaged,
            covered: x.covered,
        })
    }

    /// Abandon a transfer: abort the surviving stripes (banking their
    /// delivered prefixes — a later manual retry could resume), emit
    /// [`CoallocEvent::Failed`].
    fn fail_transfer(&mut self, ctx: &mut Ctx<'_>, mgr: &mut TransferManager, id: u64) {
        let Some(mut x) = self.xfers.remove(&id) else {
            return;
        };
        for s in std::mem::take(&mut x.stripes) {
            self.by_token.remove(&s.token);
            let banked = mgr.abort_exact(ctx, s.token).unwrap_or(0).min(s.len);
            if banked > 0 {
                x.covered.push(StripeReport {
                    source: s.source,
                    offset: s.offset,
                    len: banked,
                });
            }
        }
        let delivered: u64 = x.covered.iter().map(|r| r.len).sum();
        self.obs.inc(names::REPLICA_COALLOC_FAILED);
        self.events.push(CoallocEvent::Failed(FailedCoalloc {
            id,
            path: x.path,
            delivered_bytes: delivered,
            total_bytes: x.total,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::any::Any;
    use wanpred_gridftp::transfer::TransferEvent;
    use wanpred_gridftp::ServerConfig;
    use wanpred_simnet::engine::{Agent, Engine};
    use wanpred_simnet::fault::{FaultAction, FaultSchedule, TimedFault};
    use wanpred_simnet::flow::{FlowDone, FlowFailed};
    use wanpred_simnet::load::LoadModelConfig;
    use wanpred_simnet::network::Network;
    use wanpred_simnet::rng::MasterSeed;
    use wanpred_simnet::topology::Topology;
    use wanpred_storage::StorageServer;

    fn quiet_cfg() -> LoadModelConfig {
        LoadModelConfig {
            diurnal_mean_weight: 0.0,
            walk_sigma: 0.0,
            burst_weight: 0.0,
            ..LoadModelConfig::default()
        }
    }

    /// Client at ANL, servers at LBL and ISI over disjoint 12 MB/s paths.
    fn testnet() -> (Network, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let anl = t.add_node("anl");
        let lbl = t.add_node("lbl");
        let isi = t.add_node("isi");
        let (f1, r1) = t
            .add_duplex_link("anl-lbl", anl, lbl, 12e6, SimDuration::from_millis(27))
            .unwrap();
        let (f2, r2) = t
            .add_duplex_link("anl-isi", anl, isi, 12e6, SimDuration::from_millis(31))
            .unwrap();
        t.add_route(anl, lbl, vec![f1]).unwrap();
        t.add_route(lbl, anl, vec![r1]).unwrap();
        t.add_route(anl, isi, vec![f2]).unwrap();
        t.add_route(isi, anl, vec![r2]).unwrap();
        (
            Network::with_uniform_load(t, quiet_cfg(), MasterSeed(7)),
            anl,
            lbl,
            isi,
        )
    }

    fn manager(anl: NodeId, lbl: NodeId, isi: NodeId) -> TransferManager {
        let mut m = TransferManager::new(998_000_000);
        m.add_host(anl, "pitcairn.mcs.anl.gov", "140.221.65.69");
        m.add_server(
            lbl,
            ServerConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
            StorageServer::vintage_with_paper_fileset("lbl"),
        );
        m.add_server(
            isi,
            ServerConfig::new("jet.isi.edu", "128.9.160.11"),
            StorageServer::vintage_with_paper_fileset("isi"),
        );
        m
    }

    struct Harness {
        mgr: TransferManager,
        co: Coallocator,
        req: Option<CoallocRequest>,
        completed: Vec<CompletedCoalloc>,
        failed: Vec<FailedCoalloc>,
        events: Vec<CoallocEvent>,
        start_err: Option<SubmitError>,
    }

    impl Harness {
        fn drain(&mut self) {
            for e in self.co.take_events() {
                if let CoallocEvent::Failed(f) = &e {
                    self.failed.push(f.clone());
                }
                self.events.push(e);
            }
        }
    }

    impl Agent for Harness {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
            if self.mgr.on_timer(ctx, tag) {
                self.route_mgr_events(ctx);
                return;
            }
            if self.co.on_timer(ctx, &mut self.mgr, tag) {
                self.drain();
                return;
            }
            if let Some(req) = self.req.take() {
                if let Err(e) = self.co.start(ctx, &mut self.mgr, req) {
                    self.start_err = Some(e);
                }
                self.drain();
            }
        }
        fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
            if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
                if let Some(cc) = self.co.on_transfer_complete(ctx, &c) {
                    self.completed.push(cc);
                }
            }
            self.route_mgr_events(ctx);
        }
        fn on_flow_failed(&mut self, ctx: &mut Ctx<'_>, failed: FlowFailed) {
            self.mgr.on_flow_failed(ctx, &failed);
            self.route_mgr_events(ctx);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    impl Harness {
        fn route_mgr_events(&mut self, ctx: &mut Ctx<'_>) {
            for e in self.mgr.take_events() {
                if let TransferEvent::Failed {
                    token,
                    delivered_bytes,
                    ..
                } = e
                {
                    self.co
                        .on_transfer_failed(ctx, &mut self.mgr, token, delivered_bytes);
                }
            }
            self.drain();
        }
    }

    fn run_with(
        net: Network,
        mgr: TransferManager,
        co: Coallocator,
        req: CoallocRequest,
        secs: u64,
    ) -> (Harness, Engine) {
        let mut eng = Engine::new(net);
        let id = eng.add_agent(Box::new(Harness {
            mgr,
            co,
            req: Some(req),
            completed: Vec::new(),
            failed: Vec::new(),
            events: Vec::new(),
            start_err: None,
        }));
        eng.run_until(SimTime::from_secs(secs));
        let h = eng.agent_mut::<Harness>(id).unwrap();
        let out = std::mem::replace(
            h,
            Harness {
                mgr: TransferManager::new(0),
                co: Coallocator::new(CoallocPolicy::wan_default()),
                req: None,
                completed: Vec::new(),
                failed: Vec::new(),
                events: Vec::new(),
                start_err: None,
            },
        );
        (out, eng)
    }

    fn req2(anl: NodeId, lbl: NodeId, isi: NodeId, path: &str, k: usize) -> CoallocRequest {
        CoallocRequest {
            client: anl,
            path: path.into(),
            sources: vec![
                CoallocSource {
                    node: lbl,
                    predicted_kbs: 10_000.0,
                },
                CoallocSource {
                    node: isi,
                    predicted_kbs: 10_000.0,
                },
            ],
            k,
            streams: 8,
            tcp_buffer: 1_000_000,
        }
    }

    #[test]
    fn clean_coalloc_completes_and_tiles() {
        let (net, anl, lbl, isi) = testnet();
        let mgr = manager(anl, lbl, isi);
        let co = Coallocator::new(CoallocPolicy::wan_default());
        let (h, _) = run_with(
            net,
            mgr,
            co,
            req2(anl, lbl, isi, "/home/ftp/vazhkuda/500MB", 2),
            600,
        );
        assert!(h.start_err.is_none(), "{:?}", h.start_err);
        assert_eq!(h.completed.len(), 1, "events: {:?}", h.events);
        let c = &h.completed[0];
        assert_eq!(c.total_bytes, 512_000_000);
        assert_eq!(c.stripes, 2);
        assert_eq!(c.rebalances, 0);
        assert_eq!(c.bytes_salvaged, 0);
        c.verify_tiling().expect("covered ranges tile the file");
        // Both servers served a stripe.
        let sources: Vec<NodeId> = c.covered.iter().map(|r| r.source).collect();
        assert!(sources.contains(&lbl) && sources.contains(&isi));
        // Two 12 MB/s paths in parallel: ~21 s of wire time for 512 MB,
        // far faster than any single path (≥ 42 s).
        let secs = c.finished.saturating_since(c.submitted).as_secs_f64();
        assert!(secs < 32.0, "striping should engage both paths: {secs}");
    }

    #[test]
    fn weighted_plan_follows_predictions() {
        // 3:1 prediction ratio → chunk sizes follow.
        let chunks = plan_chunks(400, &[3.0, 1.0]);
        assert_eq!(chunks, vec![(0, 300), (300, 100)]);
        // Zero/NaN weights degrade to even shares.
        let even = plan_chunks(100, &[0.0, f64::NAN]);
        assert_eq!(even, vec![(0, 50), (50, 50)]);
    }

    #[test]
    fn zero_size_file_completes_with_single_empty_stripe() {
        let (net, anl, lbl, isi) = testnet();
        let mgr = manager(anl, lbl, isi);
        // Register an empty file on both servers.
        for node in [lbl, isi] {
            let size_ok = mgr.storage(node).is_some();
            assert!(size_ok);
        }
        // PUT-style registration isn't exposed on StorageServer here;
        // instead co-allocate the smallest real file with a chunk floor
        // far above it — the plan must collapse to one stripe.
        let co = Coallocator::new(CoallocPolicy {
            min_chunk_bytes: 10_000_000,
            ..CoallocPolicy::wan_default()
        });
        let (h, _) = run_with(
            net,
            mgr,
            co,
            req2(anl, lbl, isi, "/home/ftp/vazhkuda/1MB", 2),
            120,
        );
        assert_eq!(h.completed.len(), 1);
        let c = &h.completed[0];
        assert_eq!(c.stripes, 1, "chunk floor caps the stripe count");
        c.verify_tiling().expect("single stripe tiles");
    }

    #[test]
    fn killed_source_rebalances_to_survivor_without_refetch() {
        let (net, anl, lbl, isi) = testnet();
        let mgr = manager(anl, lbl, isi);
        // No retry policy: the first kill fails the stripe outright,
        // exercising the death path deterministically.
        let co = Coallocator::new(CoallocPolicy::wan_default());
        let mut eng = Engine::new(net);
        // Kill every flow on the lbl→anl link at t=10 s (mid-stripe).
        eng.inject_faults(&FaultSchedule::from_events(vec![TimedFault {
            at: SimTime::from_secs(10),
            action: FaultAction::KillFlows(wanpred_simnet::topology::LinkId(1)),
        }]));
        let id = eng.add_agent(Box::new(Harness {
            mgr,
            co,
            req: Some(req2(anl, lbl, isi, "/home/ftp/vazhkuda/500MB", 2)),
            completed: Vec::new(),
            failed: Vec::new(),
            events: Vec::new(),
            start_err: None,
        }));
        eng.run_until(SimTime::from_secs(900));
        let h = eng.agent::<Harness>(id).unwrap();
        assert_eq!(h.completed.len(), 1, "events: {:?}", h.events);
        let c = &h.completed[0];
        assert_eq!(c.rebalances, 1);
        assert!(c.bytes_salvaged > 0, "the killed stripe had delivered");
        c.verify_tiling()
            .expect("rebalance must neither re-fetch nor drop a byte");
        // The survivor (isi) took over the remainder.
        assert!(c.covered.iter().any(|r| r.source == isi));
        assert!(h
            .events
            .iter()
            .any(|e| matches!(e, CoallocEvent::Rebalanced { .. })));
        assert!(h
            .events
            .iter()
            .any(|e| matches!(e, CoallocEvent::Blacklisted { .. })));
    }

    #[test]
    fn lone_source_death_fails_the_transfer() {
        let (net, anl, lbl, isi) = testnet();
        let mgr = manager(anl, lbl, isi);
        let co = Coallocator::new(CoallocPolicy::wan_default());
        let mut eng = Engine::new(net);
        eng.inject_faults(&FaultSchedule::from_events(vec![TimedFault {
            at: SimTime::from_secs(10),
            action: FaultAction::KillFlows(wanpred_simnet::topology::LinkId(1)),
        }]));
        let mut req = req2(anl, lbl, isi, "/home/ftp/vazhkuda/500MB", 1);
        req.sources.truncate(1); // lbl only: no survivor to rebalance to
        let id = eng.add_agent(Box::new(Harness {
            mgr,
            co,
            req: Some(req),
            completed: Vec::new(),
            failed: Vec::new(),
            events: Vec::new(),
            start_err: None,
        }));
        eng.run_until(SimTime::from_secs(900));
        let h = eng.agent::<Harness>(id).unwrap();
        assert!(h.completed.is_empty());
        assert_eq!(h.failed.len(), 1);
        let f = &h.failed[0];
        assert!(f.delivered_bytes > 0 && f.delivered_bytes < f.total_bytes);
    }

    #[test]
    fn blacklist_escalates_and_decays() {
        let mut co = Coallocator::new(CoallocPolicy::wan_default());
        let node = NodeId(5);
        let t0 = SimTime::from_secs(100);
        co.punish(node, t0);
        assert!(co.is_blacklisted(node, t0 + SimDuration::from_mins(4)));
        assert!(!co.is_blacklisted(node, t0 + SimDuration::from_mins(6)));
        // Second strike within the decay window: penalty doubles.
        let t1 = t0 + SimDuration::from_mins(6);
        assert!(co.usable(node, t1), "penalty served");
        co.punish(node, t1);
        assert!(co.is_blacklisted(node, t1 + SimDuration::from_mins(9)));
        assert!(!co.is_blacklisted(node, t1 + SimDuration::from_mins(11)));
        // After a quiet period of blacklist_max the strikes reset.
        let t2 = t1 + SimDuration::from_mins(10) + SimDuration::from_mins(31);
        assert!(co.usable(node, t2));
        co.punish(node, t2);
        assert!(
            !co.is_blacklisted(node, t2 + SimDuration::from_mins(6)),
            "strike memory decayed back to the base penalty"
        );
        // Rejoin events were emitted.
        assert!(co
            .take_events()
            .iter()
            .any(|e| matches!(e, CoallocEvent::Rejoined { .. })));
    }

    proptest! {
        /// Chunk plans tile `[0, total)` exactly for arbitrary weights:
        /// contiguous offsets from zero, lengths summing to the total.
        #[test]
        fn plans_tile_exactly(
            total in 0u64..1_000_000_000_000,
            weights in prop::collection::vec(0.0f64..1e9, 1..8),
        ) {
            let chunks = plan_chunks(total, &weights);
            prop_assert_eq!(chunks.len(), weights.len());
            let mut at = 0u64;
            for (off, len) in chunks {
                prop_assert_eq!(off, at, "chunks must be contiguous");
                at += len;
            }
            prop_assert_eq!(at, total, "chunks must land exactly on EOF");
        }

        /// Weighted plans track the weight ratio to within one part in
        /// the total (cumulative rounding error is < 1 byte/boundary).
        #[test]
        fn plans_follow_weights(
            total in 1_000u64..1_000_000_000,
            a in 1.0f64..1e6,
            b in 1.0f64..1e6,
        ) {
            let chunks = plan_chunks(total, &[a, b]);
            let want = total as f64 * a / (a + b);
            prop_assert!((chunks[0].1 as f64 - want).abs() <= 1.0);
        }
    }
}
