//! Selection policies: the prediction-driven choice plus the baselines
//! the ablation benches compare against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::broker::ReplicaScore;

/// A replica-selection policy. Policies are stateful (round-robin,
/// random) so the broker takes them by `&mut`.
///
/// The `Random` variant boxes its RNG to keep the enum small (policies
/// are stored and passed around freely).
pub enum SelectionPolicy {
    /// Choose the highest predicted bandwidth; candidates with no
    /// information rank below all informed ones; ties and the
    /// all-uninformed case fall back to the first candidate.
    PredictedBandwidth,
    /// Uniform random choice (seeded: reproducible baselines).
    Random(Box<StdRng>),
    /// Rotate through candidates.
    RoundRobin {
        /// Next index to pick.
        next: usize,
    },
    /// Always the first catalog entry (the "no broker" strawman).
    FirstListed,
}

impl SelectionPolicy {
    /// The prediction-driven policy.
    pub fn predicted_bandwidth() -> Self {
        SelectionPolicy::PredictedBandwidth
    }

    /// Seeded random baseline.
    pub fn random(seed: u64) -> Self {
        SelectionPolicy::Random(Box::new(StdRng::seed_from_u64(seed)))
    }

    /// Round-robin baseline.
    pub fn round_robin() -> Self {
        SelectionPolicy::RoundRobin { next: 0 }
    }

    /// First-listed baseline.
    pub fn first_listed() -> Self {
        SelectionPolicy::FirstListed
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SelectionPolicy::PredictedBandwidth => "predicted-bandwidth",
            SelectionPolicy::Random(_) => "random",
            SelectionPolicy::RoundRobin { .. } => "round-robin",
            SelectionPolicy::FirstListed => "first-listed",
        }
    }

    /// Choose an index among the scored candidates (non-empty). Ranking
    /// uses the *effective* bandwidth — the staleness-decayed estimate —
    /// so fresh information outranks equally-fast stale information.
    pub fn choose(&mut self, scores: &[ReplicaScore]) -> usize {
        assert!(!scores.is_empty());
        match self {
            SelectionPolicy::PredictedBandwidth => {
                let mut best = 0usize;
                let mut best_score = f64::NEG_INFINITY;
                let mut informed = false;
                for (i, s) in scores.iter().enumerate() {
                    if let Some(p) = s.effective_kbs {
                        if !informed || p > best_score {
                            best = i;
                            best_score = p;
                            informed = true;
                        }
                    }
                }
                if informed {
                    best
                } else {
                    0
                }
            }
            SelectionPolicy::Random(rng) => rng.gen_range(0..scores.len()),
            SelectionPolicy::RoundRobin { next } => {
                let i = *next % scores.len();
                *next = (*next + 1) % scores.len();
                i
            }
            SelectionPolicy::FirstListed => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PhysicalReplica;

    fn scores(preds: &[Option<f64>]) -> Vec<ReplicaScore> {
        preds
            .iter()
            .enumerate()
            .map(|(i, p)| ReplicaScore {
                replica: PhysicalReplica {
                    host: format!("h{i}"),
                    path: "/f".into(),
                    size: 1,
                },
                predicted_kbs: *p,
                effective_kbs: *p,
                rung: p.map(|_| crate::broker::FallbackRung::SizeClass),
                staleness_secs: 0,
            })
            .collect()
    }

    #[test]
    fn predicted_prefers_informed_maximum() {
        let mut p = SelectionPolicy::predicted_bandwidth();
        assert_eq!(p.choose(&scores(&[Some(1.0), Some(5.0), None])), 1);
        assert_eq!(p.choose(&scores(&[None, Some(2.0)])), 1);
        assert_eq!(p.choose(&scores(&[None, None])), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = SelectionPolicy::round_robin();
        let s = scores(&[None, None, None]);
        assert_eq!(p.choose(&s), 0);
        assert_eq!(p.choose(&s), 1);
        assert_eq!(p.choose(&s), 2);
        assert_eq!(p.choose(&s), 0);
    }

    #[test]
    fn random_is_seed_reproducible_and_in_range() {
        let s = scores(&[None, None, None, None]);
        let picks_a: Vec<usize> = {
            let mut p = SelectionPolicy::random(7);
            (0..20).map(|_| p.choose(&s)).collect()
        };
        let picks_b: Vec<usize> = {
            let mut p = SelectionPolicy::random(7);
            (0..20).map(|_| p.choose(&s)).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&i| i < 4));
        // Not degenerate.
        assert!(picks_a.iter().any(|&i| i != picks_a[0]));
    }

    #[test]
    fn first_listed_is_constant() {
        let mut p = SelectionPolicy::first_listed();
        let s = scores(&[Some(1.0), Some(100.0)]);
        assert_eq!(p.choose(&s), 0);
        assert_eq!(p.name(), "first-listed");
    }
}
