//! The replica-selection broker: rank physical replicas by the predicted
//! transfer bandwidth published in the information service.
//!
//! This is the consumer the whole pipeline exists for (§1): a client (or
//! broker acting for it) asks "from which replica can I fetch this file
//! fastest?", the broker queries the GIIS for `GridFTPPerfInfo` entries
//! matching `(cn=<client>, hostname=<candidate server>)`, reads the
//! size-class prediction attribute, and picks the best.

use std::sync::Arc;

use parking_lot::Mutex;
use wanpred_infod::filter;
use wanpred_infod::Giis;
use wanpred_predict::SizeClass;

use crate::catalog::PhysicalReplica;
use crate::policy::SelectionPolicy;

/// A source of per-path performance estimates.
pub trait PerfInfoSource {
    /// Predicted bandwidth (KB/s) for the client pulling `size` bytes
    /// from `server_host`, or `None` when no information exists.
    fn predicted_bandwidth_kbs(
        &mut self,
        client_addr: &str,
        server_host: &str,
        size: u64,
        now_unix: u64,
    ) -> Option<f64>;
}

/// A [`PerfInfoSource`] backed by GIIS inquiries, with the attribute
/// fallback chain: size-class prediction → overall prediction → overall
/// read average.
pub struct GiisPerfSource {
    giis: Arc<Mutex<Giis>>,
}

impl GiisPerfSource {
    /// Wrap a GIIS handle.
    pub fn new(giis: Arc<Mutex<Giis>>) -> Self {
        GiisPerfSource { giis }
    }

    fn class_attr(size: u64) -> &'static str {
        match SizeClass::of_bytes(size) {
            SizeClass::C10MB => "predictrdbandwidthtenmbrange",
            SizeClass::C100MB => "predictrdbandwidthhundredmbrange",
            SizeClass::C500MB => "predictrdbandwidthfivehundredmbrange",
            SizeClass::C1GB => "predictrdbandwidthonegbrange",
        }
    }
}

impl PerfInfoSource for GiisPerfSource {
    fn predicted_bandwidth_kbs(
        &mut self,
        client_addr: &str,
        server_host: &str,
        size: u64,
        now_unix: u64,
    ) -> Option<f64> {
        let f = filter::parse(&format!(
            "(&(objectclass=GridFTPPerfInfo)(cn={client_addr})(hostname={server_host}))"
        ))
        .expect("well-formed filter");
        let entries = self.giis.lock().search(&f, now_unix);
        let e = entries.first()?;
        for attr in [
            Self::class_attr(size),
            "predictrdbandwidth",
            "avgrdbandwidth",
        ] {
            if let Some(v) = e.get(attr) {
                if let Ok(x) = v.parse::<f64>() {
                    return Some(x);
                }
            }
        }
        None
    }
}

/// One replica's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaScore {
    /// The candidate.
    pub replica: PhysicalReplica,
    /// Predicted bandwidth (KB/s), if any information existed.
    pub predicted_kbs: Option<f64>,
}

/// The broker's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Index of the chosen replica within `scores`.
    pub chosen: usize,
    /// Every candidate's score, in catalog order.
    pub scores: Vec<ReplicaScore>,
    /// The policy that made the choice.
    pub policy_name: &'static str,
}

impl Selection {
    /// The chosen replica.
    pub fn replica(&self) -> &PhysicalReplica {
        &self.scores[self.chosen].replica
    }
}

/// The broker.
pub struct Broker<S: PerfInfoSource> {
    source: S,
}

impl<S: PerfInfoSource> Broker<S> {
    /// Build over a performance-information source.
    pub fn new(source: S) -> Self {
        Broker { source }
    }

    /// Evaluate and choose among `replicas` for `client_addr` under the
    /// given policy. Panics if `replicas` is empty (an empty candidate
    /// set is a catalog error the caller must surface).
    pub fn select(
        &mut self,
        client_addr: &str,
        replicas: &[PhysicalReplica],
        policy: &mut SelectionPolicy,
        now_unix: u64,
    ) -> Selection {
        assert!(!replicas.is_empty(), "no replicas to select among");
        let scores: Vec<ReplicaScore> = replicas
            .iter()
            .map(|r| ReplicaScore {
                replica: r.clone(),
                predicted_kbs: self.source.predicted_bandwidth_kbs(
                    client_addr,
                    &r.host,
                    r.size,
                    now_unix,
                ),
            })
            .collect();
        let chosen = policy.choose(&scores);
        Selection {
            chosen,
            scores,
            policy_name: policy.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A canned source for tests.
    pub struct MapSource(pub BTreeMap<String, f64>);

    impl PerfInfoSource for MapSource {
        fn predicted_bandwidth_kbs(
            &mut self,
            _client: &str,
            server: &str,
            _size: u64,
            _now: u64,
        ) -> Option<f64> {
            self.0.get(server).copied()
        }
    }

    fn reps() -> Vec<PhysicalReplica> {
        ["lbl.gov", "isi.edu", "anl.gov"]
            .iter()
            .map(|h| PhysicalReplica {
                host: (*h).into(),
                path: "/f".into(),
                size: 1_000_000,
            })
            .collect()
    }

    #[test]
    fn predicted_policy_picks_fastest() {
        let mut src = BTreeMap::new();
        src.insert("lbl.gov".to_string(), 4_000.0);
        src.insert("isi.edu".to_string(), 9_000.0);
        src.insert("anl.gov".to_string(), 2_000.0);
        let mut b = Broker::new(MapSource(src));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("140.221.65.69", &reps(), &mut policy, 0);
        assert_eq!(sel.replica().host, "isi.edu");
        assert_eq!(sel.policy_name, "predicted-bandwidth");
        assert_eq!(sel.scores.len(), 3);
    }

    #[test]
    fn unknown_servers_rank_last_but_choice_still_made() {
        let mut src = BTreeMap::new();
        src.insert("anl.gov".to_string(), 100.0);
        let mut b = Broker::new(MapSource(src));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("x", &reps(), &mut policy, 0);
        assert_eq!(sel.replica().host, "anl.gov");
    }

    #[test]
    fn no_information_falls_back_to_first() {
        let mut b = Broker::new(MapSource(BTreeMap::new()));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("x", &reps(), &mut policy, 0);
        assert_eq!(sel.chosen, 0);
    }

    #[test]
    #[should_panic]
    fn empty_candidates_panics() {
        let mut b = Broker::new(MapSource(BTreeMap::new()));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        b.select("x", &[], &mut policy, 0);
    }
}
