//! The replica-selection broker: rank physical replicas by the predicted
//! transfer bandwidth published in the information service.
//!
//! This is the consumer the whole pipeline exists for (§1): a client (or
//! broker acting for it) asks "from which replica can I fetch this file
//! fastest?", the broker queries the GIIS for `GridFTPPerfInfo` entries
//! matching `(cn=<client>, hostname=<candidate server>)`, reads the
//! size-class prediction attribute, and picks the best.
//!
//! In degraded mode the broker descends a **fallback ladder** per
//! candidate (DESIGN.md § "Durability and degraded mode"):
//!
//! 1. [`FallbackRung::Tournament`] — the per-pair online tournament
//!    meta-predictor ([`wanpred_predict::PairTournament`]), when the
//!    broker is fed completed transfers directly
//!    ([`Broker::observe_transfer`]). It serves whichever fixed
//!    predictor currently wins the pair's rolling-error race, so it
//!    outranks any single published prediction.
//! 2. [`FallbackRung::SizeClass`] — the per-size-class prediction
//!    attribute (the paper's primary signal).
//! 3. [`FallbackRung::Overall`] — the unclassified prediction or the
//!    overall read average.
//! 4. [`FallbackRung::ProbeForecast`] — an NWS probe forecast for the
//!    path, when a probe source is wired in (the paper's §4 comparison
//!    stream pressed into service as a fallback).
//! 5. [`FallbackRung::StaticPolicy`] — an operator-configured static
//!    bandwidth map.
//!
//! Entries served stale by a degraded GRIS carry `stalenesssecs`; the
//! broker decays their bandwidth by `0.5^(staleness/half_life)` before
//! ranking, so a site with fresh information beats an equally-fast site
//! whose data is an hour old, but stale information still beats none.

use std::collections::BTreeMap;
use std::sync::Arc;

use wanpred_infod::{InquiryRequest, InquiryService, STALENESS_ATTR};
use wanpred_obs::{names, ObsSink};
use wanpred_predict::{Observation, PairTournament, SizeClass, TournamentOptions};

use crate::catalog::{PhysicalReplica, ReplicaError};
use crate::policy::SelectionPolicy;

/// Which rung of the fallback ladder produced an estimate. The derived
/// order is ladder order: `Tournament` ranks before (better than)
/// `SizeClass`, and so on down to `StaticPolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FallbackRung {
    /// Per-pair online tournament fed by the broker's own observations.
    Tournament,
    /// Per-size-class prediction from the information service.
    SizeClass,
    /// Overall (unclassified) prediction or read average.
    Overall,
    /// NWS probe forecast for the client-server path.
    ProbeForecast,
    /// Operator-configured static bandwidth.
    StaticPolicy,
}

impl FallbackRung {
    /// Display name (bench/report labels).
    pub fn name(self) -> &'static str {
        match self {
            FallbackRung::Tournament => "tournament",
            FallbackRung::SizeClass => "size-class",
            FallbackRung::Overall => "overall",
            FallbackRung::ProbeForecast => "probe-forecast",
            FallbackRung::StaticPolicy => "static-policy",
        }
    }
}

/// A bandwidth estimate with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfEstimate {
    /// Estimated bandwidth, KB/s.
    pub kbs: f64,
    /// Which ladder rung produced it.
    pub rung: FallbackRung,
    /// Age of the underlying data when served stale (0 when fresh).
    pub staleness_secs: u64,
}

/// A source of per-path performance estimates.
pub trait PerfInfoSource {
    /// Estimated bandwidth for the client pulling `size` bytes from
    /// `server_host`, or `None` when no information exists.
    fn estimate(
        &mut self,
        client_addr: &str,
        server_host: &str,
        size: u64,
        now_unix: u64,
    ) -> Option<PerfEstimate>;
}

/// A source of NWS-style probe forecasts for a network path — the
/// broker's third ladder rung when the information service has nothing.
pub trait ProbeForecastSource {
    /// Forecast bandwidth (KB/s) for the path, or `None`.
    fn forecast_kbs(&mut self, client_addr: &str, server_host: &str, now_unix: u64) -> Option<f64>;
}

/// A [`ProbeForecastSource`] over a table of per-path forecasts, fed by
/// whatever runs the probes (the campaign driver updates it from its NWS
/// forecaster battery).
#[derive(Debug, Clone, Default)]
pub struct ProbeForecastTable {
    forecasts: BTreeMap<(String, String), f64>,
}

impl ProbeForecastTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the latest forecast for a `(client, server)` path.
    pub fn set(&mut self, client_addr: &str, server_host: &str, kbs: f64) {
        self.forecasts
            .insert((client_addr.to_string(), server_host.to_string()), kbs);
    }

    /// Paths currently known.
    pub fn len(&self) -> usize {
        self.forecasts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.forecasts.is_empty()
    }
}

impl ProbeForecastSource for ProbeForecastTable {
    fn forecast_kbs(&mut self, client_addr: &str, server_host: &str, _now: u64) -> Option<f64> {
        self.forecasts
            .get(&(client_addr.to_string(), server_host.to_string()))
            .copied()
    }
}

/// A [`PerfInfoSource`] backed by information-service inquiries, with
/// the attribute fallback chain: size-class prediction → overall
/// prediction → overall read average. Entries stamped `stalenesssecs`
/// by a degraded GRIS surface that age in the estimate.
///
/// Any [`InquiryService`] serves: a `Giis`, a `Gris`, or the sharded
/// serving layer — the broker is agnostic to which tier answers.
pub struct GiisPerfSource {
    svc: Arc<dyn InquiryService>,
}

impl GiisPerfSource {
    /// Wrap an inquiry-service handle (e.g. `Arc<Giis>` or
    /// `Arc<ShardedServer>`).
    pub fn new(svc: Arc<dyn InquiryService>) -> Self {
        GiisPerfSource { svc }
    }

    fn class_attr(size: u64) -> &'static str {
        match SizeClass::of_bytes(size) {
            SizeClass::C10MB => "predictrdbandwidthtenmbrange",
            SizeClass::C100MB => "predictrdbandwidthhundredmbrange",
            SizeClass::C500MB => "predictrdbandwidthfivehundredmbrange",
            SizeClass::C1GB => "predictrdbandwidthonegbrange",
        }
    }
}

impl PerfInfoSource for GiisPerfSource {
    fn estimate(
        &mut self,
        client_addr: &str,
        server_host: &str,
        size: u64,
        now_unix: u64,
    ) -> Option<PerfEstimate> {
        let req = InquiryRequest::parse(
            &format!("(&(objectclass=GridFTPPerfInfo)(cn={client_addr})(hostname={server_host}))"),
            now_unix,
        )
        .expect("well-formed filter");
        // Overloaded (or otherwise failing) service: no estimate, so the
        // caller descends the fallback ladder instead of stalling.
        let entries = self.svc.inquire(&req).ok()?.entries;
        let e = entries.first()?;
        let staleness_secs = e
            .get(STALENESS_ATTR)
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        for (attr, rung) in [
            (Self::class_attr(size), FallbackRung::SizeClass),
            ("predictrdbandwidth", FallbackRung::Overall),
            ("avgrdbandwidth", FallbackRung::Overall),
        ] {
            if let Some(v) = e.get(attr) {
                if let Ok(kbs) = v.parse::<f64>() {
                    return Some(PerfEstimate {
                        kbs,
                        rung,
                        staleness_secs,
                    });
                }
            }
        }
        None
    }
}

/// A source with no information of its own: every estimate falls
/// through to the lower ladder rungs. For brokers fed exclusively by
/// their own observed transfers (the tournament rung) plus static
/// priors — the co-allocating campaign client, for example.
pub struct NoPerfInfo;

impl PerfInfoSource for NoPerfInfo {
    fn estimate(
        &mut self,
        _client_addr: &str,
        _server_host: &str,
        _size: u64,
        _now_unix: u64,
    ) -> Option<PerfEstimate> {
        None
    }
}

/// One replica's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaScore {
    /// The candidate.
    pub replica: PhysicalReplica,
    /// Estimated bandwidth (KB/s) as produced, if any rung answered.
    pub predicted_kbs: Option<f64>,
    /// Estimated bandwidth after the staleness decay — what ranking
    /// actually uses.
    pub effective_kbs: Option<f64>,
    /// Which ladder rung answered.
    pub rung: Option<FallbackRung>,
    /// Age of the information when served stale (0 when fresh).
    pub staleness_secs: u64,
}

/// The broker's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Index of the chosen replica within `scores`.
    pub chosen: usize,
    /// Every candidate's score, in catalog order.
    pub scores: Vec<ReplicaScore>,
    /// The policy that made the choice.
    pub policy_name: &'static str,
}

impl Selection {
    /// The chosen replica.
    pub fn replica(&self) -> &PhysicalReplica {
        &self.scores[self.chosen].replica
    }

    /// Whether any candidate was scored from stale or fallback (probe /
    /// static) information — the selection ran in degraded mode.
    ///
    /// Tournament estimates are exempt from the staleness clause: their
    /// `staleness_secs` is simply the age of the path's newest transfer
    /// (normal operation for a source the broker feeds itself), whereas
    /// for information-service rungs it marks a GRIS serving cached data
    /// past a failed refresh.
    pub fn degraded(&self) -> bool {
        scores_degraded(&self.scores)
    }
}

/// A ranked top-k decision: the same scored candidate set as
/// [`Selection`], with the `k` best indices in preference order instead
/// of a single winner. Produced by [`Broker::select_top_k`] for
/// co-allocating clients that stripe one file across several sources.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSelection {
    /// Indices into `scores`, best first; `ranked.len() = min(k, candidates)`.
    pub ranked: Vec<usize>,
    /// Every candidate's score, in catalog order.
    pub scores: Vec<ReplicaScore>,
    /// The policy that made the choices.
    pub policy_name: &'static str,
}

impl TopKSelection {
    /// The chosen replicas, best first.
    pub fn replicas(&self) -> impl Iterator<Item = &PhysicalReplica> {
        self.ranked.iter().map(move |&i| &self.scores[i].replica)
    }

    /// The chosen scores, best first.
    pub fn chosen_scores(&self) -> impl Iterator<Item = &ReplicaScore> {
        self.ranked.iter().map(move |&i| &self.scores[i])
    }

    /// The top-ranked candidate's score.
    pub fn best(&self) -> &ReplicaScore {
        let &i = self
            .ranked
            .first()
            .expect("select_top_k never returns an empty ranking");
        self.scores
            .get(i)
            .expect("ranked entries index into scores")
    }

    /// Same degraded-mode criterion as [`Selection::degraded`].
    pub fn degraded(&self) -> bool {
        scores_degraded(&self.scores)
    }
}

/// Shared degraded-mode criterion (see [`Selection::degraded`]).
fn scores_degraded(scores: &[ReplicaScore]) -> bool {
    scores.iter().any(|s| {
        (s.staleness_secs > 0 && s.rung != Some(FallbackRung::Tournament))
            || matches!(
                s.rung,
                Some(FallbackRung::ProbeForecast | FallbackRung::StaticPolicy)
            )
    })
}

/// Half-life of stale information in the ranking decay (10 minutes —
/// the order of a GRIS registration lifetime).
pub const DEFAULT_STALENESS_HALF_LIFE_SECS: u64 = 600;

/// The broker.
pub struct Broker<S: PerfInfoSource> {
    source: S,
    tournament: Option<PairTournament>,
    probe_source: Option<Box<dyn ProbeForecastSource + Send>>,
    static_kbs: BTreeMap<String, f64>,
    staleness_half_life_secs: u64,
    obs: ObsSink,
}

impl<S: PerfInfoSource> Broker<S> {
    /// Build over a performance-information source.
    pub fn new(source: S) -> Self {
        Broker {
            source,
            tournament: None,
            probe_source: None,
            static_kbs: BTreeMap::new(),
            staleness_half_life_secs: DEFAULT_STALENESS_HALF_LIFE_SECS,
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink: selection counts, per-rung tallies,
    /// candidate-set and staleness histograms, and a span per selection
    /// keyed on the inquiry clock.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Attach a per-pair tournament meta-predictor as the ladder's top
    /// rung. The broker must then be fed completed transfers through
    /// [`observe_transfer`](Broker::observe_transfer); pairs with no
    /// observations fall through to the information-service rungs.
    pub fn with_tournament(mut self, opts: TournamentOptions) -> Self {
        self.tournament = Some(PairTournament::new(opts));
        self
    }

    /// Feed one completed transfer on a `(client, server)` path to the
    /// tournament rung. A no-op when no tournament is attached.
    pub fn observe_transfer(&mut self, client_addr: &str, server_host: &str, o: Observation) {
        if let Some(t) = self.tournament.as_mut() {
            t.observe(client_addr, server_host, o);
        }
    }

    /// The attached tournament, if any (bench/report introspection).
    pub fn tournament(&self) -> Option<&PairTournament> {
        self.tournament.as_ref()
    }

    /// Wire in an NWS probe-forecast fallback (third ladder rung).
    pub fn with_probe_source(mut self, probes: Box<dyn ProbeForecastSource + Send>) -> Self {
        self.probe_source = Some(probes);
        self
    }

    /// Configure a static per-host bandwidth (fourth ladder rung).
    pub fn with_static_kbs(mut self, server_host: impl Into<String>, kbs: f64) -> Self {
        self.static_kbs.insert(server_host.into(), kbs);
        self
    }

    /// Override the staleness decay half-life.
    pub fn with_staleness_half_life(mut self, secs: u64) -> Self {
        self.staleness_half_life_secs = secs.max(1);
        self
    }

    /// Descend the ladder for one candidate.
    fn estimate(
        &mut self,
        client_addr: &str,
        server_host: &str,
        size: u64,
        now_unix: u64,
    ) -> Option<PerfEstimate> {
        if let Some(pt) = self.tournament.as_ref() {
            if let Some(t) = pt.tournament(client_addr, server_host) {
                if let Some((_, kbs)) = t.predict(now_unix, size) {
                    // The estimate's age is the time since the path's
                    // newest transfer; the ranking decay treats it like
                    // any other aging information.
                    let staleness_secs = t
                        .last_observed_at()
                        .map_or(0, |at| now_unix.saturating_sub(at));
                    return Some(PerfEstimate {
                        kbs,
                        rung: FallbackRung::Tournament,
                        staleness_secs,
                    });
                }
            }
        }
        if let Some(e) = self
            .source
            .estimate(client_addr, server_host, size, now_unix)
        {
            return Some(e);
        }
        if let Some(p) = self.probe_source.as_mut() {
            if let Some(kbs) = p.forecast_kbs(client_addr, server_host, now_unix) {
                return Some(PerfEstimate {
                    kbs,
                    rung: FallbackRung::ProbeForecast,
                    staleness_secs: 0,
                });
            }
        }
        self.static_kbs.get(server_host).map(|&kbs| PerfEstimate {
            kbs,
            rung: FallbackRung::StaticPolicy,
            staleness_secs: 0,
        })
    }

    /// Score every candidate once, descending the ladder per replica.
    /// This is the single place the per-rung observability counters are
    /// incremented, so a query tallies each candidate exactly once no
    /// matter how many winners the caller asks for.
    fn score_candidates(
        &mut self,
        client_addr: &str,
        replicas: &[PhysicalReplica],
        now_unix: u64,
    ) -> Vec<ReplicaScore> {
        let half_life = self.staleness_half_life_secs as f64;
        replicas
            .iter()
            .map(|r| {
                let est = self.estimate(client_addr, &r.host, r.size, now_unix);
                if let Some(e) = est {
                    self.obs.inc(match e.rung {
                        FallbackRung::Tournament => names::REPLICA_BROKER_RUNG_TOURNAMENT,
                        FallbackRung::SizeClass => names::REPLICA_BROKER_RUNG_SIZE_CLASS,
                        FallbackRung::Overall => names::REPLICA_BROKER_RUNG_OVERALL,
                        FallbackRung::ProbeForecast => names::REPLICA_BROKER_RUNG_PROBE,
                        FallbackRung::StaticPolicy => names::REPLICA_BROKER_RUNG_STATIC,
                    });
                    self.obs
                        .observe(names::REPLICA_BROKER_STALENESS_SECS, e.staleness_secs);
                }
                let effective =
                    est.map(|e| e.kbs * 0.5f64.powf(e.staleness_secs as f64 / half_life));
                ReplicaScore {
                    replica: r.clone(),
                    predicted_kbs: est.map(|e| e.kbs),
                    effective_kbs: effective,
                    rung: est.map(|e| e.rung),
                    staleness_secs: est.map_or(0, |e| e.staleness_secs),
                }
            })
            .collect()
    }

    /// Evaluate and choose among `replicas` for `client_addr` under the
    /// given policy. An empty candidate set is a catalog error
    /// ([`ReplicaError::NoCandidates`]), not a panic.
    pub fn select(
        &mut self,
        client_addr: &str,
        replicas: &[PhysicalReplica],
        policy: &mut SelectionPolicy,
        now_unix: u64,
    ) -> Result<Selection, ReplicaError> {
        let top = self.select_top_k(client_addr, replicas, policy, 1, now_unix)?;
        let chosen = *top
            .ranked
            .first()
            .expect("select_top_k with k >= 1 ranks at least one candidate");
        Ok(Selection {
            chosen,
            scores: top.scores,
            policy_name: top.policy_name,
        })
    }

    /// Evaluate once and rank the `min(k, candidates)` best replicas in
    /// preference order. Candidates are scored — and the per-rung
    /// observability counters incremented — exactly once per query
    /// regardless of `k`; the policy is then applied repeatedly to the
    /// not-yet-picked remainder, so every policy (predicted-bandwidth,
    /// round-robin, random, first-listed) extends naturally to k > 1.
    /// `k = 0` is treated as 1. [`Broker::select`] is the k = 1 wrapper.
    pub fn select_top_k(
        &mut self,
        client_addr: &str,
        replicas: &[PhysicalReplica],
        policy: &mut SelectionPolicy,
        k: usize,
        now_unix: u64,
    ) -> Result<TopKSelection, ReplicaError> {
        if replicas.is_empty() {
            return Err(ReplicaError::NoCandidates);
        }
        self.obs.inc(names::REPLICA_BROKER_SELECTIONS);
        self.obs
            .observe(names::REPLICA_BROKER_CANDIDATES, replicas.len() as u64);
        self.obs
            .span_enter(names::REPLICA_BROKER_SELECT, now_unix * 1_000_000);
        let scores = self.score_candidates(client_addr, replicas, now_unix);
        let k = k.max(1).min(scores.len());
        let mut remaining: Vec<usize> = (0..scores.len()).collect();
        let mut ranked = Vec::with_capacity(k);
        while ranked.len() < k {
            let view: Vec<ReplicaScore> = remaining.iter().map(|&i| scores[i].clone()).collect();
            let pick = policy.choose(&view);
            ranked.push(remaining.remove(pick));
        }
        let selection = TopKSelection {
            ranked,
            scores,
            policy_name: policy.name(),
        };
        if selection.degraded() {
            self.obs.inc(names::REPLICA_BROKER_DEGRADED);
        }
        self.obs
            .span_exit(names::REPLICA_BROKER_SELECT, now_unix * 1_000_000);
        Ok(selection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A canned source for tests: fresh size-class estimates per host.
    pub struct MapSource(pub BTreeMap<String, f64>);

    impl PerfInfoSource for MapSource {
        fn estimate(
            &mut self,
            _client: &str,
            server: &str,
            _size: u64,
            _now: u64,
        ) -> Option<PerfEstimate> {
            self.0.get(server).map(|&kbs| PerfEstimate {
                kbs,
                rung: FallbackRung::SizeClass,
                staleness_secs: 0,
            })
        }
    }

    /// A canned source with per-host staleness.
    struct StaleSource(BTreeMap<String, (f64, u64)>);

    impl PerfInfoSource for StaleSource {
        fn estimate(
            &mut self,
            _client: &str,
            server: &str,
            _size: u64,
            _now: u64,
        ) -> Option<PerfEstimate> {
            self.0
                .get(server)
                .map(|&(kbs, staleness_secs)| PerfEstimate {
                    kbs,
                    rung: FallbackRung::SizeClass,
                    staleness_secs,
                })
        }
    }

    fn reps() -> Vec<PhysicalReplica> {
        ["lbl.gov", "isi.edu", "anl.gov"]
            .iter()
            .map(|h| PhysicalReplica {
                host: (*h).into(),
                path: "/f".into(),
                size: 1_000_000,
            })
            .collect()
    }

    #[test]
    fn predicted_policy_picks_fastest() {
        let mut src = BTreeMap::new();
        src.insert("lbl.gov".to_string(), 4_000.0);
        src.insert("isi.edu".to_string(), 9_000.0);
        src.insert("anl.gov".to_string(), 2_000.0);
        let mut b = Broker::new(MapSource(src));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("140.221.65.69", &reps(), &mut policy, 0).unwrap();
        assert_eq!(sel.replica().host, "isi.edu");
        assert_eq!(sel.policy_name, "predicted-bandwidth");
        assert_eq!(sel.scores.len(), 3);
        assert!(!sel.degraded());
    }

    #[test]
    fn unknown_servers_rank_last_but_choice_still_made() {
        let mut src = BTreeMap::new();
        src.insert("anl.gov".to_string(), 100.0);
        let mut b = Broker::new(MapSource(src));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("x", &reps(), &mut policy, 0).unwrap();
        assert_eq!(sel.replica().host, "anl.gov");
    }

    #[test]
    fn no_information_falls_back_to_first() {
        let mut b = Broker::new(MapSource(BTreeMap::new()));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("x", &reps(), &mut policy, 0).unwrap();
        assert_eq!(sel.chosen, 0);
    }

    #[test]
    fn empty_candidates_is_an_error_not_a_panic() {
        let mut b = Broker::new(MapSource(BTreeMap::new()));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let err = b.select("x", &[], &mut policy, 0).unwrap_err();
        assert!(matches!(err, ReplicaError::NoCandidates));
    }

    #[test]
    fn staleness_decays_the_ranking_but_not_the_reported_prediction() {
        // lbl is slightly faster on paper but its data is an hour old;
        // isi's fresh 7000 beats lbl's decayed 8000.
        let mut src = BTreeMap::new();
        src.insert("lbl.gov".to_string(), (8_000.0, 3_600));
        src.insert("isi.edu".to_string(), (7_000.0, 0));
        let mut b = Broker::new(StaleSource(src));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("c", &reps()[..2], &mut policy, 0).unwrap();
        assert_eq!(sel.replica().host, "isi.edu");
        assert!(sel.degraded());
        let lbl = &sel.scores[0];
        assert_eq!(lbl.predicted_kbs, Some(8_000.0));
        // 3600s at 600s half-life: 2^-6 = 1/64 of the original.
        assert!((lbl.effective_kbs.unwrap() - 8_000.0 / 64.0).abs() < 1e-6);
        assert_eq!(lbl.staleness_secs, 3_600);
    }

    #[test]
    fn probe_forecast_rung_fills_information_gaps() {
        // The info service knows only anl; probes know isi; lbl is
        // covered by static policy. All three rungs coexist in one
        // selection and the best *effective* estimate wins.
        let mut src = BTreeMap::new();
        src.insert("anl.gov".to_string(), 2_000.0);
        let mut probes = ProbeForecastTable::new();
        probes.set("c", "isi.edu", 6_000.0);
        let mut b = Broker::new(MapSource(src))
            .with_probe_source(Box::new(probes))
            .with_static_kbs("lbl.gov", 500.0);
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("c", &reps(), &mut policy, 0).unwrap();
        assert_eq!(sel.replica().host, "isi.edu");
        assert!(sel.degraded());
        let rungs: Vec<Option<FallbackRung>> = sel.scores.iter().map(|s| s.rung).collect();
        assert_eq!(
            rungs,
            vec![
                Some(FallbackRung::StaticPolicy),
                Some(FallbackRung::ProbeForecast),
                Some(FallbackRung::SizeClass),
            ]
        );
    }

    #[test]
    fn tournament_rung_outranks_the_information_service() {
        // The GIIS publishes a slow estimate for lbl, but the broker's
        // own observed transfers on that path say otherwise: the
        // tournament rung answers first and wins the selection.
        let mut src = BTreeMap::new();
        src.insert("lbl.gov".to_string(), 500.0);
        src.insert("isi.edu".to_string(), 2_000.0);
        let mut b = Broker::new(MapSource(src)).with_tournament(TournamentOptions {
            training: 2,
            window: 10,
            ..TournamentOptions::default()
        });
        for i in 0..10u64 {
            b.observe_transfer(
                "c",
                "lbl.gov",
                Observation::new(1_000 + i * 60, 8_000.0, 1_000_000),
            );
        }
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("c", &reps()[..2], &mut policy, 1_600).unwrap();
        assert_eq!(sel.replica().host, "lbl.gov");
        let lbl = &sel.scores[0];
        assert_eq!(lbl.rung, Some(FallbackRung::Tournament));
        assert!((lbl.predicted_kbs.unwrap() - 8_000.0).abs() < 1e-6);
        // 60 s since the path's newest transfer: a mild ranking decay,
        // not a degraded selection.
        assert_eq!(lbl.staleness_secs, 60);
        assert!(lbl.effective_kbs.unwrap() < lbl.predicted_kbs.unwrap());
        assert!(!sel.degraded());
        // The unobserved pair fell through to the information service.
        assert_eq!(sel.scores[1].rung, Some(FallbackRung::SizeClass));
    }

    #[test]
    fn old_tournament_data_decays_below_fresh_information() {
        // lbl's observed transfers are an hour old; isi's fresh GIIS
        // estimate outranks the decayed tournament serve.
        let mut src = BTreeMap::new();
        src.insert("isi.edu".to_string(), 4_000.0);
        let mut b = Broker::new(MapSource(src)).with_tournament(TournamentOptions {
            training: 2,
            window: 10,
            ..TournamentOptions::default()
        });
        for i in 0..10u64 {
            b.observe_transfer(
                "c",
                "lbl.gov",
                Observation::new(1_000 + i * 60, 8_000.0, 1_000_000),
            );
        }
        let now = 1_540 + 3_600;
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("c", &reps()[..2], &mut policy, now).unwrap();
        assert_eq!(sel.replica().host, "isi.edu");
        let lbl = &sel.scores[0];
        assert_eq!(lbl.rung, Some(FallbackRung::Tournament));
        assert_eq!(lbl.staleness_secs, 3_600);
        // 3600 s at the 600 s half-life: 2^-6 of the raw estimate.
        assert!((lbl.effective_kbs.unwrap() - 8_000.0 / 64.0).abs() < 1e-6);
        assert!(!sel.degraded());
    }

    #[test]
    fn tournament_rung_is_first_in_ladder_order() {
        assert!(FallbackRung::Tournament < FallbackRung::SizeClass);
        assert!(FallbackRung::SizeClass < FallbackRung::Overall);
        assert!(FallbackRung::Overall < FallbackRung::ProbeForecast);
        assert!(FallbackRung::ProbeForecast < FallbackRung::StaticPolicy);
        assert_eq!(FallbackRung::Tournament.name(), "tournament");
    }

    #[test]
    fn static_policy_is_the_last_resort() {
        let mut b = Broker::new(MapSource(BTreeMap::new())).with_static_kbs("isi.edu", 1_000.0);
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = b.select("c", &reps(), &mut policy, 0).unwrap();
        assert_eq!(sel.replica().host, "isi.edu");
        assert_eq!(sel.scores[1].rung, Some(FallbackRung::StaticPolicy));
    }

    fn map_broker() -> Broker<MapSource> {
        let mut src = BTreeMap::new();
        src.insert("lbl.gov".to_string(), 4_000.0);
        src.insert("isi.edu".to_string(), 9_000.0);
        src.insert("anl.gov".to_string(), 2_000.0);
        Broker::new(MapSource(src))
    }

    #[test]
    fn top_k_ranks_by_effective_bandwidth() {
        let mut b = map_broker();
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let top = b.select_top_k("c", &reps(), &mut policy, 2, 0).unwrap();
        let hosts: Vec<&str> = top.replicas().map(|r| r.host.as_str()).collect();
        assert_eq!(hosts, ["isi.edu", "lbl.gov"]);
        assert_eq!(top.best().replica.host, "isi.edu");
        assert_eq!(top.scores.len(), 3, "every candidate stays scored");
        assert!(!top.degraded());
    }

    #[test]
    fn top_k_clamps_to_candidate_count_and_treats_zero_as_one() {
        let mut b = map_broker();
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let all = b.select_top_k("c", &reps(), &mut policy, 99, 0).unwrap();
        assert_eq!(
            all.replicas().count(),
            3,
            "k above the candidate count returns every replica ranked"
        );
        let one = b.select_top_k("c", &reps(), &mut policy, 0, 0).unwrap();
        assert_eq!(one.ranked.len(), 1);
        assert!(b
            .select_top_k("c", &[], &mut policy, 2, 0)
            .is_err_and(|e| matches!(e, ReplicaError::NoCandidates)));
    }

    #[test]
    fn top_k_agrees_with_select_on_the_winner() {
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let sel = map_broker().select("c", &reps(), &mut policy, 0).unwrap();
        let top = map_broker()
            .select_top_k("c", &reps(), &mut policy, 3, 0)
            .unwrap();
        assert_eq!(sel.chosen, top.ranked[0]);
        assert_eq!(sel.scores, top.scores);
    }

    #[test]
    fn round_robin_top_k_covers_without_repeats() {
        let mut b = map_broker();
        let mut policy = SelectionPolicy::round_robin();
        let top = b.select_top_k("c", &reps(), &mut policy, 3, 0).unwrap();
        let mut seen = top.ranked.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "each replica picked exactly once");
    }

    /// Regression for the k>1 metrics bug: candidates are scored (and
    /// per-rung counters incremented) once per query, so a k=2 query
    /// tallies exactly what a k=1 query does.
    #[test]
    fn top_k_increments_rung_counters_once_per_candidate() {
        let counters_after = |k: usize| {
            let mut b = map_broker();
            let obs = ObsSink::enabled();
            b.set_obs(obs.clone());
            let mut policy = SelectionPolicy::predicted_bandwidth();
            b.select_top_k("c", &reps(), &mut policy, k, 0).unwrap();
            obs.snapshot()
        };
        let one = counters_after(1);
        let two = counters_after(2);
        for name in [
            names::REPLICA_BROKER_SELECTIONS,
            names::REPLICA_BROKER_RUNG_SIZE_CLASS,
            names::REPLICA_BROKER_RUNG_TOURNAMENT,
            names::REPLICA_BROKER_RUNG_STATIC,
        ] {
            assert_eq!(
                one.counter(name),
                two.counter(name),
                "{name} must not scale with k"
            );
        }
        assert_eq!(two.counter(names::REPLICA_BROKER_RUNG_SIZE_CLASS), 3);
    }
}
