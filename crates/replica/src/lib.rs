//! # wanpred-replica
//!
//! Replica selection — the application the paper's predictive framework
//! serves (§1): a [`catalog::ReplicaCatalog`] resolving logical files to
//! physical copies, a [`broker::Broker`] ranking the copies by the
//! predicted transfer bandwidth published through the information
//! service, baseline [`policy::SelectionPolicy`]s (random, round-robin,
//! first-listed) for the ablation benches, and a
//! [`coalloc::Coallocator`] that closes the loop: it stripes one file
//! across the broker's top-k sources, monitors each stripe against its
//! prediction, and re-plans the remaining byte range of a degraded or
//! dead source onto the survivors without re-fetching a byte.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod broker;
pub mod catalog;
pub mod coalloc;
pub mod policy;

pub use broker::{
    Broker, FallbackRung, GiisPerfSource, NoPerfInfo, PerfEstimate, PerfInfoSource,
    ProbeForecastSource, ProbeForecastTable, ReplicaScore, Selection, TopKSelection,
    DEFAULT_STALENESS_HALF_LIFE_SECS,
};
pub use catalog::{PhysicalReplica, ReplicaCatalog, ReplicaError};
pub use coalloc::{
    plan_chunks, CoallocEvent, CoallocPolicy, CoallocRequest, CoallocSource, Coallocator,
    CompletedCoalloc, FailedCoalloc, StripeReport,
};
pub use policy::SelectionPolicy;

#[cfg(test)]
mod integration_tests {
    //! End-to-end: logs -> provider -> GRIS -> GIIS -> broker.

    use std::sync::Arc;

    use parking_lot::Mutex;
    use wanpred_infod::{Dn, Giis, GridFtpPerfProvider, Gris, ProviderConfig, Registration};
    use wanpred_logfmt::{Operation, TransferLog, TransferRecordBuilder};

    use crate::*;

    fn log_with_bandwidth(client: &str, host: &str, kbs: f64) -> TransferLog {
        let mut log = TransferLog::new();
        // 30 records of ~kbs KB/s for 100MB-class files.
        for i in 0..30u64 {
            let secs = 102_400_000.0 / (kbs * 1_000.0);
            log.append(
                TransferRecordBuilder::new()
                    .source(client)
                    .host(host)
                    .file_name("/home/ftp/vazhkuda/100MB")
                    .file_size(102_400_000)
                    .volume("/home/ftp")
                    .start_unix(1_000_000 + i * 3_600)
                    .end_unix(1_000_000 + i * 3_600 + secs as u64)
                    .total_time_s(secs)
                    .streams(8)
                    .tcp_buffer(1_000_000)
                    .operation(Operation::Read)
                    .build()
                    .unwrap(),
            );
        }
        log
    }

    fn gris_for(host: &str, client: &str, kbs: f64) -> Arc<Mutex<Gris>> {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(GridFtpPerfProvider::from_snapshot(
            ProviderConfig::new(host, "0.0.0.0"),
            log_with_bandwidth(client, host, kbs),
        )));
        Arc::new(Mutex::new(g))
    }

    #[test]
    fn broker_selects_the_faster_site_end_to_end() {
        let client = "140.221.65.69";
        let giis = Arc::new(Giis::new("top"));
        for (host, kbs) in [("dpsslx04.lbl.gov", 7_500.0), ("jet.isi.edu", 3_000.0)] {
            giis.register(
                Registration {
                    id: host.to_string(),
                    ttl_secs: 3_600,
                },
                gris_for(host, client, kbs),
                1_200_000,
            );
        }

        let mut catalog = ReplicaCatalog::new();
        for host in ["jet.isi.edu", "dpsslx04.lbl.gov"] {
            catalog
                .register(
                    "lfn://exp/100MB",
                    PhysicalReplica {
                        host: host.into(),
                        path: "/home/ftp/vazhkuda/100MB".into(),
                        size: 102_400_000,
                    },
                )
                .unwrap();
        }

        let mut broker = Broker::new(GiisPerfSource::new(giis));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let reps = catalog.lookup("lfn://exp/100MB").unwrap();
        let sel = broker
            .select(client, reps, &mut policy, 1_200_000)
            .expect("candidates exist");
        assert_eq!(sel.replica().host, "dpsslx04.lbl.gov");
        // Both candidates were scored with real numbers.
        assert!(sel.scores.iter().all(|s| s.predicted_kbs.is_some()));
        let lbl = sel
            .scores
            .iter()
            .find(|s| s.replica.host == "dpsslx04.lbl.gov")
            .unwrap();
        assert!((lbl.predicted_kbs.unwrap() - 7_500.0).abs() < 100.0);
    }

    #[test]
    fn unknown_client_gets_no_predictions_but_a_choice() {
        let giis = Arc::new(Giis::new("top"));
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 3_600,
            },
            gris_for("dpsslx04.lbl.gov", "140.221.65.69", 5_000.0),
            0,
        );
        let mut broker = Broker::new(GiisPerfSource::new(giis));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let reps = vec![PhysicalReplica {
            host: "dpsslx04.lbl.gov".into(),
            path: "/f".into(),
            size: 1,
        }];
        let sel = broker
            .select("10.0.0.1", &reps, &mut policy, 10)
            .expect("candidates exist");
        assert_eq!(sel.chosen, 0);
        assert!(sel.scores[0].predicted_kbs.is_none());
    }

    #[test]
    fn failing_provider_degrades_to_stale_then_probe_forecast() {
        // A GRIS whose provider reads a log *file*: once warm, delete the
        // file — refreshes fail, the GRIS serves stale-stamped entries,
        // and the broker keeps selecting (with decayed ranking). A second
        // site with no information at all is covered by the probe rung.
        let client = "140.221.65.69";
        let dir = std::env::temp_dir().join(format!("wanpred-degraded-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lbl.ulm");
        log_with_bandwidth(client, "dpsslx04.lbl.gov", 7_500.0)
            .save_ulm_checksummed(&path)
            .unwrap();

        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(GridFtpPerfProvider::from_file(
            ProviderConfig::new("dpsslx04.lbl.gov", "0.0.0.0"),
            &path,
        )));
        let giis = Arc::new(Giis::new("top"));
        giis.register_service(
            Registration {
                id: "lbl".into(),
                ttl_secs: 1_000_000,
            },
            Arc::new(g),
            1_200_000,
        );

        let mut probes = ProbeForecastTable::new();
        probes.set(client, "jet.isi.edu", 2_000.0);
        let mut broker = Broker::new(GiisPerfSource::new(giis)).with_probe_source(Box::new(probes));
        let mut policy = SelectionPolicy::predicted_bandwidth();
        let reps = vec![
            PhysicalReplica {
                host: "dpsslx04.lbl.gov".into(),
                path: "/home/ftp/vazhkuda/100MB".into(),
                size: 102_400_000,
            },
            PhysicalReplica {
                host: "jet.isi.edu".into(),
                path: "/home/ftp/vazhkuda/100MB".into(),
                size: 102_400_000,
            },
        ];

        // Warm: fresh information wins outright.
        let warm = broker
            .select(client, &reps, &mut policy, 1_200_000)
            .expect("candidates exist");
        assert_eq!(warm.replica().host, "dpsslx04.lbl.gov");
        assert_eq!(warm.scores[0].staleness_secs, 0);

        // Kill the log; past the provider TTL the refresh fails and the
        // cached entries come back stale-stamped — but a selection is
        // still made, never a panic.
        std::fs::remove_file(&path).unwrap();
        let later = 1_200_000 + 120;
        let degraded = broker
            .select(client, &reps, &mut policy, later)
            .expect("degraded mode still selects");
        assert!(degraded.degraded());
        assert_eq!(degraded.replica().host, "dpsslx04.lbl.gov");
        let lbl = &degraded.scores[0];
        assert_eq!(lbl.staleness_secs, 120);
        assert!(lbl.effective_kbs.unwrap() < lbl.predicted_kbs.unwrap());
        assert_eq!(degraded.scores[1].rung, Some(FallbackRung::ProbeForecast));
        std::fs::remove_dir_all(&dir).ok();
    }
}
