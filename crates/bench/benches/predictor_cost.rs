//! §6.2 cost claim: the AR (degenerate ARIMA) technique "can have a much
//! greater computational cost" than means/medians. Measures one
//! prediction over realistic history lengths for each estimator family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wanpred_obs::ObsSink;
use wanpred_predict::prelude::*;

fn history(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| Observation {
            at_unix: 1_000_000 + i as u64 * 1_800,
            bandwidth_kbs: 4_000.0 + 2_500.0 * ((i as f64 * 0.7).sin()),
            file_size: [1, 10, 100, 500, 1000][i % 5] * PAPER_MB,
            streams: 1,
            tcp_buffer: 0,
        })
        .collect()
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor_cost");
    for &n in &[50usize, 400, 2_000] {
        let h = history(n);
        let now = h.last().unwrap().at_unix + 60;
        let preds: Vec<Box<dyn Predictor>> = vec![
            Box::new(LastValue::new()),
            Box::new(MeanPredictor::new(Window::All)),
            Box::new(MeanPredictor::new(Window::LastN(25))),
            Box::new(MedianPredictor::new(Window::All)),
            Box::new(MedianPredictor::new(Window::LastN(25))),
            Box::new(ArPredictor::new(Window::All)),
            Box::new(ArPredictor::new(Window::LastSeconds(10 * 86_400))),
        ];
        for p in &preds {
            group.bench_with_input(BenchmarkId::new(p.name().to_string(), n), &h, |b, h| {
                b.iter(|| std::hint::black_box(p.predict(h, now)))
            });
        }
        // The classified wrapper adds a filtering pass.
        let wrapped = NamedPredictor::new(Box::new(MeanPredictor::new(Window::LastN(25))), true);
        group.bench_with_input(BenchmarkId::new("AVG25+C", n), &h, |b, h| {
            b.iter(|| std::hint::black_box(wrapped.predict(h, now, 500 * PAPER_MB)))
        });
    }
    group.finish();
}

fn bench_full_replay(c: &mut Criterion) {
    // Cost of the entire evaluation pipeline over a paper-sized log:
    // the naive per-target recomputation vs the incremental engine
    // (rolling state, one pass). Both produce identical reports.
    let h = history(420);
    let suite = full_suite();
    let mut group = c.benchmark_group("replay_30_predictors_420_transfers");
    group.bench_function("naive", |b| {
        b.iter(|| {
            std::hint::black_box(Evaluation::replay(
                &h,
                &suite,
                EvalEngine::Naive,
                EvalOptions::default(),
                &ObsSink::disabled(),
            ))
        })
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            std::hint::black_box(Evaluation::replay(
                &h,
                &suite,
                EvalEngine::Incremental,
                EvalOptions::default(),
                &ObsSink::disabled(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_predictors, bench_full_replay);
criterion_main!(benches);
