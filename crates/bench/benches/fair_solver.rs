//! Simulator-substrate performance: the weighted max-min solver is
//! re-run on every flow/load change, so its cost bounds campaign speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wanpred_simnet::fair::{solve, FairFlow};

fn config(links: usize, flows: usize) -> (Vec<f64>, Vec<FairFlow>) {
    let caps: Vec<f64> = (0..links).map(|l| 1e7 + (l as f64) * 1e6).collect();
    let flows: Vec<FairFlow> = (0..flows)
        .map(|f| {
            let a = f % links;
            let b = (f * 7 + 3) % links;
            let mut path = vec![a];
            if b != a {
                path.push(b);
            }
            FairFlow {
                weight: 1.0 + (f % 8) as f64,
                cap: if f % 3 == 0 { 2e6 } else { f64::INFINITY },
                links: path,
            }
        })
        .collect();
    (caps, flows)
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("fair_solver");
    for &(links, flows) in &[(4usize, 4usize), (4, 32), (16, 128), (64, 512)] {
        let (caps, fs) = config(links, flows);
        group.bench_with_input(
            BenchmarkId::new("solve", format!("{links}l_{flows}f")),
            &(caps, fs),
            |b, (caps, fs)| b.iter(|| std::hint::black_box(solve(caps, fs))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
