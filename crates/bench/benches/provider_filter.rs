//! §5.1 claim: "a log of approximately 100 KB, around 700 log entries,
//! took the information provider approximately 1 to 2 seconds to filter,
//! classify the entries into object classes, and compute predictions"
//! (2001 hardware). Measures our provider doing the same work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wanpred_infod::{
    parse_filter, Dn, GridFtpPerfProvider, Gris, InquiryRequest, InquiryService, ProviderConfig,
};
use wanpred_logfmt::{Operation, TransferLog, TransferRecordBuilder};

fn synth_log(entries: usize) -> TransferLog {
    let sizes = [1u64, 10, 100, 500, 1000];
    let mut log = TransferLog::new();
    for i in 0..entries as u64 {
        let size = sizes[(i % 5) as usize] * 1_024_000;
        let secs = 10.0 + (i % 7) as f64;
        log.append(
            TransferRecordBuilder::new()
                .source(if i % 3 == 0 {
                    "140.221.65.69"
                } else {
                    "128.9.160.11"
                })
                .host("dpsslx04.lbl.gov")
                .file_name("/home/ftp/vazhkuda/f")
                .file_size(size)
                .volume("/home/ftp")
                .start_unix(1_000_000 + i * 600)
                .end_unix(1_000_000 + i * 600 + secs as u64)
                .total_time_s(secs)
                .streams(8)
                .tcp_buffer(1_000_000)
                .operation(if i % 11 == 0 {
                    Operation::Write
                } else {
                    Operation::Read
                })
                .build()
                .expect("fields set"),
        );
    }
    log
}

fn bench_provider(c: &mut Criterion) {
    let mut group = c.benchmark_group("provider_filter");
    for &entries in &[700usize, 2_800, 11_200] {
        let log = synth_log(entries);
        let provider = GridFtpPerfProvider::from_snapshot(
            ProviderConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
            log,
        );
        group.bench_with_input(
            BenchmarkId::new("build_entries", entries),
            &provider,
            |b, p| b.iter(|| std::hint::black_box(p.build_entries(2_000_000))),
        );
    }
    group.finish();

    // GRIS search over cached provider output.
    let provider = GridFtpPerfProvider::from_snapshot(
        ProviderConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
        synth_log(700),
    );
    let mut gris = Gris::new(Dn::parse("o=grid").expect("const"));
    gris.register_provider(Box::new(provider));
    let filter = parse_filter("(&(objectclass=GridFTPPerfInfo)(avgrdbandwidth>=1000))")
        .expect("well-formed");
    gris.materialize(0); // warm the cache
    let req = InquiryRequest::new(filter, 1);
    c.bench_function("gris_search_cached", |b| {
        b.iter(|| std::hint::black_box(gris.inquire(&req)))
    });
}

criterion_group!(benches, bench_provider);
criterion_main!(benches);
