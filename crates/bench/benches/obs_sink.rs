//! Emission cost of the observability sink, null vs live.
//!
//! The null sink must be a single branch — cheap enough that every layer
//! can carry unconditional emission calls — and the live sink one mutex
//! acquisition plus an integer bump. `ablation_obs` measures the
//! end-to-end campaign overhead; this bench isolates the per-call cost.

use criterion::{criterion_group, criterion_main, Criterion};
use wanpred_obs::{names, ObsSink};

fn bench_sink(c: &mut Criterion) {
    let null = ObsSink::disabled();
    c.bench_function("null_sink_inc", |b| {
        b.iter(|| std::hint::black_box(&null).inc(names::SIMNET_ENGINE_EVENTS))
    });
    c.bench_function("null_sink_observe", |b| {
        b.iter(|| std::hint::black_box(&null).observe(names::SIMNET_FLOW_BYTES, 42))
    });

    let live = ObsSink::enabled();
    c.bench_function("live_sink_inc", |b| {
        b.iter(|| std::hint::black_box(&live).inc(names::SIMNET_ENGINE_EVENTS))
    });
    c.bench_function("live_sink_observe", |b| {
        b.iter(|| std::hint::black_box(&live).observe(names::SIMNET_FLOW_BYTES, 42))
    });
    let batch: Vec<u64> = (0..1_000).collect();
    c.bench_function("live_sink_observe_many_1000", |b| {
        b.iter(|| std::hint::black_box(&live).observe_many(names::SIMNET_FLOW_BYTES, &batch))
    });
    c.bench_function("live_sink_snapshot", |b| {
        b.iter(|| std::hint::black_box(live.snapshot()))
    });
}

criterion_group!(benches, bench_sink);
criterion_main!(benches);
