//! ULM parse throughput: the allocating oracle decoder against the
//! zero-copy hot path, on a realistic campaign-sized document.
//!
//! Four arms over the same ~20k-line document:
//!
//! * `oracle_decode` — per-line [`wanpred_logfmt::decode`] (the old
//!   path, retained as the differential oracle), collected row-wise.
//! * `log_from_ulm` — [`TransferLog::from_ulm_str`], which now decodes
//!   borrowed and materialises owned records.
//! * `columns_from_ulm` — [`TransferColumns::from_ulm_str`], fully
//!   zero-copy into SoA columns over a shared arena.
//! * `observations_from_ulm` — the predict-crate ingest straight to
//!   numeric observations, no strings retained at all.
//!
//! Besides the criterion groups, writes `BENCH_parse.json` to the repo
//! root with best-of-N wall times and speedups over the oracle (the
//! acceptance artifact: the zero-copy path must clear 3x).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use wanpred_logfmt::{decode, Operation, TransferColumns, TransferLog, TransferRecord};
use wanpred_predict::observations_from_ulm;

/// A campaign-shaped document: `n` transfers across a handful of
/// host/source pairs (strings repeat, as in real logs), every size
/// class, irregular timing, a sprinkle of comments and blank lines.
fn campaign_doc(n: usize) -> String {
    let hosts = ["dsl.lbl.gov", "pitcairn.mcs.anl.gov", "jupiter.isi.edu"];
    let sources = ["dpss.lbl.gov", "mars.isi.edu"];
    let mut log = TransferLog::new();
    let mut t = 996_642_000u64;
    for i in 0..n {
        t += 120 + (i as u64 * 7_919) % 3_600;
        let secs = 2.5 + (i as f64 * 0.37) % 9.0;
        log.append(TransferRecord {
            source: sources[i % sources.len()].to_string(),
            host: hosts[(i / 7) % hosts.len()].to_string(),
            file_name: format!("/data/run{:02}/file-{:05}.dat", i % 16, i),
            file_size: [5, 100, 500, 1000][i % 4] * 1_048_576,
            volume: "/pvfs/ftp".to_string(),
            start_unix: t,
            end_unix: t + secs.ceil() as u64,
            total_time_s: secs,
            streams: [1, 2, 4, 8][(i / 3) % 4],
            tcp_buffer: 64 * 1024,
            operation: if i % 5 == 0 {
                Operation::Write
            } else {
                Operation::Read
            },
        });
    }
    format!(
        "# synthetic campaign log ({n} records)\n\n{}",
        log.to_ulm_string()
    )
}

/// The old path: allocate per line, collect a row-wise log.
fn oracle_parse(doc: &str) -> TransferLog {
    let mut log = TransferLog::new();
    for line in doc.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        log.append(decode(t).expect("bench document is well-formed"));
    }
    log
}

fn bench_parse(c: &mut Criterion) {
    let doc = campaign_doc(20_000);
    let lines = doc
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .count();

    // Cross-check once: all arms must see the same records.
    let oracle = oracle_parse(&doc);
    assert_eq!(oracle, TransferLog::from_ulm_str(&doc).expect("parses"));
    assert_eq!(
        oracle,
        TransferColumns::from_ulm_str(&doc)
            .expect("parses")
            .to_log()
    );
    assert_eq!(
        observations_from_ulm(&doc).expect("parses").len(),
        oracle.len()
    );

    let mut group = c.benchmark_group("ulm_parse_20k_lines");
    group.sample_size(20);
    group.bench_function("oracle_decode", |b| {
        b.iter(|| std::hint::black_box(oracle_parse(&doc)))
    });
    group.bench_function("log_from_ulm", |b| {
        b.iter(|| std::hint::black_box(TransferLog::from_ulm_str(&doc).expect("parses")))
    });
    group.bench_function("columns_from_ulm", |b| {
        b.iter(|| std::hint::black_box(TransferColumns::from_ulm_str(&doc).expect("parses")))
    });
    group.bench_function("observations_from_ulm", |b| {
        b.iter(|| std::hint::black_box(observations_from_ulm(&doc).expect("parses")))
    });
    group.finish();

    // The acceptance artifact: best-of-N wall times, single thread.
    let time_best = |runs: usize, f: &dyn Fn()| -> f64 {
        (0..runs)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64() * 1_000.0
            })
            .fold(f64::INFINITY, f64::min)
    };
    let runs = 20;
    let oracle_ms = time_best(runs, &|| {
        std::hint::black_box(oracle_parse(&doc));
    });
    let log_ms = time_best(runs, &|| {
        std::hint::black_box(TransferLog::from_ulm_str(&doc).expect("parses"));
    });
    let columns_ms = time_best(runs, &|| {
        std::hint::black_box(TransferColumns::from_ulm_str(&doc).expect("parses"));
    });
    let ingest_ms = time_best(runs, &|| {
        std::hint::black_box(observations_from_ulm(&doc).expect("parses"));
    });
    let mb = doc.len() as f64 / 1e6;
    let json = format!(
        "{{\n  \"lines\": {lines},\n  \"bytes\": {},\n  \"oracle_decode_ms\": {oracle_ms:.3},\n  \"log_from_ulm_ms\": {log_ms:.3},\n  \"columns_from_ulm_ms\": {columns_ms:.3},\n  \"observations_from_ulm_ms\": {ingest_ms:.3},\n  \"oracle_mb_per_s\": {:.1},\n  \"columns_mb_per_s\": {:.1},\n  \"speedup_log\": {:.2},\n  \"speedup_columns\": {:.2},\n  \"speedup_observations\": {:.2}\n}}\n",
        doc.len(),
        mb / (oracle_ms / 1_000.0),
        mb / (columns_ms / 1_000.0),
        oracle_ms / log_ms,
        oracle_ms / columns_ms,
        oracle_ms / ingest_ms,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parse.json");
    std::fs::write(path, &json).expect("write BENCH_parse.json");
    println!("parse comparison written to {path}:\n{json}");
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
