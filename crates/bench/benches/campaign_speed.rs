//! End-to-end simulator throughput: wall time to reproduce a full
//! two-week measurement campaign (the unit of everything in the
//! evaluation). Also benches the per-figure computations on its output.

use criterion::{criterion_group, criterion_main, Criterion};
use wanpred_predict::SizeClass;
use wanpred_simnet::rng::MasterSeed;
use wanpred_simnet::time::SimDuration;
use wanpred_testbed::{
    fig07, fig08_11, fig12_13, run_campaign, CampaignConfig, Pair, WorkloadConfig,
};

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("two_week_august_campaign", |b| {
        b.iter(|| {
            std::hint::black_box(run_campaign(&CampaignConfig::august(42)));
        })
    });
    group.bench_function("two_day_campaign_no_probes", |b| {
        b.iter(|| {
            std::hint::black_box(run_campaign(&CampaignConfig {
                seed: MasterSeed(1),
                epoch_unix: 996_642_000,
                duration: SimDuration::from_days(2),
                workload: WorkloadConfig::default(),
                probes: false,
            }));
        })
    });
    group.finish();

    let result = run_campaign(&CampaignConfig::august(42));
    let mut group = c.benchmark_group("figures");
    group.bench_function("fig07_counts", |b| {
        b.iter(|| std::hint::black_box(fig07(&result, Pair::LblAnl)))
    });
    group.bench_function("fig08_11_one_class", |b| {
        b.iter(|| std::hint::black_box(fig08_11(&result, Pair::LblAnl, SizeClass::C100MB)))
    });
    group.bench_function("fig12_13_classification", |b| {
        b.iter(|| std::hint::black_box(fig12_13(&result, Pair::LblAnl)))
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
