//! End-to-end simulator throughput: wall time to reproduce a full
//! two-week measurement campaign (the unit of everything in the
//! evaluation). Also benches the per-figure computations on its output.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use wanpred_logfmt::TransferLog;
use wanpred_obs::ObsSink;
use wanpred_predict::prelude::*;
use wanpred_simnet::time::SimDuration;
use wanpred_testbed::{fig07, fig08_11, fig12_13, run_campaign, CampaignConfig, Pair};

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("two_week_august_campaign", |b| {
        b.iter(|| {
            std::hint::black_box(run_campaign(&CampaignConfig::august(42)));
        })
    });
    group.bench_function("two_day_campaign_no_probes", |b| {
        b.iter(|| {
            std::hint::black_box(run_campaign(&CampaignConfig {
                duration: SimDuration::from_days(2),
                probes: false,
                ..CampaignConfig::august(1)
            }));
        })
    });
    group.finish();

    let result = run_campaign(&CampaignConfig::august(42));
    let mut group = c.benchmark_group("figures");
    group.bench_function("fig07_counts", |b| {
        b.iter(|| std::hint::black_box(fig07(&result, Pair::LblAnl)))
    });
    group.bench_function("fig08_11_one_class", |b| {
        b.iter(|| std::hint::black_box(fig08_11(&result, Pair::LblAnl, SizeClass::C100MB)))
    });
    group.bench_function("fig12_13_classification", |b| {
        b.iter(|| std::hint::black_box(fig12_13(&result, Pair::LblAnl)))
    });
    group.finish();
}

/// A bursty multi-class log of `n` transfers: irregular gaps so temporal
/// windows fill and drain, all four size classes represented.
fn replay_log(n: usize) -> Vec<Observation> {
    let mut t = 996_642_000u64;
    (0..n)
        .map(|i| {
            t += 300 + (i as u64 * 7_919) % 14_400;
            Observation {
                at_unix: t,
                bandwidth_kbs: 3_500.0 + 2_000.0 * ((i as f64 * 0.31).sin()),
                file_size: [5, 100, 500, 900][i % 4] * PAPER_MB,
                streams: 1,
                tcp_buffer: 0,
            }
        })
        .collect()
}

/// Naive vs incremental full-suite replay, and the `BENCH_replay.json`
/// artifact: one honest wall-clock measurement of both engines on a
/// 10k-observation log (best of a few runs), written to the repo root.
fn bench_replay_engines(c: &mut Criterion) {
    let h = replay_log(10_000);
    let suite = full_suite();
    let opts = EvalOptions::default();

    let mut group = c.benchmark_group("replay_30_predictors_10k_transfers");
    group.sample_size(10);
    group.bench_function("incremental", |b| {
        b.iter(|| {
            std::hint::black_box(Evaluation::replay(
                &h,
                &suite,
                EvalEngine::Incremental,
                opts,
                &ObsSink::disabled(),
            ))
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            std::hint::black_box(Evaluation::replay(
                &h,
                &suite,
                EvalEngine::Naive,
                opts,
                &ObsSink::disabled(),
            ))
        })
    });
    group.finish();

    let time_best = |runs: usize, f: &dyn Fn() -> Vec<PredictorReport>| -> f64 {
        (0..runs)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed().as_secs_f64() * 1_000.0
            })
            .fold(f64::INFINITY, f64::min)
    };
    let naive_ms = time_best(2, &|| {
        Evaluation::replay(&h, &suite, EvalEngine::Naive, opts, &ObsSink::disabled())
    });
    let incremental_ms = time_best(5, &|| {
        Evaluation::replay(
            &h,
            &suite,
            EvalEngine::Incremental,
            opts,
            &ObsSink::disabled(),
        )
    });
    // End-to-end document replay: a real campaign log, from ULM text to
    // predictor reports. The old path materialises a TransferLog with
    // the allocating oracle decoder first; the new path ingests straight
    // to observations with the zero-copy decoder (`run_ulm`).
    let result = run_campaign(&CampaignConfig::august(42));
    let doc = result.log(Pair::LblAnl).to_ulm_string();
    let eval = Evaluation::builder().build();
    let old_doc_replay = || -> Vec<PredictorReport> {
        let mut log = TransferLog::new();
        for line in doc.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            log.append(wanpred_logfmt::decode(t).expect("campaign log is well-formed"));
        }
        eval.run_log(&log)
    };
    let new_doc_replay =
        || -> Vec<PredictorReport> { eval.run_ulm(&doc).expect("campaign log is well-formed") };
    assert_eq!(
        old_doc_replay().len(),
        new_doc_replay().len(),
        "both document replay paths score the same suite"
    );
    let doc_old_ms = time_best(5, &old_doc_replay);
    let doc_new_ms = time_best(5, &new_doc_replay);

    let json = format!(
        "{{\n  \"observations\": {},\n  \"predictors\": {},\n  \"naive_ms\": {:.3},\n  \"incremental_ms\": {:.3},\n  \"speedup\": {:.2},\n  \"doc_replay_lines\": {},\n  \"doc_replay_oracle_ms\": {:.3},\n  \"doc_replay_zero_copy_ms\": {:.3},\n  \"doc_replay_speedup\": {:.2}\n}}\n",
        h.len(),
        suite.len(),
        naive_ms,
        incremental_ms,
        naive_ms / incremental_ms,
        result.log(Pair::LblAnl).len(),
        doc_old_ms,
        doc_new_ms,
        doc_old_ms / doc_new_ms
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
    std::fs::write(path, &json).expect("write BENCH_replay.json");
    println!("replay comparison written to {path}:\n{json}");
}

criterion_group!(benches, bench_campaign, bench_replay_engines);
criterion_main!(benches);
