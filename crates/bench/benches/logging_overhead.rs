//! §3 claim: "the entire logging process consumes on average
//! approximately 25 milliseconds per transfer". Measures our pipeline —
//! record construction, ULM encoding, appending, and the round trip —
//! to document how far inside that budget a modern implementation sits.

use criterion::{criterion_group, criterion_main, Criterion};
use wanpred_logfmt::{decode, encode, sample_record, TransferLog};

fn bench_logging(c: &mut Criterion) {
    let record = sample_record();
    c.bench_function("ulm_encode", |b| {
        b.iter(|| std::hint::black_box(encode(&record)))
    });
    let line = encode(&record);
    c.bench_function("ulm_decode", |b| {
        b.iter(|| std::hint::black_box(decode(&line).expect("valid line")))
    });
    c.bench_function("log_append_one_record", |b| {
        b.iter_batched(
            TransferLog::new,
            |mut log| {
                log.append(record.clone());
                std::hint::black_box(log)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("full_logging_path_encode_plus_append", |b| {
        let mut log = TransferLog::new();
        b.iter(|| {
            let line = encode(&record);
            std::hint::black_box(&line);
            log.append(record.clone());
        })
    });
    // Parsing a busy server's whole log (the §5.1 provider precondition):
    // ~700 entries, the paper's "approximately 100 KB" log.
    let doc: String = (0..700).map(|_| format!("{}\n", encode(&record))).collect();
    c.bench_function("parse_700_entry_log", |b| {
        b.iter(|| std::hint::black_box(TransferLog::from_ulm_str(&doc).expect("valid log")))
    });
}

criterion_group!(benches, bench_logging);
criterion_main!(benches);
