//! Classification-granularity ablation: no classification vs the paper's
//! four classes vs exact-size matching, for the AVG/MED/LV estimators.
//!
//! The paper picked four classes from testbed measurements (§4.3); this
//! ablation shows where that choice sits between the extremes: exact-size
//! history is the most homogeneous but the scarcest, no classification is
//! abundant but mixes regimes.

use wanpred_bench::august_campaign;
use wanpred_obs::ObsSink;
use wanpred_predict::predictor::Predictor;
use wanpred_predict::prelude::*;
use wanpred_testbed::{fmt_mape, observation_series, Pair, Table};

/// Exact-size filtering needs the target size, which the base trait does
/// not carry; we reuse `NamedPredictor`'s class filtering for the 4-class
/// variants and emulate exact matching via a per-size evaluation below.
fn exact_size_mape(obs: &[Observation], inner: &dyn Predictor, training: usize) -> Option<f64> {
    let mut pairs = Vec::new();
    for i in training..obs.len() {
        let target = obs[i];
        let filtered: Vec<Observation> = obs[..i]
            .iter()
            .filter(|o| o.file_size == target.file_size)
            .copied()
            .collect();
        if let Some(p) = inner.predict(&filtered, target.at_unix) {
            pairs.push((target.bandwidth_kbs, p));
        }
    }
    wanpred_predict::stats::mape(&pairs)
}

/// A factory producing fresh boxed estimators (each `NamedPredictor`
/// needs its own instance).
type EstimatorFactory = Box<dyn Fn() -> Box<dyn Predictor>>;

fn main() {
    let result = august_campaign();
    for pair in Pair::ALL {
        let obs = observation_series(&result, pair);

        let mut table = Table::new(format!(
            "classification granularity, {} (August)",
            pair.label()
        ))
        .headers(["estimator", "none", "4 classes", "exact size"]);

        let estimators: Vec<(&str, EstimatorFactory)> = vec![
            (
                "AVG",
                Box::new(|| Box::new(MeanPredictor::new(Window::All))),
            ),
            (
                "AVG25",
                Box::new(|| Box::new(MeanPredictor::new(Window::LastN(25)))),
            ),
            (
                "MED",
                Box::new(|| Box::new(MedianPredictor::new(Window::All))),
            ),
            ("LV", Box::new(|| Box::new(LastValue::new()))),
        ];
        for (name, make) in &estimators {
            let plain = NamedPredictor::new(make(), false);
            let classed = NamedPredictor::new(make(), true);
            let reports = Evaluation::replay(
                &obs,
                &[plain, classed],
                EvalEngine::Naive,
                EvalOptions::default(),
                &ObsSink::disabled(),
            );
            let exact = exact_size_mape(&obs, make().as_ref(), 15);
            table.row([
                name.to_string(),
                fmt_mape(reports[0].mape()),
                fmt_mape(reports[1].mape()),
                fmt_mape(exact),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "expected shape: 'none' is worst (mixes size regimes); '4 classes' captures\n\
         most of the benefit; 'exact size' can edge it out but needs 13x more\n\
         history to warm up (see the declined counts in ablation_windows)."
    );
}
