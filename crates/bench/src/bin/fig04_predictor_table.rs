//! Figure 4: the table of context-insensitive predictors, generated from
//! the registry itself so the code and the paper's taxonomy cannot
//! drift apart.

use wanpred_predict::registry::{figure4_table, paper_predictors};
use wanpred_testbed::Table;

fn main() {
    let mut table = Table::new("Figure 4: context-insensitive predictors").headers([
        "",
        "Average based",
        "Median based",
        "ARIMA model",
    ]);
    for (label, avg, med, ar) in figure4_table() {
        table.row([label, avg, med, ar]);
    }
    println!("{}", table.render());

    let predictors = paper_predictors();
    let names: Vec<&str> = predictors.iter().map(|p| p.name()).collect();
    println!(
        "{} predictors registered: {}\nwith file-size classification (+C): {} variants total",
        names.len(),
        names.join(" "),
        2 * names.len()
    );
}
