//! Figures 12–13: the impact of file-size classification — each base
//! predictor's error with the full history vs with same-class history
//! only, for LBL–ANL (Figure 12) and ISI–ANL (Figure 13).

use wanpred_bench::august_campaign;
use wanpred_testbed::{fig12_13, fmt_mape, Pair, Table};

fn main() {
    let result = august_campaign();
    for (fig_no, pair) in [(12, Pair::LblAnl), (13, Pair::IsiAnl)] {
        let cells = fig12_13(&result, pair);
        let mut table = Table::new(format!(
            "Figure {fig_no}: classification impact, {} (August)",
            pair.label()
        ))
        .headers(["predictor", "unclassified %", "classified %", "reduction"]);
        let mut total_red = 0.0;
        let mut n = 0usize;
        for c in &cells {
            let red = match (c.unclassified, c.classified) {
                (Some(u), Some(cl)) => {
                    total_red += u - cl;
                    n += 1;
                    format!("{:+.1}", u - cl)
                }
                _ => "-".to_string(),
            };
            table.row([
                c.predictor.clone(),
                fmt_mape(c.unclassified),
                fmt_mape(c.classified),
                red,
            ]);
        }
        println!("{}", table.render());
        if n > 0 {
            println!(
                "mean error reduction from classification: {:.1} points over {n} predictors\n",
                total_red / n as f64
            );
        }
    }
    println!(
        "paper claim (§4.3): classification improves predictions 5-10% on average;\n\
         our simulated paths show a stronger size-bandwidth correlation, hence a\n\
         larger benefit (see EXPERIMENTS.md)."
    );
}
