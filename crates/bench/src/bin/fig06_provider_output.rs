//! Figure 6: a fragment of the GridFTP performance information provider's
//! output — the LDIF entry published for the ANL client at the LBL GRIS,
//! built from real (simulated) campaign logs.

use wanpred_bench::august_campaign;
use wanpred_infod::{GridFtpPerfProvider, ProviderConfig, Schema};
use wanpred_testbed::Pair;

fn main() {
    let result = august_campaign();
    let now = result.epoch_unix + 14 * 86_400;
    let provider = GridFtpPerfProvider::from_snapshot(
        ProviderConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
        result.log(Pair::LblAnl).clone(),
    );
    let entries = provider.build_entries(now);
    let schema = Schema::standard();
    println!("== Figure 6: GridFTP information provider output ==\n");
    for e in &entries {
        schema
            .validate(e)
            .expect("provider output validates against the published schema");
        println!("{}", e.to_ldif());
    }
    println!(
        "paper fragment for comparison:\n\
         dn: \"140.221.65.69, hostname=dpsslx04.lbl.gov, dc=lbl, dc=gov, o=grid\"\n\
         minrdbandwidth: 1462K  maxrdbandwidth: 12800K  avgrdbandwidth: 6062K\n\
         avgrdbandwidthtenmbrange: 5714K"
    );
}
