//! §6.2 headline numbers: the "even simple techniques are at worst off by
//! about 25%" claim and its supporting aggregates, for both campaigns
//! and both site pairs (campaigns run in parallel).

use rayon::join;
use wanpred_bench::{august_campaign, december_campaign};
use wanpred_testbed::{summary, Pair, Table};

fn main() {
    let (aug, dec) = join(august_campaign, december_campaign);

    let mut table = Table::new("Section 6.2 headline summary").headers([
        "campaign",
        "pair",
        "worst MAPE, classes >=100MB",
        "worst MAPE, all",
        "mean classification benefit",
    ]);
    for (name, result) in [("August", &aug), ("December", &dec)] {
        for pair in Pair::ALL {
            let s = summary(result, pair);
            table.row([
                name.to_string(),
                s.pair.clone(),
                format!("{:.1}%", s.worst_large_class_mape),
                format!("{:.1}%", s.worst_overall_mape),
                format!("{:.1} points", s.mean_classification_benefit),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "paper: \"even simple techniques are at worst off by about 25%\" for the\n\
         per-class (>=100MB) evaluation; small-file classes are noisier, which the\n\
         all-classes column reflects. December behaves like August (§6.2 found no\n\
         statistically significant difference between the two datasets)."
    );
}
