//! Figure 3: a sample set from a log of file transfers between ANL and
//! LBL — one controlled session stepping through the size ladder
//! 10 MB → 1 GB with 8 streams and 1 MB buffers, printed both as the
//! paper's table and as raw ULM lines.

use std::any::Any;

use wanpred_gridftp::{CompletedTransfer, TransferKind, TransferManager, TransferRequest};
use wanpred_simnet::engine::{Agent, Ctx, Engine, TimerTag};
use wanpred_simnet::flow::FlowDone;
use wanpred_simnet::rng::MasterSeed;
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_simnet::topology::NodeId;
use wanpred_testbed::{build_testbed, Table};

/// Sequentially fetch the ladder of files, one after another.
struct Ladder {
    mgr: TransferManager,
    client: NodeId,
    server: NodeId,
    queue: Vec<String>,
    done: Vec<CompletedTransfer>,
}

impl Ladder {
    fn next(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(path) = self.queue.first().cloned() {
            self.queue.remove(0);
            self.mgr
                .submit(
                    ctx,
                    TransferRequest {
                        client: self.client,
                        kind: TransferKind::Get {
                            server: self.server,
                            path,
                        },
                        streams: 8,
                        tcp_buffer: 1_000_000,
                        partial: None,
                    },
                )
                .expect("ladder files exist");
        }
    }
}

impl Agent for Ladder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        if self.mgr.on_timer(ctx, tag) {
            return;
        }
        self.next(ctx);
    }
    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
        if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
            self.done.push(c);
            // Pause ~3 s between rungs, like the Figure 3 session.
            ctx.set_timer(SimDuration::from_secs(3), 1);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    let tb = build_testbed(MasterSeed(42), false);
    let mgr = tb.build_manager(998_988_000);
    let (anl, lbl) = (tb.anl, tb.lbl);
    let mut engine = Engine::new(tb.network);
    let id = engine.add_agent(Box::new(Ladder {
        mgr,
        client: anl,
        server: lbl,
        queue: [
            "10MB", "25MB", "50MB", "100MB", "250MB", "500MB", "750MB", "1GB",
        ]
        .iter()
        .map(|n| format!("/home/ftp/vazhkuda/{n}"))
        .collect(),
        done: Vec::new(),
    }));
    engine.run_until(SimTime::from_secs(3_600));

    let ladder = engine.agent::<Ladder>(id).expect("agent");
    let log = ladder.mgr.server_log(lbl).expect("lbl server");

    let mut table = Table::new("Figure 3: sample transfer log (LBL server)").headers([
        "Source IP",
        "File Name",
        "File Size",
        "Volume",
        "StartTime",
        "EndTime",
        "TotalTime",
        "BW (KB/s)",
        "R/W",
        "Streams",
        "TCP-Buffer",
    ]);
    for r in log.records() {
        table.row([
            r.source.clone(),
            r.file_name.clone(),
            r.file_size.to_string(),
            r.volume.clone(),
            r.start_unix.to_string(),
            r.end_unix.to_string(),
            format!("{:.0}", r.total_time_s),
            format!("{:.0}", r.bandwidth_kbs()),
            format!("{:?}", r.operation),
            r.streams.to_string(),
            r.tcp_buffer.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("raw ULM lines:\n{}", log.to_ulm_string());
    println!("paper row for comparison: 10 MB file, 4 s, 2560 KB/s; 1 GB file, 126 s, 8126 KB/s");
}
