//! Fault-robustness ablation: how much predictor accuracy survives an
//! unreliable wide area.
//!
//! Runs the August campaign twice from the same seed — once on the clean
//! network the paper's logs come from, once with the calibrated fault
//! profile (outages, degradations, connection resets) and the default
//! retry policy — then replays the full 30-predictor suite over both log
//! sets. Retried-and-recovered transfers log end-to-end times (submit →
//! final completion), so faults show up as genuinely slower, noisier
//! observations rather than being silently dropped.
//!
//! Writes the headline comparison to `BENCH_faults.json` at the repo
//! root. `--days N` shortens the campaign (CI smoke runs use `--days 2`);
//! `--chaos RATE` additionally corrupts the faulty run's logs with the
//! seeded injector and replays the suite over what strict salvage
//! recovers, compounding wide-area faults with storage damage.

use std::env;

use wanpred_bench::{arg_value, DEFAULT_SEED};
use wanpred_predict::prelude::*;
use wanpred_simnet::time::SimDuration;
use wanpred_testbed::{fmt_mape, run_campaign, CampaignConfig, CampaignResult, Pair, Table};

/// Accuracy digest of one pair's log: (best MAPE, median MAPE over the
/// suite, answered-predictor count).
struct Digest {
    best: Option<f64>,
    median: Option<f64>,
    transfers: usize,
}

fn digest(result: &CampaignResult, pair: Pair) -> Digest {
    let log = result.log(pair);
    let reports = Evaluation::builder().build().run_log(log);
    let mut mapes: Vec<f64> = reports.iter().filter_map(PredictorReport::mape).collect();
    mapes.sort_by(|a, b| a.total_cmp(b));
    Digest {
        best: mapes.first().copied(),
        median: (!mapes.is_empty()).then(|| mapes[mapes.len() / 2]),
        transfers: log.len(),
    }
}

fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "null".into(),
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let days: u64 = arg_value(&args, "--days")
        .and_then(|v| v.parse().ok())
        .unwrap_or(14);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let chaos: Option<f64> = arg_value(&args, "--chaos").and_then(|v| v.parse().ok());

    let base = CampaignConfig {
        duration: SimDuration::from_days(days),
        probes: false,
        ..CampaignConfig::august(seed)
    };
    let clean = run_campaign(&base);
    let mut faulty_cfg = base.clone().with_faults();
    if let Some(rate) = chaos {
        faulty_cfg = faulty_cfg.with_chaos(rate);
    }
    let faulty = run_campaign(&faulty_cfg);

    assert_eq!(clean.fault_events, 0);
    assert!(faulty.fault_events > 0, "fault schedule came up empty");

    println!(
        "campaign: {days} days, seed {seed}; faulty run scheduled {} fault \
         actions, saw {} retries and abandoned {} transfers\n",
        faulty.fault_events, faulty.retries, faulty.failed_transfers
    );
    if let Some(rate) = chaos {
        for pair in Pair::ALL {
            let report = faulty.salvage(pair).expect("chaos was enabled");
            println!(
                "chaos {rate}: {} salvage kept {} records, quarantined {} lines \
                 ({:.1}% recovery)",
                pair.label(),
                report.kept,
                report.quarantined.len(),
                report.recovery_fraction() * 100.0
            );
        }
        println!();
    }

    let mut table = Table::new("predictor accuracy, clean vs faulty logs (MAPE %)").headers([
        "pair",
        "network",
        "best",
        "median",
        "transfers",
    ]);
    let mut cells = Vec::new();
    for pair in Pair::ALL {
        for (label, result) in [("clean", &clean), ("faulty", &faulty)] {
            let d = digest(result, pair);
            table.row([
                pair.label().to_string(),
                label.to_string(),
                fmt_mape(d.best),
                fmt_mape(d.median),
                d.transfers.to_string(),
            ]);
            cells.push((pair, label, d));
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: the faulty logs keep the predictors usable — recovered\n\
         transfers stretch the bandwidth tail, so errors grow by a factor, they\n\
         don't explode — which is the operating regime the paper's log-based\n\
         predictors were built for."
    );

    let mut pairs_json = String::new();
    for (pair, label, d) in &cells {
        pairs_json.push_str(&format!(
            "    {{\"pair\": \"{}\", \"network\": \"{}\", \"best_mape\": {}, \"median_mape\": {}, \"transfers\": {}}},\n",
            pair.label(),
            label,
            json_num(d.best),
            json_num(d.median),
            d.transfers
        ));
    }
    let pairs_json = pairs_json.trim_end().trim_end_matches(',').to_string();
    let chaos_json = match chaos {
        Some(rate) => {
            let recovered: usize = Pair::ALL
                .iter()
                .filter_map(|p| faulty.salvage(*p))
                .map(|r| r.kept)
                .sum();
            let quarantined: usize = Pair::ALL
                .iter()
                .filter_map(|p| faulty.salvage(*p))
                .map(|r| r.quarantined.len())
                .sum();
            format!("{{\"rate\": {rate}, \"kept\": {recovered}, \"quarantined\": {quarantined}}}")
        }
        None => "null".into(),
    };
    let json = format!(
        "{{\n  \"days\": {days},\n  \"seed\": {seed},\n  \"fault_events\": {},\n  \"retries\": {},\n  \"failed_transfers\": {},\n  \"chaos\": {chaos_json},\n  \"results\": [\n{pairs_json}\n  ]\n}}\n",
        faulty.fault_events, faulty.retries, faulty.failed_transfers
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, &json).expect("write BENCH_faults.json");
    println!("comparison written to {path}");
}
