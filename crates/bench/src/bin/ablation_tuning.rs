//! Transfer-tuning ablation: why the paper used 8 parallel streams and
//! 1 MB TCP buffers (§6.1).
//!
//! Sweeps stream count × per-stream buffer for a 250 MB transfer on a
//! quiet and on a loaded LBL–ANL path, printing achieved end-to-end
//! bandwidth. The shape to expect: with untuned 16 KB buffers the
//! transfer is window-limited regardless of streams; with tuned buffers,
//! parallelism claims a proportionally larger fair share against cross
//! traffic (weight = stream count) until the link or storage saturates —
//! the "class-based isolation" dynamics §4.3 cites.

use std::any::Any;

use wanpred_gridftp::{CompletedTransfer, TransferKind, TransferManager, TransferRequest};
use wanpred_simnet::engine::{Agent, Ctx, Engine, TimerTag};
use wanpred_simnet::flow::FlowDone;
use wanpred_simnet::rng::MasterSeed;
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_simnet::topology::NodeId;
use wanpred_testbed::{build_testbed, Table};

struct OneGet {
    mgr: TransferManager,
    client: NodeId,
    server: NodeId,
    streams: u32,
    buffer: u64,
    done: Option<CompletedTransfer>,
}

impl Agent for OneGet {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        if self.mgr.on_timer(ctx, tag) {
            return;
        }
        self.mgr
            .submit(
                ctx,
                TransferRequest {
                    client: self.client,
                    kind: TransferKind::Get {
                        server: self.server,
                        path: "/home/ftp/vazhkuda/250MB".into(),
                    },
                    streams: self.streams,
                    tcp_buffer: self.buffer,
                    partial: None,
                },
            )
            .expect("file exists");
    }
    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
        if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
            self.done = Some(c);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Achieved KB/s for one (streams, buffer) cell.
fn run_cell(streams: u32, buffer: u64, quiet: bool) -> f64 {
    let tb = build_testbed(MasterSeed(17), quiet);
    let mgr = tb.build_manager(996_642_000);
    let (anl, lbl) = (tb.anl, tb.lbl);
    let mut eng = Engine::new(tb.network);
    let id = eng.add_agent(Box::new(OneGet {
        mgr,
        client: anl,
        server: lbl,
        streams,
        buffer,
        done: None,
    }));
    eng.run_until(SimTime::from_secs(4 * 3_600));
    eng.agent::<OneGet>(id)
        .and_then(|a| a.done.as_ref().map(|c| c.bandwidth_kbs))
        .unwrap_or(f64::NAN)
}

fn main() {
    let streams = [1u32, 2, 4, 8, 16];
    let buffers: [(u64, &str); 4] = [
        (16 * 1024, "16KB"),
        (128 * 1024, "128KB"),
        (1_000_000, "1MB"),
        (4_000_000, "4MB"),
    ];

    for quiet in [true, false] {
        let label = if quiet {
            "quiet path (no cross traffic)"
        } else {
            "loaded path (paper's conditions, t=1s into the campaign)"
        };
        let mut table = Table::new(format!("250MB GET bandwidth in KB/s, {label}")).headers(
            ["streams \\ buffer"]
                .into_iter()
                .map(String::from)
                .chain(buffers.iter().map(|(_, n)| n.to_string()))
                .collect::<Vec<_>>(),
        );
        for &s in &streams {
            let mut row = vec![s.to_string()];
            for &(b, _) in &buffers {
                row.push(format!("{:.0}", run_cell(s, b, quiet)));
            }
            table.row(row);
        }
        println!("{}", table.render());
    }
    println!(
        "expected shape: the 16KB column is window-limited (~streams * 16KB/RTT)\n\
         regardless of parallelism; with >=1MB buffers a single stream already\n\
         reaches its fair share and extra streams only help against competing\n\
         load (weight = streams). The paper's 8x1MB choice sits where both\n\
         effects saturate; storage (40 MB/s disk) caps the quiet-path ceiling."
    );
}
