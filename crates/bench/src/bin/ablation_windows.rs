//! Window ablation: sweep count windows (last N) and temporal windows
//! (last T hours) for mean and median estimators, checking the paper's
//! §6.2 finding that windowing buys no decisive accuracy on the
//! controlled workload.

use wanpred_bench::august_campaign;
use wanpred_obs::ObsSink;
use wanpred_predict::prelude::*;
use wanpred_testbed::{fmt_mape, observation_series, Pair, Table};

fn main() {
    let result = august_campaign();

    let mut suite: Vec<NamedPredictor> = Vec::new();
    for n in [1usize, 3, 5, 10, 15, 25, 50, 100] {
        suite.push(NamedPredictor::new(
            Box::new(MeanPredictor::new(Window::LastN(n))),
            true,
        ));
        suite.push(NamedPredictor::new(
            Box::new(MedianPredictor::new(Window::LastN(n))),
            true,
        ));
    }
    for hours in [1u64, 5, 15, 25, 48, 120, 240] {
        suite.push(NamedPredictor::new(
            Box::new(MeanPredictor::new(Window::LastSeconds(hours * 3_600))),
            true,
        ));
    }
    suite.push(NamedPredictor::new(
        Box::new(MeanPredictor::new(Window::All)),
        true,
    ));
    suite.push(NamedPredictor::new(
        Box::new(MedianPredictor::new(Window::All)),
        true,
    ));

    for pair in Pair::ALL {
        let obs = observation_series(&result, pair);
        let reports = Evaluation::replay(
            &obs,
            &suite,
            EvalEngine::Naive,
            EvalOptions::default(),
            &ObsSink::disabled(),
        );
        let mut table = Table::new(format!("window ablation, {}, classified", pair.label()))
            .headers(["predictor", "MAPE %", "answered", "declined"]);
        for r in &reports {
            table.row([
                r.name.clone(),
                fmt_mape(r.mape()),
                r.outcomes.len().to_string(),
                r.declined.to_string(),
            ]);
        }
        println!("{}", table.render());

        // The headline check: spread between the best and worst windowed
        // mean (excluding the degenerate N=1).
        let means: Vec<f64> = reports
            .iter()
            .filter(|r| r.name.starts_with("AVG") && !r.name.starts_with("AVG1+"))
            .filter_map(|r| r.mape())
            .collect();
        let min = means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = means.iter().copied().fold(0.0f64, f64::max);
        println!(
            "mean-family spread on {}: {:.1}%..{:.1}% ({:.1} points)\n",
            pair.label(),
            min,
            max,
            max - min
        );
    }
    println!(
        "paper (§6.2): no noticeable advantage from sliding windows or time frames\n\
         on the controlled data — the spread above should be small."
    );
}
