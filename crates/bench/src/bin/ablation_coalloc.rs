//! Co-allocation ablation: does striping a file across the broker's
//! top-k predicted sources — with mid-stream failover and rebalancing —
//! beat fetching it from the single best source?
//!
//! Runs the August workload through the co-allocating client at k = 1
//! (the single-best baseline: broker-selected source, no failover
//! target) and k = 2 (both testbed servers co-allocated), across three
//! networks: clean, faulty (an aggressive kill schedule on the WAN
//! links; a killed stripe's remaining bytes are re-planned onto the
//! survivor, resuming from the delivered offset), and chaos (the same
//! faults compounded with seeded log corruption and strict salvage).
//!
//! Writes the headline comparison to `BENCH_coalloc.json` at the repo
//! root. `--days N` shortens the campaign (CI smoke runs use `--days 2`);
//! `--chaos RATE` sets the chaos scenario's corruption rate (default
//! 0.1).

use std::env;

use wanpred_bench::{arg_value, DEFAULT_SEED};
use wanpred_simnet::fault::FaultConfig;
use wanpred_simnet::time::SimDuration;
use wanpred_testbed::{CampaignConfig, CoallocSummary, Table};

/// The aggressive kill schedule also used by the campaign tests: enough
/// resets that even short runs see kills land on in-flight stripes.
fn hostile_faults() -> FaultConfig {
    FaultConfig {
        kill_mean_interarrival: SimDuration::from_mins(40),
        ..FaultConfig::wan_default()
    }
}

struct Cell {
    scenario: &'static str,
    summary: CoallocSummary,
}

fn run_scenario(scenario: &'static str, seed: u64, days: u64, chaos: f64, k: usize) -> Cell {
    let mut b = CampaignConfig::builder(seed)
        .duration_days(days)
        .probes(false)
        .coalloc(k);
    if scenario != "clean" {
        // No retry policy: the first kill is a stripe's death, so every
        // fault that lands mid-transfer exercises the failover machinery
        // (with a retry budget the manager resumes in place first and
        // only multi-kill stripes reach the co-allocator).
        b = b.faults(hostile_faults());
    }
    if scenario == "chaos" {
        b = b.chaos(chaos);
    }
    let result = wanpred_testbed::run_campaign(&b.build());
    Cell {
        scenario,
        summary: result.coalloc.expect("coalloc mode"),
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let days: u64 = arg_value(&args, "--days")
        .and_then(|v| v.parse().ok())
        .unwrap_or(14);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let chaos: f64 = arg_value(&args, "--chaos")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);

    let mut cells: Vec<Cell> = Vec::new();
    for scenario in ["clean", "faulty", "chaos"] {
        for k in [1usize, 2] {
            cells.push(run_scenario(scenario, seed, days, chaos, k));
        }
    }

    let mut table = Table::new("co-allocation vs single-best (August workload)").headers([
        "network",
        "k",
        "completed",
        "failed",
        "goodput KB/s",
        "stripes",
        "rebalances",
        "salvaged MB",
    ]);
    for c in &cells {
        let s = &c.summary;
        table.row([
            c.scenario.to_string(),
            s.k.to_string(),
            s.completed.to_string(),
            s.failed.to_string(),
            format!("{:.0}", s.goodput_kbs()),
            s.stripes.to_string(),
            s.rebalances.to_string(),
            format!("{:.1}", s.bytes_salvaged as f64 / 1e6),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape: on every network k=2 moves the same workload at higher\n\
         goodput (both WAN paths carry chunks sized by the predicted bandwidth);\n\
         under faults the single-best baseline abandons killed transfers while\n\
         k=2 re-plans the dead source's remaining bytes onto the survivor —\n\
         salvaged bytes are kept, never re-fetched (tiling_violations = 0)."
    );

    // The headline claims, enforced: k=2 must complete faulty/chaos
    // campaigns with higher goodput and fewer failures than single-best,
    // and no completed transfer may double-fetch a byte range.
    let get = |scenario: &str, k: usize| -> &CoallocSummary {
        &cells
            .iter()
            .find(|c| c.scenario == scenario && c.summary.k == k)
            .expect("scenario ran")
            .summary
    };
    for c in &cells {
        assert_eq!(
            c.summary.tiling_violations, 0,
            "{} k={}: byte range double-counted or dropped",
            c.scenario, c.summary.k
        );
    }
    for scenario in ["clean", "faulty", "chaos"] {
        let (s1, s2) = (get(scenario, 1), get(scenario, 2));
        assert!(
            s2.goodput_kbs() > s1.goodput_kbs(),
            "{scenario}: k=2 goodput {:.0} must beat k=1 {:.0}",
            s2.goodput_kbs(),
            s1.goodput_kbs()
        );
    }
    for scenario in ["faulty", "chaos"] {
        let (s1, s2) = (get(scenario, 1), get(scenario, 2));
        assert!(
            s1.failed > 0,
            "{scenario}: the kill schedule never felled a k=1 transfer"
        );
        assert!(
            s2.failed < s1.failed,
            "{scenario}: k=2 failed {} must undercut k=1 {}",
            s2.failed,
            s1.failed
        );
        assert!(
            s2.rebalances > 0 && s2.bytes_salvaged > 0,
            "{scenario}: kills must trigger resume-from-offset rebalances"
        );
    }

    let mut rows = String::new();
    for c in &cells {
        let s = &c.summary;
        rows.push_str(&format!(
            "    {{\"network\": \"{}\", \"k\": {}, \"completed\": {}, \"failed\": {}, \
             \"goodput_kbs\": {:.1}, \"stripes\": {}, \"rebalances\": {}, \
             \"bytes_salvaged\": {}, \"tiling_violations\": {}}},\n",
            c.scenario,
            s.k,
            s.completed,
            s.failed,
            s.goodput_kbs(),
            s.stripes,
            s.rebalances,
            s.bytes_salvaged,
            s.tiling_violations
        ));
    }
    let rows = rows.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        "{{\n  \"days\": {days},\n  \"seed\": {seed},\n  \"chaos_rate\": {chaos},\n  \"results\": [\n{rows}\n  ]\n}}\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coalloc.json");
    std::fs::write(path, &json).expect("write BENCH_coalloc.json");
    println!("comparison written to {path}");
}
