//! Observability-overhead ablation: what the deterministic metrics layer
//! costs, and proof that it costs nothing when switched off.
//!
//! Runs the same August campaign three ways — no sink (the null-sink
//! baseline), sink enabled, and sink enabled again with the snapshot
//! exported — timing each configuration best-of-N. The headline number is
//! the enabled-sink overhead over the null baseline, which the roadmap
//! caps at 5%. The run also re-executes the enabled campaign with the
//! same seed and asserts the two exported snapshots are byte-identical,
//! so the perf gate doubles as a determinism gate.
//!
//! Writes the comparison to `BENCH_obs.json` at the repo root. `--days N`
//! shortens the campaign (CI smoke runs use `--days 2`).

use std::env;
use std::time::Instant;

use wanpred_bench::{arg_value, DEFAULT_SEED};
use wanpred_obs::ObsSink;
use wanpred_testbed::{run_campaign, CampaignConfig, CampaignResult, Table};

/// Timing repetitions per configuration; best and median are reported.
const REPS: usize = 3;

/// Time `REPS` runs, building a fresh config (and so a fresh sink) per
/// rep — a shared enabled sink would accumulate across repetitions.
fn time_campaign(mk_cfg: impl Fn() -> CampaignConfig) -> (f64, f64, CampaignResult) {
    let mut times = Vec::with_capacity(REPS);
    let mut last = None;
    for _ in 0..REPS {
        let cfg = mk_cfg();
        let start = Instant::now();
        let r = run_campaign(&cfg);
        times.push(start.elapsed().as_secs_f64() * 1_000.0);
        last = Some(r);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[0], times[REPS / 2], last.expect("REPS > 0"))
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let days: u64 = arg_value(&args, "--days")
        .and_then(|v| v.parse().ok())
        .unwrap_or(14);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);

    let base_cfg = |obs: ObsSink| {
        CampaignConfig::builder(seed)
            .duration_days(days)
            .probes(true)
            .obs(obs)
            .build()
    };

    println!("campaign: {days} days, seed {seed}; timing best-of-{REPS} per configuration\n");

    let (off_best, off_median, off_result) = time_campaign(|| base_cfg(ObsSink::disabled()));
    let (on_best, on_median, on_result) = time_campaign(|| base_cfg(ObsSink::enabled()));

    // The sink must be read-only: identical logs with and without it.
    assert_eq!(
        off_result.lbl_log, on_result.lbl_log,
        "obs perturbed the run"
    );
    assert_eq!(
        off_result.isi_log, on_result.isi_log,
        "obs perturbed the run"
    );

    // Determinism gate: a second enabled run exports the same bytes.
    let rerun = run_campaign(&base_cfg(ObsSink::enabled()));
    let snap = on_result.metrics.as_ref().expect("obs enabled");
    let snap2 = rerun.metrics.as_ref().expect("obs enabled");
    assert_eq!(
        snap.to_json(),
        snap2.to_json(),
        "same-seed snapshots must be byte-identical"
    );

    let overhead_pct = (on_best - off_best) / off_best * 100.0;
    let metric_count = snap.counters.len() + snap.gauges.len() + snap.histograms.len();

    let mut table = Table::new("observability overhead (campaign wall time, ms)").headers([
        "sink",
        "best",
        "median",
        "overhead vs off",
    ]);
    table.row([
        "disabled".into(),
        format!("{off_best:.1}"),
        format!("{off_median:.1}"),
        "-".into(),
    ]);
    table.row([
        "enabled".into(),
        format!("{on_best:.1}"),
        format!("{on_median:.1}"),
        format!("{overhead_pct:+.2}%"),
    ]);
    println!("{}", table.render());
    println!(
        "{} transfers observed, {metric_count} metric series exported; \
         snapshot determinism verified byte-for-byte.",
        snap.counter("campaign.transfers")
    );
    println!(
        "expected shape: the enabled sink stays within the 5% overhead budget\n\
         because every emission is an integer bump behind one mutex, and the\n\
         disabled sink is a no-op branch on an Option."
    );

    let json = format!(
        "{{\n  \"days\": {days},\n  \"seed\": {seed},\n  \"reps\": {REPS},\n  \
         \"disabled_best_ms\": {off_best:.3},\n  \"disabled_median_ms\": {off_median:.3},\n  \
         \"enabled_best_ms\": {on_best:.3},\n  \"enabled_median_ms\": {on_median:.3},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"metric_series\": {metric_count},\n  \
         \"snapshot_deterministic\": true\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("comparison written to {path}");
}
