//! Figures 14–21: relative performance of the predictors — the fraction
//! of transfers on which each was the best / the worst — per site pair
//! and size class.
//!
//! `-- --site isi` prints Figures 14–17; `--site lbl` prints Figures
//! 18–21; no argument prints all eight.

use wanpred_bench::{arg_value, august_campaign};
use wanpred_predict::SizeClass;
use wanpred_testbed::{fig14_21, fmt_pct, Pair, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pairs: Vec<Pair> = match arg_value(&args, "--site").as_deref() {
        Some("isi") => vec![Pair::IsiAnl],
        Some("lbl") => vec![Pair::LblAnl],
        Some(other) => panic!("unknown site {other:?}; use isi|lbl"),
        None => vec![Pair::IsiAnl, Pair::LblAnl],
    };
    let result = august_campaign();

    for pair in pairs {
        let base_fig = match pair {
            Pair::IsiAnl => 14,
            Pair::LblAnl => 18,
        };
        for (k, class) in SizeClass::ALL.iter().enumerate() {
            let rel = fig14_21(&result, pair, *class);
            let targets = rel.first().map(|r| r.targets).unwrap_or(0);
            let mut table = Table::new(format!(
                "Figure {}: relative performance, {} {} ranges ({} targets)",
                base_fig + k,
                pair.label(),
                class.label(),
                targets
            ))
            .headers(["predictor", "best %", "worst %"]);
            for r in &rel {
                table.row([
                    r.name.trim_end_matches("+C").to_string(),
                    fmt_pct(r.best_pct),
                    fmt_pct(r.worst_pct),
                ]);
            }
            println!("{}", table.render());
        }
    }
    println!(
        "paper shape (§6.2): predictors with high best-percentages also rank worst\n\
         often (no uniform winner); median-based predictors vary more."
    );
}
