//! Figures 8–11: percent absolute error of the 15 predictors for LBL–ANL
//! and ISI–ANL, per file-size class.
//!
//! `-- --class 10mb|100mb|500mb|1gb` selects one figure; with no argument
//! all four print (Figures 8, 9, 10, 11 in order).

use wanpred_bench::{arg_value, august_campaign};
use wanpred_predict::SizeClass;
use wanpred_testbed::{fig08_11, fmt_mape, Pair, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let classes: Vec<SizeClass> = match arg_value(&args, "--class") {
        Some(label) => vec![SizeClass::parse_label(&label)
            .unwrap_or_else(|| panic!("unknown class {label:?}; use 10mb|100mb|500mb|1gb"))],
        None => SizeClass::ALL.to_vec(),
    };
    let result = august_campaign();

    for (fig, class) in classes.iter().enumerate() {
        let fig_no = match class {
            SizeClass::C10MB => 8,
            SizeClass::C100MB => 9,
            SizeClass::C500MB => 10,
            SizeClass::C1GB => 11,
        };
        let _ = fig;
        let lbl = fig08_11(&result, Pair::LblAnl, *class);
        let isi = fig08_11(&result, Pair::IsiAnl, *class);
        let mut table = Table::new(format!(
            "Figure {fig_no}: % error, {} ranges (August)",
            class.label()
        ))
        .headers(["predictor", "LBL-ANL", "ISI-ANL", "n(LBL)", "n(ISI)"]);
        for (l, i) in lbl.iter().zip(&isi) {
            table.row([
                l.predictor.clone(),
                fmt_mape(l.mape),
                fmt_mape(i.mape),
                l.answered.to_string(),
                i.answered.to_string(),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "paper shape: errors shrink as the class grows; >=100MB classes sit near\n\
         or under ~25% for every technique; the 10MB class is far noisier."
    );
}
