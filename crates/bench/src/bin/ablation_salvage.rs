//! Salvage-robustness ablation: how much predictor accuracy survives log
//! corruption, and what the salvage decoder pays to get it back.
//!
//! Runs one clean August campaign, serializes each pair's log with CRC
//! trailers, damages it with the seeded chaos injector at a sweep of
//! corruption rates, and strict-salvages the wreckage. For every rate the
//! table reports the record-recovery fraction, the salvage wall time, and
//! the best/median MAPE of the 30-predictor suite replayed over the
//! salvaged log — the differential that tells you whether a torn or
//! bit-flipped history still supports the paper's predictions.
//!
//! Writes the headline comparison to `BENCH_salvage.json` at the repo
//! root. `--days N` shortens the campaign (CI smoke runs use `--days 2`).

use std::env;
use std::time::Instant;

use wanpred_bench::{arg_value, DEFAULT_SEED};
use wanpred_logfmt::{corrupt_doc, salvage_doc, ChaosConfig, SalvageOptions};
use wanpred_predict::prelude::*;
use wanpred_simnet::rng::MasterSeed;
use wanpred_simnet::time::SimDuration;
use wanpred_testbed::{fmt_mape, run_campaign, CampaignConfig, Pair, Table};

/// Corruption rates swept by the ablation: clean baseline through damage
/// well past the acceptance point.
const RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.10, 0.20];

/// One cell of the sweep: a pair's log at one corruption rate.
struct Cell {
    pair: Pair,
    rate: f64,
    original: usize,
    kept: usize,
    quarantined: usize,
    salvage_micros: u128,
    best: Option<f64>,
    median: Option<f64>,
}

fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "null".into(),
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let days: u64 = arg_value(&args, "--days")
        .and_then(|v| v.parse().ok())
        .unwrap_or(14);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);

    let clean = run_campaign(&CampaignConfig {
        duration: SimDuration::from_days(days),
        probes: false,
        ..CampaignConfig::august(seed)
    });
    println!(
        "campaign: {days} days, seed {seed}; sweeping corruption rates {RATES:?} \
         over the checksummed logs\n"
    );

    let mut cells = Vec::new();
    for pair in Pair::ALL {
        let doc = clean.log(pair).to_ulm_string_checksummed();
        for rate in RATES {
            let chaos_seed =
                MasterSeed(seed).derive_seed(&format!("salvage.{}.{rate}", pair.label()));
            let (damaged, _chaos) = corrupt_doc(&doc, &ChaosConfig::new(rate, chaos_seed));
            let start = Instant::now();
            let (log, report) = salvage_doc(&damaged, &SalvageOptions::strict());
            let salvage_micros = start.elapsed().as_micros();
            let reports = Evaluation::builder().build().run_log(&log);
            let mut mapes: Vec<f64> = reports.iter().filter_map(PredictorReport::mape).collect();
            mapes.sort_by(|a, b| a.total_cmp(b));
            cells.push(Cell {
                pair,
                rate,
                original: clean.log(pair).len(),
                kept: report.kept,
                quarantined: report.quarantined.len(),
                salvage_micros,
                best: mapes.first().copied(),
                median: (!mapes.is_empty()).then(|| mapes[mapes.len() / 2]),
            });
        }
    }

    let mut table = Table::new("salvaged-log predictor accuracy by corruption rate").headers([
        "pair",
        "rate",
        "recovered",
        "quarantined",
        "salvage µs",
        "best MAPE",
        "median MAPE",
    ]);
    for c in &cells {
        table.row([
            c.pair.label().to_string(),
            format!("{:.0}%", c.rate * 100.0),
            format!("{}/{}", c.kept, c.original),
            c.quarantined.to_string(),
            c.salvage_micros.to_string(),
            fmt_mape(c.best),
            fmt_mape(c.median),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape: at the acceptance point (5% corruption) strict salvage\n\
         keeps ≥95% of the records and the suite's error moves by fractions of a\n\
         point, because the paper's log-replay predictors only need a dense —\n\
         not perfect — observation history."
    );

    let mut rows_json = String::new();
    for c in &cells {
        rows_json.push_str(&format!(
            "    {{\"pair\": \"{}\", \"rate\": {}, \"original\": {}, \"kept\": {}, \"quarantined\": {}, \"salvage_micros\": {}, \"best_mape\": {}, \"median_mape\": {}}},\n",
            c.pair.label(),
            c.rate,
            c.original,
            c.kept,
            c.quarantined,
            c.salvage_micros,
            json_num(c.best),
            json_num(c.median)
        ));
    }
    let rows_json = rows_json.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        "{{\n  \"days\": {days},\n  \"seed\": {seed},\n  \"rates\": {RATES:?},\n  \"results\": [\n{rows_json}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_salvage.json");
    std::fs::write(path, &json).expect("write BENCH_salvage.json");
    println!("comparison written to {path}");
}
