//! Tournament-meta-predictor ablation: the per-pair online tournament
//! against the paper's fixed 30-variant suite.
//!
//! The paper freezes one predictor per deployment; the tournament races
//! the whole suite per path and serves the current rolling-MAPE winner.
//! This ablation replays the December campaign per pair and compares
//! the tournament's end-to-end MAPE with the single best fixed
//! predictor *chosen in hindsight* — a bar the tournament must reach
//! without hindsight, by switching as regimes move.
//!
//! Each pair's replay is run twice from scratch and must serve
//! bit-identical predictions with the same switch count, so the
//! accuracy gate doubles as a determinism gate. Writes the comparison
//! to `BENCH_tournament.json` at the repo root. `--days N` shortens the
//! campaign (CI smoke runs use `--days 2`).

use std::env;

use wanpred_bench::{arg_value, DEFAULT_SEED};
use wanpred_obs::{names, ObsSink};
use wanpred_predict::prelude::*;
use wanpred_testbed::{fmt_mape, observation_series, run_campaign, CampaignConfig, Pair, Table};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let days: u64 = arg_value(&args, "--days")
        .and_then(|v| v.parse().ok())
        .unwrap_or(14);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let opts = TournamentOptions {
        window: arg_value(&args, "--window")
            .and_then(|v| v.parse().ok())
            .unwrap_or(TournamentOptions::default().window),
        class_window: arg_value(&args, "--class-window")
            .and_then(|v| v.parse().ok())
            .unwrap_or(TournamentOptions::default().class_window),
        min_lead: arg_value(&args, "--min-lead")
            .and_then(|v| v.parse().ok())
            .unwrap_or(TournamentOptions::default().min_lead),
        ..TournamentOptions::default()
    };

    let result = run_campaign(
        &CampaignConfig::builder(seed)
            .december()
            .duration_days(days)
            .build(),
    );
    println!("December campaign: {days} days, seed {seed}\n");

    let mut rows = Vec::new();
    let mut table = Table::new("tournament vs best fixed predictor (MAPE, %)").headers([
        "pair",
        "best fixed",
        "fixed MAPE",
        "TOURN MAPE",
        "switches",
        "final winner",
    ]);
    for pair in Pair::ALL {
        let series = observation_series(&result, pair);

        // The paper's 30, scored the standard way; the hindsight bar is
        // the lowest per-pair MAPE among them (ties by name).
        let reports = Evaluation::replay(
            &series,
            &full_suite(),
            EvalEngine::Incremental,
            EvalOptions::default(),
            &ObsSink::disabled(),
        );
        let (best_name, best_mape) = reports
            .iter()
            .filter_map(|r| r.mape().map(|m| (r.name.as_str(), m)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)))
            .expect("some fixed predictor answers");

        let sink = ObsSink::enabled();
        let out = replay_tournament(&series, Tournament::with_default_suite(opts), &sink);
        let tourn_mape = out.report.mape().expect("tournament answers");

        // Determinism gate: a fresh second replay over the same series
        // must serve bit-identical predictions and switch identically.
        let rerun = replay_tournament(
            &series,
            Tournament::with_default_suite(opts),
            &ObsSink::disabled(),
        );
        assert_eq!(out.report.outcomes.len(), rerun.report.outcomes.len());
        for (a, b) in out.report.outcomes.iter().zip(&rerun.report.outcomes) {
            assert_eq!(
                a.predicted.to_bits(),
                b.predicted.to_bits(),
                "nondeterministic tournament replay at t={}",
                a.at_unix
            );
        }
        assert_eq!(out.switches, rerun.switches, "nondeterministic switching");
        assert_eq!(out.final_winner, rerun.final_winner);

        let snap = sink.snapshot();
        assert_eq!(
            snap.counter(names::PREDICT_TOURNAMENT_SWITCHES),
            out.switches
        );

        let winner = out.final_winner.clone().unwrap_or_else(|| "-".into());
        table.row([
            pair.label().to_string(),
            best_name.to_string(),
            fmt_mape(Some(best_mape)),
            fmt_mape(Some(tourn_mape)),
            out.switches.to_string(),
            winner.clone(),
        ]);
        rows.push(format!(
            "    {{\n      \"pair\": \"{}\",\n      \"best_fixed\": \"{best_name}\",\n      \
             \"best_fixed_mape\": {best_mape:.4},\n      \"tournament_mape\": {tourn_mape:.4},\n      \
             \"switches\": {},\n      \"final_winner\": \"{winner}\",\n      \
             \"tournament_leq_best_fixed\": {}\n    }}",
            pair.label(),
            out.switches,
            tourn_mape <= best_mape,
        ));
    }
    println!("{}", table.render());
    println!(
        "expected shape: the tournament matches or beats the hindsight-best fixed\n\
         predictor on every pair — it converges to the same winner on stable paths\n\
         and switches away faster than any fixed choice when a regime moves."
    );

    let json = format!(
        "{{\n  \"days\": {days},\n  \"seed\": {seed},\n  \"candidates\": {},\n  \
         \"pairs\": [\n{}\n  ],\n  \"replay_deterministic\": true\n}}\n",
        extended_suite().len(),
        rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tournament.json");
    std::fs::write(path, &json).expect("write BENCH_tournament.json");
    println!("comparison written to {path}");
}
