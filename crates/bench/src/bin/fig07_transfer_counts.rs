//! Figure 7: total GridFTP transfers and per-size-class counts for the
//! August and December campaigns, both site pairs. The two campaigns run
//! in parallel via rayon.

use rayon::join;
use wanpred_bench::{august_campaign, december_campaign};
use wanpred_predict::SizeClass;
use wanpred_testbed::{fig07, Pair, Table};

fn main() {
    let (aug, dec) = join(august_campaign, december_campaign);

    let mut table = Table::new("Figure 7: transfers per file-size class")
        .headers(["class", "site", "August", "December"]);
    for pair in [Pair::LblAnl, Pair::IsiAnl] {
        let a = fig07(&aug, pair);
        let d = fig07(&dec, pair);
        table.row([
            "All".to_string(),
            pair.label().to_string(),
            a.all.to_string(),
            d.all.to_string(),
        ]);
        for (i, class) in SizeClass::ALL.iter().enumerate() {
            table.row([
                class.label().to_string(),
                pair.label().to_string(),
                a.per_class[i].to_string(),
                d.per_class[i].to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "paper (Figure 7): LBL All 450/365, ISI All 432/334; 10MB class largest,\n\
         1GB class smallest. Counts are random draws from the same process, so\n\
         they match in distribution, not digit-for-digit."
    );
}
