//! Replica-selection gain: the benefit the paper's introduction promises.
//!
//! Replay the August campaign's history day by day: each evening, publish
//! the logs accumulated so far, then ask the broker (and the baseline
//! policies) which site to fetch a 500MB-class file from; score each
//! policy by the bandwidth the chosen path actually delivered in its next
//! transfer of that class. Prediction should beat random/round-robin
//! whenever the two paths genuinely differ.

use wanpred_bench::august_campaign;
use wanpred_core::prelude::*;
use wanpred_core::testbed::observation_series;
use wanpred_logfmt::TransferLog;
use wanpred_testbed::Table;

/// Log records up to a cutoff time.
fn log_until(log: &TransferLog, cutoff: u64) -> TransferLog {
    log.records()
        .iter()
        .filter(|r| r.end_unix <= cutoff)
        .cloned()
        .collect()
}

/// The next 500MB-class measured bandwidth at or after `t` on a pair.
fn next_measured(obs: &[Observation], t: u64) -> Option<f64> {
    obs.iter()
        .find(|o| o.at_unix >= t && SizeClass::of_bytes(o.file_size) == SizeClass::C500MB)
        .map(|o| o.bandwidth_kbs)
}

fn main() {
    let result = august_campaign();
    let lbl_obs = observation_series(&result, Pair::LblAnl);
    let isi_obs = observation_series(&result, Pair::IsiAnl);

    let hosts = ["dpsslx04.lbl.gov", "jet.isi.edu"];
    let mut policies: Vec<(&str, SelectionPolicy)> = vec![
        (
            "predicted-bandwidth",
            SelectionPolicy::predicted_bandwidth(),
        ),
        ("random", SelectionPolicy::random(1)),
        ("round-robin", SelectionPolicy::round_robin()),
        ("first-listed", SelectionPolicy::first_listed()),
    ];
    let mut achieved: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let mut oracle: Vec<f64> = Vec::new();

    // Hourly decisions inside the experiment window, days 3..14 (enough
    // warm-up history; ~150 decisions keep baseline noise small).
    let mut decision_times = Vec::new();
    for day in 3..14u64 {
        for h in [18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31] {
            decision_times.push(result.epoch_unix + day * 86_400 + h * 3_600);
        }
    }
    for now in decision_times {
        let mut fw = PredictiveFramework::new();
        fw.publish_server_log(
            hosts[0],
            "131.243.2.11",
            log_until(&result.lbl_log, now),
            now,
        );
        fw.publish_server_log(
            hosts[1],
            "128.9.160.11",
            log_until(&result.isi_log, now),
            now,
        );
        for host in hosts {
            fw.register_replica(
                "lfn://x/500MB",
                PhysicalReplica {
                    host: host.into(),
                    path: "/home/ftp/vazhkuda/500MB".into(),
                    size: 512_000_000,
                },
            )
            .expect("consistent sizes");
        }

        let truth = [next_measured(&lbl_obs, now), next_measured(&isi_obs, now)];
        let (Some(lbl_truth), Some(isi_truth)) = (truth[0], truth[1]) else {
            continue;
        };
        oracle.push(lbl_truth.max(isi_truth));

        for (i, (_, policy)) in policies.iter_mut().enumerate() {
            let sel = fw
                .select_replica_with("140.221.65.69", "lfn://x/500MB", policy, now)
                .expect("replicas registered");
            let got = if sel.replica().host == hosts[0] {
                lbl_truth
            } else {
                isi_truth
            };
            achieved[i].push(got);
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let oracle_mean = mean(&oracle);
    let mut table = Table::new(format!(
        "replica-selection gain over {} decisions (500MB class)",
        oracle.len()
    ))
    .headers(["policy", "mean achieved KB/s", "% of oracle"]);
    for ((name, _), got) in policies.iter().zip(&achieved) {
        let m = mean(got);
        table.row([
            name.to_string(),
            format!("{m:.0}"),
            format!("{:.1}", 100.0 * m / oracle_mean),
        ]);
    }
    table.row([
        "oracle (hindsight)".to_string(),
        format!("{oracle_mean:.0}"),
        "100.0".into(),
    ]);
    println!("{}", table.render());
    println!(
        "expected shape: predicted-bandwidth beats the uninformed baselines (random,\n\
         round-robin) by steering to the less-loaded path. With per-class AVG25\n\
         predictors the broker mostly converges on the long-run-best site, so it can\n\
         coincide with first-listed when that site happens to be listed first — the\n\
         paper's predictors are deliberately simple (§4), not load-tracking."
    );
}
