//! §7 future-work evaluation: does combining sporadic GridFTP history
//! with regular NWS probes beat either in isolation?
//!
//! Compares, per size class on the August campaign:
//! * `AVG25+C` — GridFTP history alone (the paper's best simple family);
//! * `HYBRID` — the same base scaled by the relative probe level
//!   (`ConditionScaled`);
//! * `NWSREG` — regression of transfer bandwidth on the probe reading
//!   alone (`ProbeRegression`).
//!
//! It also demonstrates cold-start extrapolation: predicting ISI-ANL
//! transfers from an LBL-ANL-fitted regression plus ISI probes only.

use wanpred_bench::august_campaign;
use wanpred_core::testbed::observation_series;
use wanpred_predict::prelude::*;
use wanpred_testbed::{fmt_mape, CampaignResult, Pair, Table};

fn probe_points(result: &CampaignResult, pair: Pair) -> Vec<ProbePoint> {
    result
        .probes(pair)
        .iter()
        .map(|p| ProbePoint {
            at_unix: result.epoch_unix + p.at.as_secs(),
            value: p.bandwidth_mbs(),
        })
        .collect()
}

/// Replay MAPE of a `predict(history, now, size) -> Option<f64>` closure.
fn replay_mape(
    obs: &[Observation],
    class: SizeClass,
    training: usize,
    mut predict: impl FnMut(&[Observation], u64, u64) -> Option<f64>,
) -> (Option<f64>, usize) {
    let mut pairs = Vec::new();
    for i in training..obs.len() {
        let t = obs[i];
        if SizeClass::of_bytes(t.file_size) != class {
            continue;
        }
        if let Some(p) = predict(&obs[..i], t.at_unix, t.file_size) {
            pairs.push((t.bandwidth_kbs, p));
        }
    }
    (wanpred_predict::stats::mape(&pairs), pairs.len())
}

fn main() {
    let result = august_campaign();

    for pair in Pair::ALL {
        let obs = observation_series(&result, pair);
        let probes = probe_points(&result, pair);

        let mut table = Table::new(format!("hybrid prediction, {} (August)", pair.label()))
            .headers(["class", "AVG25+C", "HYBRID", "NWSREG", "n"]);

        for class in SizeClass::ALL {
            let base_pred =
                NamedPredictor::new(Box::new(MeanPredictor::new(Window::LastN(25))), true);
            let (base, n) = replay_mape(&obs, class, 15, |h, now, size| {
                base_pred.predict(h, now, size)
            });

            let hybrid = ConditionScaled::default();
            let (hyb, _) = replay_mape(&obs, class, 15, |h, now, size| {
                hybrid.predict(h, &probes, now, size)
            });

            let reg = ProbeRegression::default();
            let (nwsreg, _) = replay_mape(&obs, class, 15, |h, now, _size| {
                let fitted = reg.fit(h, &probes, Some(class))?;
                reg.predict(&fitted, &probes, now)
            });

            table.row([
                class.label().to_string(),
                fmt_mape(base),
                fmt_mape(hyb),
                fmt_mape(nwsreg),
                n.to_string(),
            ]);
        }
        println!("{}", table.render());
    }

    // Cold start: fit on LBL-ANL, predict ISI-ANL using only ISI probes.
    let lbl_obs = observation_series(&result, Pair::LblAnl);
    let lbl_probes = probe_points(&result, Pair::LblAnl);
    let isi_obs = observation_series(&result, Pair::IsiAnl);
    let isi_probes = probe_points(&result, Pair::IsiAnl);
    let reg = ProbeRegression::default();

    let mut table =
        Table::new("cold start: ISI-ANL predicted from an LBL-ANL model + ISI probes only")
            .headers(["class", "cold-start MAPE", "informed AVG25+C MAPE", "n"]);
    for class in SizeClass::ALL {
        let donor = reg.fit(&lbl_obs, &lbl_probes, Some(class));
        let (cold, n) = replay_mape(&isi_obs, class, 0, |_h, now, _size| {
            donor.and_then(|d| reg.cold_start(&d, &isi_probes, now))
        });
        let base_pred = NamedPredictor::new(Box::new(MeanPredictor::new(Window::LastN(25))), true);
        let (informed, _) = replay_mape(&isi_obs, class, 15, |h, now, size| {
            base_pred.predict(h, now, size)
        });
        table.row([
            class.label().to_string(),
            fmt_mape(cold),
            fmt_mape(informed),
            n.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "observed shape: HYBRID modestly improves the base on >=100MB classes;\n\
         NWSREG — probes *calibrated against transfer history*, which is precisely\n\
         the paper's §7 proposal — wins decisively there, because current probe\n\
         readings track current path load. (Raw, uncalibrated probe levels remain\n\
         useless, per Figures 1-2; in our simulator the probe->bandwidth relation\n\
         is cleaner than reality, so treat the margin as an upper bound.)\n\
         Cold start is a usable bootstrap but loses to path-local history."
    );
}
