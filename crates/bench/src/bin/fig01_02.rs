//! Figures 1–2: GridFTP end-to-end bandwidth vs NWS probe bandwidth over
//! the two-week August campaign, for ISI–ANL (Figure 1) and LBL–ANL
//! (Figure 2).
//!
//! Prints summary statistics and, with `--csv`, the full `(time, series,
//! MB/s)` points for external plotting (log-scale y, as in the paper).

use wanpred_bench::{august_campaign, has_flag};
use wanpred_testbed::{fig01_02, Pair, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = august_campaign();

    let mut table = Table::new("Figures 1-2: GridFTP vs NWS bandwidth (MB/s)")
        .headers(["pair", "series", "samples", "min", "mean", "max"]);
    for pair in [Pair::IsiAnl, Pair::LblAnl] {
        let s = fig01_02(&result, pair);
        for (name, points) in [("GridFTP", &s.gridftp), ("NWS", &s.nws)] {
            let vals: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let max = vals.iter().copied().fold(0.0f64, f64::max);
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            table.row([
                s.pair.clone(),
                name.to_string(),
                vals.len().to_string(),
                format!("{min:.3}"),
                format!("{mean:.3}"),
                format!("{max:.3}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!("paper shape: NWS < 0.3 MB/s and flat; GridFTP ~1.5-10.2 MB/s, highly variable.");

    if has_flag(&args, "--csv") {
        println!("\npair,series,unix,mbps");
        for pair in [Pair::IsiAnl, Pair::LblAnl] {
            let s = fig01_02(&result, pair);
            for &(t, v) in &s.gridftp {
                println!("{},GridFTP,{t},{v:.4}", s.pair);
            }
            for &(t, v) in &s.nws {
                println!("{},NWS,{t},{v:.4}", s.pair);
            }
        }
    }
}
