//! Log-retention ablation (§3): the paper keeps all entries for its
//! evaluation but discusses trimming busy-site logs with an NWS-style
//! running window or NetLogger-style flush-and-restart. This ablation
//! measures what each retention policy costs in prediction accuracy.

use wanpred_bench::august_campaign;
use wanpred_core::testbed::observation_series;
use wanpred_logfmt::{TransferLog, TrimPolicy};
use wanpred_predict::prelude::*;
use wanpred_testbed::{fmt_mape, Pair, Table};

/// Replay the campaign log under a retention policy: after every append
/// the policy runs, and predictions see only the retained entries.
fn replay_with_policy(
    obs: &[Observation],
    policy: &TrimPolicy,
    class: SizeClass,
) -> (Option<f64>, usize) {
    let predictor = NamedPredictor::new(Box::new(MeanPredictor::new(Window::LastN(25))), true);
    let mut retained: Vec<Observation> = Vec::new();
    let mut pairs = Vec::new();
    for (i, target) in obs.iter().enumerate() {
        if i >= 15 && SizeClass::of_bytes(target.file_size) == class {
            if let Some(p) = predictor.predict(&retained, target.at_unix, target.file_size) {
                pairs.push((target.bandwidth_kbs, p));
            }
        }
        retained.push(*target);
        apply(policy, &mut retained);
    }
    (wanpred_predict::stats::mape(&pairs), pairs.len())
}

/// Apply a TrimPolicy to an observation vector by mirroring its log
/// semantics (policies operate on `TransferLog`; observations carry the
/// same timeline, so the translation is direct).
fn apply(policy: &TrimPolicy, retained: &mut Vec<Observation>) {
    match policy {
        TrimPolicy::KeepAll => {}
        TrimPolicy::LastRecords(n) => {
            if retained.len() > *n {
                retained.drain(..retained.len() - n);
            }
        }
        TrimPolicy::LastSeconds(secs) => {
            let newest = retained.iter().map(|o| o.at_unix).max().unwrap_or(0);
            let cutoff = newest.saturating_sub(*secs);
            retained.retain(|o| o.at_unix >= cutoff);
        }
        TrimPolicy::FlushAt(max) => {
            if retained.len() > *max {
                retained.clear();
            }
        }
    }
}

fn main() {
    let result = august_campaign();

    // Sanity: the observation-level replay matches TrimPolicy on the
    // actual TransferLog for the count-based policy.
    {
        let mut log: TransferLog = result.lbl_log.clone();
        TrimPolicy::LastRecords(50).apply(&mut log);
        assert_eq!(log.len(), 50.min(result.lbl_log.len()));
    }

    let policies: Vec<(String, TrimPolicy)> = vec![
        ("keep-all".into(), TrimPolicy::KeepAll),
        ("last 400 records".into(), TrimPolicy::LastRecords(400)),
        ("last 200 records".into(), TrimPolicy::LastRecords(200)),
        ("last 100 records".into(), TrimPolicy::LastRecords(100)),
        ("last 50 records".into(), TrimPolicy::LastRecords(50)),
        ("last 5 days".into(), TrimPolicy::LastSeconds(5 * 86_400)),
        ("last 2 days".into(), TrimPolicy::LastSeconds(2 * 86_400)),
        ("flush at 200".into(), TrimPolicy::FlushAt(200)),
        ("flush at 100".into(), TrimPolicy::FlushAt(100)),
    ];

    for pair in Pair::ALL {
        let obs = observation_series(&result, pair);
        let mut table = Table::new(format!("retention vs accuracy, {} (AVG25+C)", pair.label()))
            .headers(["policy", "100MB", "500MB", "1GB", "n(100MB)"]);
        for (name, policy) in &policies {
            let (m100, n100) = replay_with_policy(&obs, policy, SizeClass::C100MB);
            let (m500, _) = replay_with_policy(&obs, policy, SizeClass::C500MB);
            let (m1g, _) = replay_with_policy(&obs, policy, SizeClass::C1GB);
            table.row([
                name.clone(),
                fmt_mape(m100),
                fmt_mape(m500),
                fmt_mape(m1g),
                n100.to_string(),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "expected shape: windowed retention costs little accuracy (old data has\n\
         less predictive relevance, exactly the paper's premise for trimming);\n\
         aggressive flush-and-restart briefly starves the per-class windows after\n\
         each flush, showing up as slightly higher error."
    );
}
