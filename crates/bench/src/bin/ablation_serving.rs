//! Serving-layer ablation: the sharded snapshot server vs the
//! pre-`serve` architecture (every inquiry behind one directory lock,
//! re-filtering provider output inline), on identical registrant sets.
//!
//! Four phases:
//!
//! 1. **Correctness** — for every filter in the serving pool, the
//!    sharded server's answer must be the byte-identical entry set the
//!    unsharded GIIS oracle produces over the same site GRISes.
//! 2. **Degraded mode** — one registrant's lease is allowed to die
//!    mid-run; every post-death inquiry must keep returning its entries
//!    with `stalenesssecs` stamped exactly (serve-stale, never a stall).
//!    Any miss is a *stale violation* and fails the run.
//! 3. **Modeled open-loop load** — seeded Poisson arrivals through the
//!    M/M/c admission model on sim time: sustained QPS, p50/p95/p99
//!    latency, shed/coalesce counts, all replayed twice and asserted
//!    byte-identical (obs snapshots included).
//! 4. **Wall-clock throughput** — reader threads hammer both servers
//!    for a fixed wall window; the sharded server must beat the locked
//!    directory by ≥3x QPS (asserted in full runs, reported in smoke).
//!
//! Writes `BENCH_serving.json` at the repo root. `--smoke` shrinks the
//! workload for CI and skips only the wall-clock speedup assertion.

use std::env;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use wanpred_bench::{arg_value, DEFAULT_SEED};
use wanpred_core::infod::{
    run_open_loop, Dn, Giis, GridFtpPerfProvider, Gris, InquiryRequest, InquiryService,
    OpenLoopConfig, ProviderConfig, Registration, ServeConfig, ShardedServer,
};
use wanpred_obs::ObsSink;
use wanpred_testbed::{serving_filters, serving_now_unix, serving_sites, ServingSite, Table};

/// Build one GRIS per synthetic site, shared (via `Arc`) between the
/// sharded server and the oracle so both see identical provider state.
fn site_grises(sites: &[ServingSite]) -> Vec<(String, Arc<Gris>)> {
    sites
        .iter()
        .map(|s| {
            let mut g = Gris::new(Dn::parse("o=grid").expect("constant"));
            g.register_provider(Box::new(GridFtpPerfProvider::from_snapshot(
                ProviderConfig::new(&s.host, &s.address),
                s.log.clone(),
            )));
            (s.host.clone(), Arc::new(g))
        })
        .collect()
}

fn sharded_over(grises: &[(String, Arc<Gris>)], cfg: ServeConfig, now: u64) -> ShardedServer {
    let server = ShardedServer::new(cfg);
    for (host, g) in grises {
        server.register_site(host.clone(), u64::MAX, g.clone(), now);
    }
    server.refresh(now);
    server
}

fn oracle_over(grises: &[(String, Arc<Gris>)], now: u64) -> Giis {
    let giis = Giis::new("oracle");
    for (host, g) in grises {
        giis.register_service(
            Registration {
                id: host.clone(),
                ttl_secs: u64::MAX,
            },
            g.clone(),
            now,
        );
    }
    giis
}

/// Sorted LDIF rendering — the byte-identical entry-*set* comparison.
fn entry_set(svc: &dyn InquiryService, filter: &str, now: u64) -> Vec<String> {
    let req = InquiryRequest::parse(filter, now).expect("pool filter parses");
    let mut ldif: Vec<String> = svc
        .inquire(&req)
        .expect("inquiry answered")
        .entries
        .iter()
        .map(|e| e.to_ldif())
        .collect();
    ldif.sort();
    ldif
}

/// Count inquiries a single thread completes against `svc` until the
/// stop flag flips, cycling the filter pool with a fixed `now`.
fn hammer(svc: &dyn InquiryService, reqs: &[InquiryRequest], stop: &AtomicBool) -> u64 {
    let mut n = 0u64;
    while !stop.load(Ordering::Relaxed) {
        for req in reqs {
            std::hint::black_box(svc.inquire(req).expect("inquiry answered"));
            n += 1;
        }
    }
    n
}

/// Wall-clock QPS of `svc` under `threads` readers for `window`.
fn wallclock_qps(
    svc: &(dyn InquiryService + Sync),
    reqs: &[InquiryRequest],
    threads: usize,
    window: Duration,
) -> f64 {
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| scope.spawn(|| hammer(svc, reqs, &stop)))
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("reader")).sum()
    });
    total as f64 / start.elapsed().as_secs_f64()
}

/// The pre-`serve` architecture: the whole directory behind one lock,
/// every inquiry re-stamping and re-filtering inline.
struct LockedDirectory(Mutex<Giis>);

impl InquiryService for LockedDirectory {
    fn inquire(
        &self,
        req: &InquiryRequest,
    ) -> Result<wanpred_core::infod::InquiryResponse, wanpred_core::infod::InquiryError> {
        self.0.lock().inquire(req)
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let n_sites: usize = arg_value(&args, "--sites")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 6 } else { 12 });
    let records: usize = arg_value(&args, "--records")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 20 } else { 60 });
    let rate: f64 = arg_value(&args, "--rate")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 800.0 } else { 10_000.0 });
    let secs: u64 = arg_value(&args, "--secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 5 } else { 10 });
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4)
        });
    let wall_ms: u64 = arg_value(&args, "--wall-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 300 } else { 1_500 });

    let sites = serving_sites(n_sites, records, seed);
    let filters = serving_filters(&sites);
    let now = serving_now_unix(records);
    println!(
        "serving ablation: {n_sites} sites x {records} records, {} filters, seed {seed}\n",
        filters.len()
    );

    // --- Phase 1: correctness vs the unsharded oracle. -----------------
    let grises = site_grises(&sites);
    let server = sharded_over(&grises, ServeConfig::default(), now);
    let oracle = oracle_over(&grises, now);
    let mut compared = 0usize;
    for f in &filters {
        for t in [now, now + 1, now + 7] {
            assert_eq!(
                entry_set(&server, f, t),
                entry_set(&oracle, f, t),
                "sharded answer diverged from the oracle on {f} at t={t}"
            );
            compared += 1;
        }
    }
    println!("phase 1: {compared} (filter, time) answers byte-identical to the oracle");

    // --- Phase 2: registrant death serves stale, never stalls. ---------
    let degraded = ShardedServer::new(ServeConfig::default());
    let dead_host = &sites[0].host;
    for (i, (host, g)) in grises.iter().enumerate() {
        let ttl = if i == 0 { 30 } else { u64::MAX };
        degraded.register_site(host.clone(), ttl, g.clone(), now);
    }
    let dead_filter = format!("(&(objectclass=GridFTPPerfInfo)(hostname={dead_host}))");
    let mut stale_violations = 0u64;
    let mut last_live = now;
    let mut post_death_checks = 0u64;
    let mut max_staleness = 0u64;
    for t in now..now + 120 {
        let live = degraded.live_sites(t).iter().any(|s| s == dead_host);
        degraded.refresh(t);
        if live {
            last_live = t;
            continue;
        }
        post_death_checks += 1;
        let req = InquiryRequest::parse(&dead_filter, t).expect("filter parses");
        match degraded.inquire(&req) {
            Ok(resp) => {
                let expected = t - last_live;
                max_staleness = max_staleness.max(resp.staleness_secs);
                if resp.entries.is_empty() || resp.staleness_secs != expected {
                    stale_violations += 1;
                }
            }
            Err(_) => stale_violations += 1,
        }
    }
    assert!(post_death_checks > 80, "the lease never died");
    assert_eq!(
        stale_violations, 0,
        "dead registrant was not served stale-with-correct-stamp"
    );
    println!(
        "phase 2: {post_death_checks} post-death inquiries served stale \
         (max stalenesssecs {max_staleness}), 0 violations"
    );

    // --- Phase 3: modeled open-loop load, replayed twice. --------------
    let run_modeled = |coalesce: bool| {
        let sink = ObsSink::enabled();
        let mut srv = ShardedServer::new(ServeConfig {
            admission: Some(wanpred_core::infod::AdmissionConfig {
                coalesce,
                ..Default::default()
            }),
            ..ServeConfig::default()
        });
        srv.set_obs(sink.clone());
        for (host, g) in &grises {
            srv.register_site(host.clone(), u64::MAX, g.clone(), now);
        }
        srv.refresh(now);
        let report = run_open_loop(
            &srv,
            &OpenLoopConfig {
                seed,
                rate_per_sec: rate,
                duration_secs: secs,
                start_unix: now,
                filters: filters.clone(),
            },
            |sec| srv.refresh(sec),
        );
        (report, sink.snapshot())
    };
    let (report, snap) = run_modeled(true);
    let (replay, snap2) = run_modeled(true);
    assert_eq!(report.offered, replay.offered);
    assert_eq!(report.answered, replay.answered);
    assert_eq!(report.shed, replay.shed);
    assert_eq!(report.latencies_us, replay.latencies_us);
    assert_eq!(
        snap.to_json(),
        snap2.to_json(),
        "same-seed load runs must export byte-identical obs snapshots"
    );
    assert!(report.sustained_qps > 0.0, "modeled run answered nothing");
    let (p50, p95, p99) = (
        report.percentile_us(50.0),
        report.percentile_us(95.0),
        report.percentile_us(99.0),
    );
    println!(
        "phase 3: open loop {rate}/s x {secs}s -> offered {} answered {} \
         shed {} coalesced {} cache-hit {}; sustained {:.0} qps, \
         p50/p95/p99 = {p50}/{p95}/{p99} us (replayed byte-identically)",
        report.offered,
        report.answered,
        report.shed,
        report.coalesced,
        report.cache_hit_responses,
        report.sustained_qps,
    );

    // Coalescing ablation: with identical in-flight inquiries no longer
    // merged, the same arrival stream overruns the M/M/c queue and
    // admission control sheds — deterministically.
    let (uncoalesced, _) = run_modeled(false);
    assert_eq!(uncoalesced.coalesced, 0);
    let (uncoalesced_replay, _) = run_modeled(false);
    assert_eq!(uncoalesced.shed, uncoalesced_replay.shed);
    if !smoke {
        assert!(
            uncoalesced.shed > 0,
            "an over-capacity uncoalesced stream must be shed, not stalled"
        );
    }
    println!(
        "phase 3b: coalescing off -> answered {} shed {} (typed Overloaded, \
         replayed identically){}",
        uncoalesced.answered,
        uncoalesced.shed,
        if uncoalesced.shed > 0 && report.shed == 0 {
            "; coalescing absorbed that overload entirely"
        } else {
            ""
        }
    );

    // --- Phase 4: wall-clock throughput vs the locked directory. -------
    let reqs: Vec<InquiryRequest> = filters
        .iter()
        .map(|f| InquiryRequest::parse(f, now).expect("pool filter parses"))
        .collect();
    let locked = LockedDirectory(Mutex::new(oracle_over(&grises, now)));
    let plain = sharded_over(&grises, ServeConfig::default(), now);
    for (f, req) in filters.iter().zip(&reqs) {
        // Warm both so neither side refreshes providers inside the
        // timed window, then re-check equal correctness on this exact
        // workload.
        let a = plain.inquire(req).expect("warm");
        let b = locked.inquire(req).expect("warm");
        let mut sa: Vec<String> = a.entries.iter().map(|e| e.to_ldif()).collect();
        let mut sb: Vec<String> = b.entries.iter().map(|e| e.to_ldif()).collect();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb, "wall-clock servers disagree on {f}");
    }
    let window = Duration::from_millis(wall_ms);
    let locked_qps = wallclock_qps(&locked, &reqs, threads, window);
    let sharded_qps = wallclock_qps(&plain, &reqs, threads, window);
    let speedup = sharded_qps / locked_qps;
    let mut table = Table::new("wall-clock serving throughput (equal correctness)")
        .headers(["server", "qps", "speedup"]);
    table.row([
        "locked directory".into(),
        format!("{locked_qps:.0}"),
        "1.0x".into(),
    ]);
    table.row([
        "sharded server".into(),
        format!("{sharded_qps:.0}"),
        format!("{speedup:.1}x"),
    ]);
    println!("\n{}", table.render());
    println!(
        "({threads} reader threads, {wall_ms} ms window; the locked baseline \
         re-filters every provider entry per inquiry under one lock, the \
         sharded server answers from per-shard snapshots and filter caches)"
    );
    assert!(sharded_qps > 0.0 && locked_qps > 0.0);
    if !smoke {
        assert!(
            speedup >= 3.0,
            "sharded server must beat the locked directory by >=3x (got {speedup:.2}x)"
        );
    }

    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"sites\": {n_sites},\n  \"records_per_site\": {records},\n  \
         \"filters\": {},\n  \"oracle_answers_compared\": {compared},\n  \
         \"stale_violations\": {stale_violations},\n  \"post_death_checks\": {post_death_checks},\n  \
         \"open_loop\": {{\n    \"rate_per_sec\": {rate},\n    \"duration_secs\": {secs},\n    \
         \"offered\": {},\n    \"answered\": {},\n    \"shed\": {},\n    \"coalesced\": {},\n    \
         \"cache_hit_responses\": {},\n    \"sustained_qps\": {:.3},\n    \
         \"p50_us\": {p50},\n    \"p95_us\": {p95},\n    \"p99_us\": {p99},\n    \
         \"deterministic\": true,\n    \"uncoalesced_answered\": {},\n    \
         \"uncoalesced_shed\": {}\n  }},\n  \"wallclock\": {{\n    \"threads\": {threads},\n    \
         \"window_ms\": {wall_ms},\n    \"locked_qps\": {locked_qps:.1},\n    \
         \"sharded_qps\": {sharded_qps:.1},\n    \"speedup\": {speedup:.3}\n  }}\n}}\n",
        filters.len(),
        report.offered,
        report.answered,
        report.shed,
        report.coalesced,
        report.cache_hit_responses,
        report.sustained_qps,
        uncoalesced.answered,
        uncoalesced.shed,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("\ncomparison written to {path}");
}
