//! # wanpred-bench
//!
//! Regeneration harnesses for every table and figure in the paper's
//! evaluation, plus criterion micro-benchmarks for the performance claims
//! (§3 logging overhead, §5.1 provider filtering, §6.2 predictor cost).
//!
//! ## Figure binaries
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig01_02` | Figures 1–2: GridFTP vs NWS bandwidth series |
//! | `fig03_sample_log` | Figure 3: a sample transfer-log excerpt |
//! | `fig04_predictor_table` | Figure 4: the predictor taxonomy |
//! | `fig06_provider_output` | Figure 6: information-provider LDIF |
//! | `fig07_transfer_counts` | Figure 7: per-class transfer counts |
//! | `fig08_11_error_rates` | Figures 8–11: per-class percent error |
//! | `fig12_13_classification` | Figures 12–13: classification benefit |
//! | `fig14_21_relative` | Figures 14–21: relative best/worst |
//! | `summary_table` | §6.2 headline numbers |
//! | `ablation_windows` | window-choice ablation (§6.2 claim) |
//! | `ablation_classification` | classification-granularity ablation |
//! | `ablation_replica_gain` | broker vs baseline policies |
//! | `ablation_faults` | predictor accuracy on clean vs faulty logs |
//! | `ablation_salvage` | salvaged-log accuracy across corruption rates |
//! | `ablation_tournament` | online tournament vs best fixed predictor |
//! | `ablation_coalloc` | co-allocated top-k retrieval vs single-best under faults/chaos |
//! | `ablation_serving` | sharded serving layer vs locked directory under open-loop load |
//!
//! Run any of them with
//! `cargo run --release -p wanpred-bench --bin <name> [-- args]`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use wanpred_testbed::{run_campaign, CampaignConfig, CampaignResult};

/// The default seed used by all figure binaries so their outputs agree
/// with EXPERIMENTS.md.
pub const DEFAULT_SEED: u64 = 42;

/// Run (or re-run) the August campaign with the default seed.
pub fn august_campaign() -> CampaignResult {
    run_campaign(&CampaignConfig::august(DEFAULT_SEED))
}

/// Run the December campaign with the default seed.
pub fn december_campaign() -> CampaignResult {
    run_campaign(&CampaignConfig::december(DEFAULT_SEED))
}

/// Parse `--key value` style arguments (tiny, dependency-free).
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// True if `--flag` is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--class", "10mb", "--csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--class").as_deref(), Some("10mb"));
        assert_eq!(arg_value(&args, "--site"), None);
        assert!(has_flag(&args, "--csv"));
        assert!(!has_flag(&args, "--json"));
    }
}
