//! The NWS forecaster suite with dynamic selection.
//!
//! NWS runs a battery of cheap forecasters over each sensor's measurement
//! stream and, for every forecast, answers with whichever forecaster has
//! the lowest accumulated error so far — the "dynamic selection
//! techniques" the paper names as the model for its own future work (§7).
//! This module implements streaming forecasters (running mean, sliding
//! means/medians, last value, adaptive-gain EWMA) and the MAE-driven
//! [`DynamicForecaster`] ensemble.

use std::collections::VecDeque;

/// A streaming one-step-ahead forecaster.
pub trait Forecaster {
    /// Display name.
    fn name(&self) -> &str;
    /// Absorb one measurement.
    fn update(&mut self, value: f64);
    /// Forecast the next measurement, if enough state exists.
    fn forecast(&self) -> Option<f64>;
}

/// Running (cumulative) mean.
#[derive(Debug, Default, Clone)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// New, empty.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for RunningMean {
    fn name(&self) -> &str {
        "RUN_MEAN"
    }
    fn update(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn forecast(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
}

/// Mean of the last `k` measurements.
#[derive(Debug, Clone)]
pub struct SlidingMean {
    name: String,
    k: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl SlidingMean {
    /// Window of `k >= 1` values.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        SlidingMean {
            name: format!("SW_MEAN{k}"),
            k,
            buf: VecDeque::with_capacity(k),
            sum: 0.0,
        }
    }
}

impl Forecaster for SlidingMean {
    fn name(&self) -> &str {
        &self.name
    }
    fn update(&mut self, value: f64) {
        self.buf.push_back(value);
        self.sum += value;
        if self.buf.len() > self.k {
            self.sum -= self.buf.pop_front().expect("non-empty");
        }
    }
    fn forecast(&self) -> Option<f64> {
        (!self.buf.is_empty()).then(|| self.sum / self.buf.len() as f64)
    }
}

/// Median of the last `k` measurements.
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    name: String,
    k: usize,
    buf: VecDeque<f64>,
}

impl SlidingMedian {
    /// Window of `k >= 1` values.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        SlidingMedian {
            name: format!("SW_MED{k}"),
            k,
            buf: VecDeque::with_capacity(k),
        }
    }
}

impl Forecaster for SlidingMedian {
    fn name(&self) -> &str {
        &self.name
    }
    fn update(&mut self, value: f64) {
        self.buf.push_back(value);
        if self.buf.len() > self.k {
            self.buf.pop_front();
        }
    }
    fn forecast(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.buf.iter().copied().collect();
        v.sort_by(|a, b| a.total_cmp(b));
        let t = v.len();
        Some(if t % 2 == 1 {
            v[t / 2]
        } else {
            (v[t / 2 - 1] + v[t / 2]) / 2.0
        })
    }
}

/// Last value.
#[derive(Debug, Default, Clone)]
pub struct LastMeasurement {
    last: Option<f64>,
}

impl LastMeasurement {
    /// New, empty.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for LastMeasurement {
    fn name(&self) -> &str {
        "LAST"
    }
    fn update(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn forecast(&self) -> Option<f64> {
        self.last
    }
}

/// EWMA with a fixed gain.
#[derive(Debug, Clone)]
pub struct Ewma {
    name: String,
    gain: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Gain in `(0, 1]`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0);
        Ewma {
            name: format!("EWMA{:02}", (gain * 100.0).round() as u32),
            gain,
            state: None,
        }
    }
}

impl Forecaster for Ewma {
    fn name(&self) -> &str {
        &self.name
    }
    fn update(&mut self, value: f64) {
        self.state = Some(match self.state {
            Some(s) => self.gain * value + (1.0 - self.gain) * s,
            None => value,
        });
    }
    fn forecast(&self) -> Option<f64> {
        self.state
    }
}

/// The NWS-style ensemble: forecasts with whichever member has the lowest
/// mean absolute error so far.
pub struct DynamicForecaster {
    members: Vec<Box<dyn Forecaster + Send>>,
    abs_err_sum: Vec<f64>,
    scored: Vec<u64>,
}

impl DynamicForecaster {
    /// Build from explicit members.
    pub fn new(members: Vec<Box<dyn Forecaster + Send>>) -> Self {
        assert!(!members.is_empty());
        let n = members.len();
        DynamicForecaster {
            members,
            abs_err_sum: vec![0.0; n],
            scored: vec![0; n],
        }
    }

    /// The default NWS-like battery.
    pub fn standard() -> Self {
        DynamicForecaster::new(vec![
            Box::new(RunningMean::new()),
            Box::new(SlidingMean::new(5)),
            Box::new(SlidingMean::new(20)),
            Box::new(SlidingMedian::new(5)),
            Box::new(SlidingMedian::new(21)),
            Box::new(LastMeasurement::new()),
            Box::new(Ewma::new(0.1)),
            Box::new(Ewma::new(0.4)),
        ])
    }

    /// Absorb a measurement: members are scored on their pre-update
    /// forecast of it, then updated.
    pub fn update(&mut self, value: f64) {
        for (i, m) in self.members.iter_mut().enumerate() {
            if let Some(f) = m.forecast() {
                self.abs_err_sum[i] += (f - value).abs();
                self.scored[i] += 1;
            }
            m.update(value);
        }
    }

    /// Mean absolute error of a member so far.
    pub fn member_mae(&self, idx: usize) -> Option<f64> {
        (self.scored[idx] > 0).then(|| self.abs_err_sum[idx] / self.scored[idx] as f64)
    }

    /// The winning member's index and name.
    pub fn best_member(&self) -> (usize, &str) {
        let mut best = 0;
        let mut best_mae = f64::INFINITY;
        let mut found = false;
        for i in 0..self.members.len() {
            if let Some(m) = self.member_mae(i) {
                if !found || m < best_mae {
                    best = i;
                    best_mae = m;
                    found = true;
                }
            }
        }
        (best, self.members[best].name())
    }

    /// Forecast using the winning member; falls back through members by
    /// score if the winner declines.
    pub fn forecast(&self) -> Option<(&str, f64)> {
        let mut order: Vec<usize> = (0..self.members.len()).collect();
        order.sort_by(|&a, &b| {
            let ma = self.member_mae(a).unwrap_or(f64::INFINITY);
            let mb = self.member_mae(b).unwrap_or(f64::INFINITY);
            ma.total_cmp(&mb)
        });
        for i in order {
            if let Some(f) = self.members[i].forecast() {
                return Some((self.members[i].name(), f));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecasters_survive_nan_measurements() {
        // Regression: SlidingMedian's sort and the dynamic ranking both
        // used partial_cmp().expect(..); a NaN measurement (e.g. from a
        // corrupted probe) aborted forecasting. Both are total now.
        let mut m = SlidingMedian::new(5);
        for v in [800.0, f64::NAN, 900.0, 850.0] {
            m.update(v);
        }
        assert!(m.forecast().is_some());

        let mut d = DynamicForecaster::standard();
        for v in [800.0, f64::NAN, 900.0, 850.0, 870.0] {
            d.update(v);
        }
        let _ = d.forecast();
        let _ = d.best_member();
    }

    #[test]
    fn running_mean_streams() {
        let mut f = RunningMean::new();
        assert_eq!(f.forecast(), None);
        f.update(2.0);
        f.update(4.0);
        assert_eq!(f.forecast(), Some(3.0));
    }

    #[test]
    fn sliding_mean_window() {
        let mut f = SlidingMean::new(2);
        for v in [10.0, 1.0, 3.0] {
            f.update(v);
        }
        assert_eq!(f.forecast(), Some(2.0));
        assert_eq!(f.name(), "SW_MEAN2");
    }

    #[test]
    fn sliding_median_window() {
        let mut f = SlidingMedian::new(3);
        for v in [10.0, 1.0, 100.0, 2.0] {
            f.update(v);
        }
        // Window = [1, 100, 2] -> median 2.
        assert_eq!(f.forecast(), Some(2.0));
    }

    #[test]
    fn last_and_ewma() {
        let mut l = LastMeasurement::new();
        let mut e = Ewma::new(0.5);
        for v in [1.0, 2.0, 3.0] {
            l.update(v);
            e.update(v);
        }
        assert_eq!(l.forecast(), Some(3.0));
        // EWMA(0.5): 1 -> 1.5 -> 2.25.
        assert_eq!(e.forecast(), Some(2.25));
    }

    #[test]
    fn dynamic_picks_last_on_random_walk() {
        // Strongly autocorrelated series: LAST (or high-gain EWMA) wins
        // over the running mean.
        let mut d = DynamicForecaster::standard();
        let mut x = 100.0;
        let mut s = 12345u64;
        for _ in 0..500 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let step = ((s >> 33) % 1000) as f64 / 1000.0 - 0.5;
            x += step;
            d.update(x);
        }
        let (_, name) = d.best_member();
        assert!(name == "LAST" || name.starts_with("EWMA"), "winner {name}");
        assert!(d.forecast().is_some());
    }

    #[test]
    fn dynamic_picks_smoother_on_white_noise() {
        // i.i.d. noise around a level: averaging beats last-value.
        let mut d = DynamicForecaster::standard();
        let mut s = 99u64;
        for _ in 0..2000 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = ((s >> 33) % 1000) as f64 / 10.0 - 50.0;
            d.update(1000.0 + noise);
        }
        let (_, name) = d.best_member();
        assert_ne!(name, "LAST", "white noise should favour smoothing");
    }

    #[test]
    fn empty_ensemble_forecast_is_none() {
        let d = DynamicForecaster::standard();
        assert!(d.forecast().is_none());
    }

    #[test]
    fn member_mae_accumulates() {
        let mut d = DynamicForecaster::new(vec![Box::new(LastMeasurement::new())]);
        d.update(10.0); // no forecast yet -> unscored
        assert_eq!(d.member_mae(0), None);
        d.update(20.0); // LAST forecast 10, err 10
        d.update(20.0); // forecast 20, err 0
        assert_eq!(d.member_mae(0), Some(5.0));
    }
}
