//! The full NWS sensing pipeline: a probe agent that feeds its
//! measurements straight into a forecaster battery, exposing both the
//! raw series and live forecasts — what an NWS "sensor + forecaster"
//! deployment provides per monitored path.

use std::any::Any;

use wanpred_simnet::engine::{Agent, Ctx, TimerTag};
use wanpred_simnet::flow::FlowDone;

use crate::forecast::DynamicForecaster;
use crate::probe::{ProbeAgent, ProbeConfig, ProbeMeasurement};
use crate::series::TimeSeries;

/// A probe sensor with an attached dynamic forecaster.
///
/// Embeds a [`ProbeAgent`] and pushes every completed measurement into a
/// [`DynamicForecaster`]. After (or during) a run, callers can read the
/// measurement series, the current forecast, and which member technique
/// is winning.
pub struct ForecastingSensor {
    probe: ProbeAgent,
    forecaster: DynamicForecaster,
    /// Measurements already absorbed by the forecaster.
    absorbed: usize,
    series: TimeSeries,
    epoch_unix: u64,
}

impl ForecastingSensor {
    /// Build with the standard forecaster battery. `epoch_unix` maps
    /// simulation time zero to wall-clock for the series timestamps.
    pub fn new(cfg: ProbeConfig, epoch_unix: u64) -> Self {
        ForecastingSensor {
            probe: ProbeAgent::new(cfg),
            forecaster: DynamicForecaster::standard(),
            absorbed: 0,
            series: TimeSeries::new(),
            epoch_unix,
        }
    }

    /// Build with a custom forecaster ensemble.
    pub fn with_forecaster(
        cfg: ProbeConfig,
        forecaster: DynamicForecaster,
        epoch_unix: u64,
    ) -> Self {
        ForecastingSensor {
            probe: ProbeAgent::new(cfg),
            forecaster,
            absorbed: 0,
            series: TimeSeries::new(),
            epoch_unix,
        }
    }

    fn absorb_new(&mut self) {
        let ms = self.probe.measurements();
        while self.absorbed < ms.len() {
            let m = ms[self.absorbed];
            self.forecaster.update(m.bandwidth_bps);
            self.series
                .push(self.epoch_unix + m.at.as_secs(), m.bandwidth_bps);
            self.absorbed += 1;
        }
    }

    /// All measurements so far.
    pub fn measurements(&self) -> &[ProbeMeasurement] {
        self.probe.measurements()
    }

    /// The `(unix, bytes/sec)` series so far.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Current forecast: `(winning technique, bytes/sec)`.
    pub fn forecast(&self) -> Option<(&str, f64)> {
        self.forecaster.forecast()
    }

    /// The currently best-scoring member technique.
    pub fn best_technique(&self) -> &str {
        self.forecaster.best_member().1
    }

    /// The underlying forecaster (for MAE inspection).
    pub fn forecaster(&self) -> &DynamicForecaster {
        &self.forecaster
    }
}

impl Agent for ForecastingSensor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.probe.on_start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        self.probe.on_timer(ctx, tag);
        self.absorb_new();
    }

    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
        self.probe.on_flow_complete(ctx, done);
        self.absorb_new();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_simnet::engine::Engine;
    use wanpred_simnet::load::LoadModelConfig;
    use wanpred_simnet::network::Network;
    use wanpred_simnet::rng::MasterSeed;
    use wanpred_simnet::time::{SimDuration, SimTime};
    use wanpred_simnet::topology::Topology;

    #[test]
    fn sensor_measures_and_forecasts() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let (f, r) = t
            .add_duplex_link("ab", a, b, 12e6, SimDuration::from_millis(27))
            .unwrap();
        t.add_route(a, b, vec![f]).unwrap();
        t.add_route(b, a, vec![r]).unwrap();
        let net = Network::with_uniform_load(t, LoadModelConfig::default(), MasterSeed(4));
        let mut eng = Engine::new(net);
        let id = eng.add_agent(Box::new(ForecastingSensor::new(
            ProbeConfig::paper_default(a, b),
            996_642_000,
        )));
        eng.run_until(SimTime::from_secs(4 * 3_600));

        let sensor = eng.agent::<ForecastingSensor>(id).unwrap();
        assert!(sensor.measurements().len() >= 45);
        assert_eq!(sensor.series().len(), sensor.measurements().len());
        let (technique, value) = sensor.forecast().expect("forecasts after warm-up");
        assert!(!technique.is_empty());
        // Forecast in the plausible probe band (window-limited).
        assert!(value > 50_000.0 && value < 300_000.0, "{value}");
        // Series timestamps carry the epoch.
        assert!(sensor.series().points()[0].0 >= 996_642_000);
    }
}
