//! A simple time series container for sensor measurements, with the
//! summary statistics the comparison figures need.

use serde::{Deserialize, Serialize};

/// A `(unix seconds, value)` time series in nondecreasing time order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point; panics if time runs backwards.
    pub fn push(&mut self, at_unix: u64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at_unix >= last, "time series must be nondecreasing");
        }
        self.points.push((at_unix, value));
    }

    /// All points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// `(min, mean, max)` of the values, if any.
    pub fn summary(&self) -> Option<(f64, f64, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &(_, v) in &self.points {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some((min, sum / self.points.len() as f64, max))
    }

    /// Coefficient of variation (stddev / mean), if defined.
    pub fn cov(&self) -> Option<f64> {
        let (_, mean, _) = self.summary()?;
        // tidy: allow(float-eq): a zero mean is the exact division guard, not a tolerance question
        if mean == 0.0 {
            return None;
        }
        let var = self
            .points
            .iter()
            .map(|&(_, v)| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.points.len() as f64;
        Some(var.sqrt() / mean)
    }

    /// Points within `[from, to)`.
    pub fn window(&self, from: u64, to: u64) -> impl Iterator<Item = &(u64, f64)> {
        self.points
            .iter()
            .filter(move |(t, _)| *t >= from && *t < to)
    }

    /// Downsample to at most `n` points by stride (for plotting large
    /// series in the figure binaries).
    pub fn thin(&self, n: usize) -> TimeSeries {
        assert!(n > 0);
        if self.points.len() <= n {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(n);
        TimeSeries {
            points: self.points.iter().step_by(stride).copied().collect(),
        }
    }
}

impl FromIterator<(u64, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (u64, f64)>>(iter: T) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_summary() {
        let s: TimeSeries = [(1, 2.0), (2, 4.0), (3, 6.0)].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.summary(), Some((2.0, 4.0, 6.0)));
    }

    #[test]
    #[should_panic]
    fn backwards_time_panics() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(5, 1.0);
    }

    #[test]
    fn cov_of_constant_is_zero() {
        let s: TimeSeries = [(1, 5.0), (2, 5.0)].into_iter().collect();
        assert_eq!(s.cov(), Some(0.0));
        let e = TimeSeries::new();
        assert_eq!(e.cov(), None);
    }

    #[test]
    fn window_selects_range() {
        let s: TimeSeries = (0..10).map(|i| (i * 10, i as f64)).collect();
        let got: Vec<u64> = s.window(25, 55).map(|&(t, _)| t).collect();
        assert_eq!(got, vec![30, 40, 50]);
    }

    #[test]
    fn thin_reduces_size() {
        let s: TimeSeries = (0..100).map(|i| (i, i as f64)).collect();
        let t = s.thin(10);
        assert!(t.len() <= 10);
        assert_eq!(t.points()[0], (0, 0.0));
        let small = s.thin(1000);
        assert_eq!(small.len(), 100);
    }
}
