//! The NWS-style network sensor: small periodic probe transfers.
//!
//! The Network Weather Service keeps its probes lightweight — by default
//! 64 KB with standard (untuned) TCP buffers — precisely so they impose
//! little load. The paper's Figures 1–2 show the consequence: probe
//! bandwidth sits below 0.3 MB/s on paths where tuned 8-stream GridFTP
//! moves 1.5–10.2 MB/s, and with different variability, making raw NWS
//! measurements the wrong estimator for bulk transfers. This agent
//! reproduces those probes over the same simulated links.

use std::any::Any;

use serde::{Deserialize, Serialize};
use wanpred_simnet::engine::{Agent, Ctx, TimerTag};
use wanpred_simnet::flow::{FlowDone, FlowFailed, FlowSpec, TcpParams};
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_simnet::topology::NodeId;

/// Configuration of a probe sensor between one pair of nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Probe source node.
    pub from: NodeId,
    /// Probe destination node.
    pub to: NodeId,
    /// Probe payload in bytes (NWS default: 64 KB).
    pub probe_bytes: u64,
    /// Interval between probes (paper: every five minutes).
    pub interval: SimDuration,
    /// TCP parameters (NWS uses standard, untuned buffers).
    pub tcp: TcpParams,
    /// Give up on a probe after this long (a stalled probe must not stop
    /// the schedule).
    pub timeout: SimDuration,
}

impl ProbeConfig {
    /// The paper's probe setup: 64 KB, every 5 minutes, untuned buffers.
    pub fn paper_default(from: NodeId, to: NodeId) -> Self {
        ProbeConfig {
            from,
            to,
            probe_bytes: 64 * 1024,
            interval: SimDuration::from_mins(5),
            tcp: TcpParams::untuned(),
            timeout: SimDuration::from_mins(4),
        }
    }
}

/// One probe result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeMeasurement {
    /// Probe start time.
    pub at: SimTime,
    /// Payload bytes.
    pub bytes: u64,
    /// Wall time of the probe.
    pub duration: SimDuration,
    /// Measured bandwidth in bytes/sec.
    pub bandwidth_bps: f64,
}

impl ProbeMeasurement {
    /// Bandwidth in MB/s (10^6 bytes), the unit of Figures 1–2.
    pub fn bandwidth_mbs(&self) -> f64 {
        self.bandwidth_bps / 1e6
    }
}

const TICK: TimerTag = 1;
const TIMEOUT: TimerTag = 2;

/// The probe sensor agent. Retrieve its measurements after the run with
/// [`wanpred_simnet::engine::Engine::agent`].
#[derive(Debug)]
pub struct ProbeAgent {
    cfg: ProbeConfig,
    measurements: Vec<ProbeMeasurement>,
    in_flight: Option<(wanpred_simnet::flow::FlowId, SimTime)>,
    timeouts: usize,
    failures: usize,
}

impl ProbeAgent {
    /// Create a sensor from a config.
    pub fn new(cfg: ProbeConfig) -> Self {
        ProbeAgent {
            cfg,
            measurements: Vec::new(),
            in_flight: None,
            timeouts: 0,
            failures: 0,
        }
    }

    /// Completed measurements in time order.
    pub fn measurements(&self) -> &[ProbeMeasurement] {
        &self.measurements
    }

    /// Probes abandoned after the timeout.
    pub fn timeouts(&self) -> usize {
        self.timeouts
    }

    /// Probes torn down by the network (connection resets). Like NWS,
    /// the sensor records nothing for them and keeps its schedule.
    pub fn failures(&self) -> usize {
        self.failures
    }

    fn launch(&mut self, ctx: &mut Ctx<'_>) {
        let spec = FlowSpec::new(
            self.cfg.from,
            self.cfg.to,
            self.cfg.probe_bytes,
            1,
            self.cfg.tcp,
        );
        match ctx.start_flow(spec) {
            Ok(id) => {
                self.in_flight = Some((id, ctx.now()));
                ctx.set_timer(self.cfg.timeout, TIMEOUT);
            }
            Err(_) => {
                // No route: record nothing; the next tick will retry.
            }
        }
        ctx.set_timer(self.cfg.interval, TICK);
    }
}

impl Agent for ProbeAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.launch(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        match tag {
            TICK => {
                if self.in_flight.is_none() {
                    self.launch(ctx);
                } else {
                    // Previous probe still running; skip this slot but
                    // keep the schedule alive.
                    ctx.set_timer(self.cfg.interval, TICK);
                }
            }
            TIMEOUT => {
                if let Some((id, started)) = self.in_flight {
                    if ctx.now().saturating_since(started) >= self.cfg.timeout {
                        ctx.abort_flow(id);
                        self.in_flight = None;
                        self.timeouts += 1;
                    }
                }
            }
            _ => {}
        }
    }

    fn on_flow_complete(&mut self, _ctx: &mut Ctx<'_>, done: FlowDone) {
        if let Some((id, started)) = self.in_flight {
            if id == done.id {
                let duration = done.finished.saturating_since(started);
                let secs = duration.as_secs_f64();
                self.measurements.push(ProbeMeasurement {
                    at: started,
                    bytes: done.bytes,
                    duration,
                    bandwidth_bps: if secs > 0.0 {
                        done.bytes as f64 / secs
                    } else {
                        0.0
                    },
                });
                self.in_flight = None;
            }
        }
    }

    fn on_flow_failed(&mut self, _ctx: &mut Ctx<'_>, failed: FlowFailed) {
        if let Some((id, _)) = self.in_flight {
            if id == failed.id {
                self.in_flight = None;
                self.failures += 1;
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_simnet::engine::Engine;
    use wanpred_simnet::load::LoadModelConfig;
    use wanpred_simnet::network::Network;
    use wanpred_simnet::rng::MasterSeed;
    use wanpred_simnet::topology::Topology;

    fn net(capacity: f64, quiet: bool) -> (Network, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let (f, r) = t
            .add_duplex_link("ab", a, b, capacity, SimDuration::from_millis(27))
            .unwrap();
        t.add_route(a, b, vec![f]).unwrap();
        t.add_route(b, a, vec![r]).unwrap();
        let cfg = if quiet {
            LoadModelConfig {
                diurnal_mean_weight: 0.0,
                walk_sigma: 0.0,
                burst_weight: 0.0,
                ..LoadModelConfig::default()
            }
        } else {
            LoadModelConfig::default()
        };
        (Network::with_uniform_load(t, cfg, MasterSeed(9)), a, b)
    }

    #[test]
    fn probes_fire_on_schedule() {
        let (network, a, b) = net(12e6, true);
        let mut eng = Engine::new(network);
        let id = eng.add_agent(Box::new(ProbeAgent::new(ProbeConfig::paper_default(a, b))));
        eng.run_until(SimTime::from_secs(3_600));
        let agent = eng.agent::<ProbeAgent>(id).unwrap();
        // One at t=0 plus every 5 minutes: 12 per hour.
        assert_eq!(agent.measurements().len(), 12);
        assert_eq!(agent.timeouts(), 0);
    }

    #[test]
    fn probe_bandwidth_is_window_limited() {
        // Fat quiet link: the probe is still limited by its untuned 16 KB
        // buffer + slow start to well under 0.3 MB/s — Figures 1-2's NWS
        // ceiling.
        let (network, a, b) = net(100e6, true);
        let mut eng = Engine::new(network);
        let id = eng.add_agent(Box::new(ProbeAgent::new(ProbeConfig::paper_default(a, b))));
        eng.run_until(SimTime::from_secs(1_800));
        let agent = eng.agent::<ProbeAgent>(id).unwrap();
        for m in agent.measurements() {
            assert!(
                m.bandwidth_mbs() < 0.3,
                "probe measured {} MB/s",
                m.bandwidth_mbs()
            );
            assert!(m.bandwidth_mbs() > 0.05, "suspiciously slow probe");
        }
    }

    #[test]
    fn probes_stay_flat_under_load() {
        // A window-limited probe barely notices competing traffic: this is
        // exactly the paper's point about NWS data (low, *stable* readings
        // that carry little information about tuned bulk-transfer rates).
        let (network, a, b) = net(12e6, false);
        let mut eng = Engine::new(network);
        let id = eng.add_agent(Box::new(ProbeAgent::new(ProbeConfig::paper_default(a, b))));
        eng.run_until(SimTime::from_secs(6 * 3_600));
        let agent = eng.agent::<ProbeAgent>(id).unwrap();
        let bw: Vec<f64> = agent
            .measurements()
            .iter()
            .map(|m| m.bandwidth_bps)
            .collect();
        assert!(bw.len() > 50);
        let mean = bw.iter().sum::<f64>() / bw.len() as f64;
        let var = bw.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / bw.len() as f64;
        assert!(
            var.sqrt() / mean < 0.25,
            "window-limited probes should be comparatively stable"
        );
        assert!(mean < 0.3e6, "and below the 0.3 MB/s ceiling");
    }

    #[test]
    fn killed_probe_frees_the_sensor() {
        use wanpred_simnet::fault::{FaultAction, FaultSchedule, TimedFault};

        let (network, a, b) = net(12e6, true);
        let link = network.topology().links().next().unwrap().0;
        let mut eng = Engine::new(network);
        // Kill whatever is on the link shortly after the first probe
        // launches; the sensor must drop it and stay on schedule.
        eng.inject_faults(&FaultSchedule::from_events(vec![TimedFault {
            at: SimTime::from_secs_f64(0.2),
            action: FaultAction::KillFlows(link),
        }]));
        let id = eng.add_agent(Box::new(ProbeAgent::new(ProbeConfig::paper_default(a, b))));
        eng.run_until(SimTime::from_secs(3_600));
        let agent = eng.agent::<ProbeAgent>(id).unwrap();
        assert_eq!(agent.failures(), 1);
        assert_eq!(agent.timeouts(), 0);
        // 12 slots, one lost to the reset.
        assert_eq!(agent.measurements().len(), 11);
    }

    #[test]
    fn measurement_units() {
        let m = ProbeMeasurement {
            at: SimTime::ZERO,
            bytes: 65_536,
            duration: SimDuration::from_millis(500),
            bandwidth_bps: 131_072.0,
        };
        assert!((m.bandwidth_mbs() - 0.131072).abs() < 1e-9);
    }
}
