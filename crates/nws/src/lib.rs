//! # wanpred-nws
//!
//! A Network Weather Service-style sensing and forecasting subsystem:
//! periodic lightweight probe transfers over the simulated testbed
//! ([`probe`]), a streaming forecaster battery with MAE-driven dynamic
//! selection ([`forecast`]), the combined sensor+forecaster pipeline
//! ([`sensor`]), and a small time-series container ([`series`]).
//!
//! The paper (§2, Figures 1–2) contrasts NWS's 64 KB untuned probes with
//! instrumented GridFTP transfers: the probes sit below 0.3 MB/s and
//! mispredict tuned parallel bulk transfers both quantitatively and
//! qualitatively. This crate exists to regenerate that comparison over
//! the same simulated links, and to supply the dynamic-selection
//! technique the paper plans to borrow (§7).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod forecast;
pub mod probe;
pub mod sensor;
pub mod series;

pub use forecast::{
    DynamicForecaster, Ewma, Forecaster, LastMeasurement, RunningMean, SlidingMean, SlidingMedian,
};
pub use probe::{ProbeAgent, ProbeConfig, ProbeMeasurement};
pub use sensor::ForecastingSensor;
pub use series::TimeSeries;
