//! Deterministic fault injection: link outages, bandwidth degradation and
//! mid-flight flow kills.
//!
//! Real wide-area GridFTP deployments see dropped connections, server
//! outages and stalled flows (NorduGrid's GridFTP evaluation and Allcock
//! et al. both report them as routine); a simulator that never produces
//! them yields unrealistically clean logs and never exercises recovery
//! paths. A [`FaultSchedule`] is generated *up front* from a
//! [`MasterSeed`] — it is a pure function of `(config, topology, seed,
//! horizon)`, so a faulty run is exactly as replayable as a clean one —
//! and injected into the [`crate::engine::Engine`] before the run starts.
//!
//! Three fault classes, each an independent per-link renewal process:
//!
//! * **Outages** — a link's capacity collapses for a window; flows
//!   crossing it stall (rate ≈ 0) until the window ends. Agents observe
//!   this only as elapsed time, which is what makes per-transfer
//!   deadlines (see `wanpred-gridftp`) necessary.
//! * **Degradations** — the capacity is multiplied by a factor in
//!   `(0, 1)` for a window: the "sick but not dead" path.
//! * **Flow kills** — every flow traversing the link at the fault instant
//!   is torn down (connection reset); owners receive
//!   [`crate::engine::Agent::on_flow_failed`] with the delivered
//!   fraction.

use rand::rngs::StdRng;

use crate::rng::{exponential, MasterSeed};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, Topology};

/// One atomic fault action applied by the engine at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The link goes dark: effective capacity collapses to ~0.
    LinkDown(LinkId),
    /// The outage ends; capacity returns to the degradation-adjusted
    /// value.
    LinkUp(LinkId),
    /// A degradation episode begins: capacity is multiplied by the
    /// factor (in `(0, 1)`).
    DegradeStart(LinkId, f64),
    /// The degradation episode ends.
    DegradeEnd(LinkId),
    /// Every flow traversing the link is killed (connection reset).
    KillFlows(LinkId),
}

impl FaultAction {
    /// The link this action applies to.
    pub fn link(&self) -> LinkId {
        match self {
            FaultAction::LinkDown(l)
            | FaultAction::LinkUp(l)
            | FaultAction::DegradeStart(l, _)
            | FaultAction::DegradeEnd(l)
            | FaultAction::KillFlows(l) => *l,
        }
    }
}

/// A fault action with its scheduled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedFault {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// Configuration of the per-link fault processes. All inter-arrival
/// draws are exponential; window lengths are exponential truncated to
/// `[min, max]`. A mean inter-arrival of [`SimDuration::ZERO`] disables
/// that fault class.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Mean time between outage windows on one link (0 disables).
    pub outage_mean_interarrival: SimDuration,
    /// Minimum outage length.
    pub outage_min: SimDuration,
    /// Maximum outage length.
    pub outage_max: SimDuration,
    /// Mean time between degradation episodes on one link (0 disables).
    pub degrade_mean_interarrival: SimDuration,
    /// Minimum episode length.
    pub degrade_min: SimDuration,
    /// Maximum episode length.
    pub degrade_max: SimDuration,
    /// Lower bound of the capacity factor drawn per episode.
    pub degrade_factor_min: f64,
    /// Upper bound of the capacity factor drawn per episode.
    pub degrade_factor_max: f64,
    /// Mean time between kill events on one link (0 disables).
    pub kill_mean_interarrival: SimDuration,
}

impl FaultConfig {
    /// A calibrated "unreliable wide area" profile: a couple of outages
    /// and a handful of degradations per link per day, plus connection
    /// resets every couple of hours — roughly the failure texture the
    /// NorduGrid GridFTP evaluation reports for production Grid
    /// transfers. A kill only bites when a flow is on the link at that
    /// instant, so with the paper's workload (a transfer every ~30 min
    /// per pair, most finishing within minutes) this yields on the order
    /// of one retried transfer per pair per day.
    pub fn wan_default() -> Self {
        FaultConfig {
            outage_mean_interarrival: SimDuration::from_hours(10),
            outage_min: SimDuration::from_secs(30),
            outage_max: SimDuration::from_mins(12),
            degrade_mean_interarrival: SimDuration::from_hours(4),
            degrade_min: SimDuration::from_mins(2),
            degrade_max: SimDuration::from_mins(45),
            degrade_factor_min: 0.05,
            degrade_factor_max: 0.5,
            kill_mean_interarrival: SimDuration::from_hours(2),
        }
    }

    /// No faults at all (useful as a base for struct-update syntax).
    pub fn none() -> Self {
        FaultConfig {
            outage_mean_interarrival: SimDuration::ZERO,
            outage_min: SimDuration::from_secs(1),
            outage_max: SimDuration::from_secs(1),
            degrade_mean_interarrival: SimDuration::ZERO,
            degrade_min: SimDuration::from_secs(1),
            degrade_max: SimDuration::from_secs(1),
            degrade_factor_min: 0.5,
            degrade_factor_max: 0.5,
            kill_mean_interarrival: SimDuration::ZERO,
        }
    }
}

/// A fully materialized, time-sorted fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<TimedFault>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Generate the schedule for every link of `topo` over `[0, horizon]`.
    ///
    /// Each `(fault class, link)` pair draws from its own RNG stream
    /// derived from `seed` and the link's *name*, so adding links or
    /// reordering fault classes never perturbs the draws of existing
    /// ones — the same determinism contract as the load models.
    pub fn generate(
        cfg: &FaultConfig,
        topo: &Topology,
        seed: MasterSeed,
        horizon: SimDuration,
    ) -> Self {
        let fault_seed = seed.child("faults");
        let mut events = Vec::new();
        for (link_id, link) in topo.links() {
            // Outage windows: non-overlapping per link.
            Self::windows(
                &mut events,
                &mut fault_seed.derive(&format!("outage.{}", link.name)),
                cfg.outage_mean_interarrival,
                cfg.outage_min,
                cfg.outage_max,
                horizon,
                |at, end| {
                    [
                        TimedFault {
                            at,
                            action: FaultAction::LinkDown(link_id),
                        },
                        TimedFault {
                            at: end,
                            action: FaultAction::LinkUp(link_id),
                        },
                    ]
                },
            );
            // Degradation episodes: non-overlapping per link; the factor
            // is drawn from the same stream as the window so the pair is
            // reproducible as a unit.
            if cfg.degrade_mean_interarrival > SimDuration::ZERO {
                use rand::Rng;
                let mut rng = fault_seed.derive(&format!("degrade.{}", link.name));
                let mut t = SimTime::ZERO;
                loop {
                    let gap = exponential(&mut rng, cfg.degrade_mean_interarrival.as_secs_f64());
                    let start = t + SimDuration::from_secs_f64(gap);
                    if start > SimTime::ZERO + horizon {
                        break;
                    }
                    let len = exponential(&mut rng, cfg.degrade_min.as_secs_f64().max(1.0))
                        .clamp(cfg.degrade_min.as_secs_f64(), cfg.degrade_max.as_secs_f64());
                    let end = start + SimDuration::from_secs_f64(len);
                    let factor = if cfg.degrade_factor_max > cfg.degrade_factor_min {
                        rng.gen_range(cfg.degrade_factor_min..cfg.degrade_factor_max)
                    } else {
                        cfg.degrade_factor_min
                    };
                    events.push(TimedFault {
                        at: start,
                        action: FaultAction::DegradeStart(link_id, factor),
                    });
                    events.push(TimedFault {
                        at: end,
                        action: FaultAction::DegradeEnd(link_id),
                    });
                    t = end;
                }
            }
            // Kill events: point process.
            if cfg.kill_mean_interarrival > SimDuration::ZERO {
                let mut rng = fault_seed.derive(&format!("kill.{}", link.name));
                let mut t = SimTime::ZERO;
                loop {
                    let gap = exponential(&mut rng, cfg.kill_mean_interarrival.as_secs_f64());
                    t += SimDuration::from_secs_f64(gap);
                    if t > SimTime::ZERO + horizon {
                        break;
                    }
                    events.push(TimedFault {
                        at: t,
                        action: FaultAction::KillFlows(link_id),
                    });
                }
            }
        }
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Generate non-overlapping `[start, end]` windows and push the two
    /// boundary events produced by `mk`.
    fn windows(
        events: &mut Vec<TimedFault>,
        rng: &mut StdRng,
        mean_gap: SimDuration,
        min_len: SimDuration,
        max_len: SimDuration,
        horizon: SimDuration,
        mk: impl Fn(SimTime, SimTime) -> [TimedFault; 2],
    ) {
        if mean_gap == SimDuration::ZERO {
            return;
        }
        let mut t = SimTime::ZERO;
        loop {
            let gap = exponential(rng, mean_gap.as_secs_f64());
            let start = t + SimDuration::from_secs_f64(gap);
            if start > SimTime::ZERO + horizon {
                break;
            }
            let len = exponential(rng, min_len.as_secs_f64().max(1.0))
                .max(min_len.as_secs_f64())
                .min(max_len.as_secs_f64());
            let end = start + SimDuration::from_secs_f64(len);
            events.extend(mk(start, end));
            t = end;
        }
    }

    /// The scheduled events, time-sorted.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of actions of the kill kind (diagnostics).
    pub fn kill_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::KillFlows(_)))
            .count()
    }

    /// Count of outage windows (diagnostics).
    pub fn outage_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::LinkDown(_)))
            .count()
    }

    /// Build a schedule directly from events (tests, scripted scenarios).
    pub fn from_events(mut events: Vec<TimedFault>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn topo() -> Topology {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_duplex_link("ab", a, b, 1e6, SimDuration::from_millis(10))
            .unwrap();
        t
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::wan_default();
        let t = topo();
        let a = FaultSchedule::generate(&cfg, &t, MasterSeed(7), SimDuration::from_days(14));
        let b = FaultSchedule::generate(&cfg, &t, MasterSeed(7), SimDuration::from_days(14));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FaultConfig::wan_default();
        let t = topo();
        let a = FaultSchedule::generate(&cfg, &t, MasterSeed(1), SimDuration::from_days(14));
        let b = FaultSchedule::generate(&cfg, &t, MasterSeed(2), SimDuration::from_days(14));
        assert_ne!(a, b);
    }

    #[test]
    fn events_are_sorted_and_windows_are_paired() {
        let cfg = FaultConfig::wan_default();
        let t = topo();
        let s = FaultSchedule::generate(&cfg, &t, MasterSeed(3), SimDuration::from_days(14));
        for w in s.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Every LinkDown has a matching later LinkUp per link.
        let downs = s.outage_count();
        let ups = s
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::LinkUp(_)))
            .count();
        assert_eq!(downs, ups);
        // Degradation factors fall inside the configured band.
        for e in s.events() {
            if let FaultAction::DegradeStart(_, f) = e.action {
                assert!(
                    (cfg.degrade_factor_min..=cfg.degrade_factor_max).contains(&f),
                    "factor {f}"
                );
            }
        }
    }

    #[test]
    fn none_config_yields_empty_schedule() {
        let t = topo();
        let s = FaultSchedule::generate(
            &FaultConfig::none(),
            &t,
            MasterSeed(1),
            SimDuration::from_days(14),
        );
        assert!(s.is_empty());
    }

    #[test]
    fn horizon_bounds_event_times() {
        let cfg = FaultConfig::wan_default();
        let t = topo();
        let horizon = SimDuration::from_days(2);
        let s = FaultSchedule::generate(&cfg, &t, MasterSeed(5), horizon);
        for e in s.events() {
            // Window *starts* and kills are inside the horizon; a window
            // end may spill slightly past it, which the engine tolerates.
            if !matches!(
                e.action,
                FaultAction::LinkUp(_) | FaultAction::DegradeEnd(_)
            ) {
                assert!(e.at <= SimTime::ZERO + horizon, "{:?}", e);
            }
        }
    }
}
