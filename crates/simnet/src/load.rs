//! Cross-traffic (background load) models.
//!
//! The paper's testbed links carry uncontrolled competing traffic; that
//! competition is the dominant source of the 1.5–10.2 MB/s spread seen in
//! Figures 1–2. We model background load on each link as a **competing
//! weight** `W(t) >= 0`: a foreground transfer using `n` parallel streams
//! on a link with capacity `C` and background weight `W` receives a fair
//! share of `C * n / (n + W)` when not limited elsewhere (see
//! [`crate::fair`]).
//!
//! `W(t)` is a piecewise-constant stochastic process advanced at discrete
//! ticks, built from three superposed components:
//!
//! 1. a **diurnal profile** — business-hours load is higher; the paper ran
//!    its controlled transfers 6 pm–8 am to dodge the worst of it, but the
//!    tail of the profile still modulates the observations;
//! 2. a mean-reverting **random walk** — slowly wandering baseline
//!    utilization (route changes, long-lived bulk flows);
//! 3. heavy-tailed **bursts** — Poisson arrivals of bursts whose durations
//!    are bounded-Pareto distributed ("elephant" flows joining the path).

use rand::rngs::StdRng;
use rand::Rng;

use crate::rng::{bounded_pareto, exponential, standard_normal, MasterSeed};
use crate::time::{SimDuration, SimTime};

/// A 24-entry hour-of-day multiplier profile for diurnal load.
///
/// Values are relative weights; `profile[h]` scales the diurnal component
/// during hour `h` (0–23, in the simulation's local time).
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    hours: [f64; 24],
}

impl DiurnalProfile {
    /// A flat (no diurnal variation) profile.
    pub fn flat(level: f64) -> Self {
        DiurnalProfile { hours: [level; 24] }
    }

    /// A typical research-network weekday profile: quiet overnight, ramping
    /// from 8 am, peaking early-to-mid afternoon, tapering through the
    /// evening. Values are multipliers around 1.0.
    pub fn business_hours() -> Self {
        let hours = [
            0.35, 0.30, 0.28, 0.27, 0.28, 0.32, // 00-05
            0.45, 0.65, 0.90, 1.15, 1.35, 1.45, // 06-11
            1.50, 1.55, 1.50, 1.40, 1.30, 1.15, // 12-17
            0.95, 0.80, 0.68, 0.58, 0.48, 0.40, // 18-23
        ];
        DiurnalProfile { hours }
    }

    /// Construct from explicit per-hour multipliers.
    pub fn from_hours(hours: [f64; 24]) -> Self {
        assert!(hours.iter().all(|h| h.is_finite() && *h >= 0.0));
        DiurnalProfile { hours }
    }

    /// Multiplier at a given time, linearly interpolated between hour
    /// midpoints so the profile is continuous.
    pub fn at(&self, t: SimTime, day_offset: SimDuration) -> f64 {
        let secs_of_day = (t.as_secs() + day_offset.as_secs()) % 86_400;
        let h = (secs_of_day / 3_600) as usize;
        let frac = (secs_of_day % 3_600) as f64 / 3_600.0;
        // Interpolate between the midpoint of hour h and hour h+1.
        let (a, b, w) = if frac < 0.5 {
            (self.hours[(h + 23) % 24], self.hours[h], frac + 0.5)
        } else {
            (self.hours[h], self.hours[(h + 1) % 24], frac - 0.5)
        };
        a + (b - a) * w
    }
}

/// Configuration for a link's background-load process.
#[derive(Debug, Clone)]
pub struct LoadModelConfig {
    /// Mean background weight contributed by the diurnal component.
    pub diurnal_mean_weight: f64,
    /// Hour-of-day shape of the diurnal component.
    pub profile: DiurnalProfile,
    /// Phase offset applied to the profile (models timezone differences
    /// between link endpoints; ESnet paths span CDT/PDT).
    pub phase: SimDuration,
    /// Standard deviation of the mean-reverting random-walk component per
    /// tick (Ornstein-Uhlenbeck style).
    pub walk_sigma: f64,
    /// Mean-reversion rate per tick for the random walk, in `[0, 1]`.
    pub walk_revert: f64,
    /// Mean time between burst arrivals.
    pub burst_mean_interarrival: SimDuration,
    /// Pareto shape for burst durations (lower = heavier tail).
    pub burst_alpha: f64,
    /// Minimum burst duration.
    pub burst_min: SimDuration,
    /// Maximum burst duration.
    pub burst_max: SimDuration,
    /// Weight added by a single burst (mean; actual is uniform 0.5x–1.5x).
    pub burst_weight: f64,
    /// Interval between state-advance ticks.
    pub tick: SimDuration,
}

impl Default for LoadModelConfig {
    fn default() -> Self {
        LoadModelConfig {
            diurnal_mean_weight: 6.0,
            profile: DiurnalProfile::business_hours(),
            phase: SimDuration::ZERO,
            walk_sigma: 0.35,
            walk_revert: 0.05,
            burst_mean_interarrival: SimDuration::from_mins(25),
            burst_alpha: 1.3,
            burst_min: SimDuration::from_secs(30),
            burst_max: SimDuration::from_hours(4),
            burst_weight: 4.0,
            tick: SimDuration::from_secs(60),
        }
    }
}

/// An active burst: extra weight until `until`.
#[derive(Debug, Clone, Copy)]
struct Burst {
    until: SimTime,
    weight: f64,
}

/// The per-link background-load process.
///
/// Advance with [`LinkLoadModel::advance_to`]; read the current competing
/// weight with [`LinkLoadModel::weight`]. The process is deterministic
/// given its seed and the sequence of advance times (the engine always
/// advances on the fixed tick grid, so replays are exact).
#[derive(Debug)]
pub struct LinkLoadModel {
    cfg: LoadModelConfig,
    rng: StdRng,
    /// Random-walk state (deviation around zero).
    walk: f64,
    /// Currently active bursts.
    bursts: Vec<Burst>,
    /// Next burst arrival time.
    next_burst: SimTime,
    /// Last time the state was advanced to.
    now: SimTime,
    /// Cached weight at `now`.
    weight: f64,
}

impl LinkLoadModel {
    /// Create a load model for one link.
    pub fn new(cfg: LoadModelConfig, seed: MasterSeed, label: &str) -> Self {
        let mut rng = seed.derive(&format!("load.{label}"));
        let first_gap = exponential(&mut rng, cfg.burst_mean_interarrival.as_secs_f64());
        let next_burst = SimTime::ZERO + SimDuration::from_secs_f64(first_gap);
        let mut m = LinkLoadModel {
            cfg,
            rng,
            walk: 0.0,
            bursts: Vec::new(),
            next_burst,
            now: SimTime::ZERO,
            weight: 0.0,
        };
        m.recompute();
        m
    }

    /// The model's tick interval (the engine schedules ticks at this rate).
    pub fn tick(&self) -> SimDuration {
        self.cfg.tick
    }

    /// Current competing weight (dimensionless, >= 0).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Advance internal state to `t`. Must be called with non-decreasing
    /// times; the engine calls it once per tick.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "load model time went backwards");
        // Evolve the random walk once per elapsed tick (at most a few; the
        // engine ticks on the grid so usually exactly one).
        let ticks = t
            .saturating_since(self.now)
            .as_micros()
            .checked_div(self.cfg.tick.as_micros().max(1))
            .unwrap_or(0);
        for _ in 0..ticks.min(1_000) {
            let noise = standard_normal(&mut self.rng) * self.cfg.walk_sigma;
            self.walk += noise - self.cfg.walk_revert * self.walk;
        }
        // Expire finished bursts and draw new arrivals up to t.
        self.bursts.retain(|b| b.until > t);
        while self.next_burst <= t {
            let dur_s = bounded_pareto(
                &mut self.rng,
                self.cfg.burst_alpha,
                self.cfg.burst_min.as_secs_f64(),
                self.cfg.burst_max.as_secs_f64(),
            );
            let w = self.cfg.burst_weight * self.rng.gen_range(0.5..1.5);
            self.bursts.push(Burst {
                until: self.next_burst + SimDuration::from_secs_f64(dur_s),
                weight: w,
            });
            let gap = exponential(
                &mut self.rng,
                self.cfg.burst_mean_interarrival.as_secs_f64(),
            );
            self.next_burst += SimDuration::from_secs_f64(gap);
        }
        self.bursts.retain(|b| b.until > t);
        self.now = t;
        self.recompute();
    }

    fn recompute(&mut self) {
        let diurnal = self.cfg.diurnal_mean_weight * self.cfg.profile.at(self.now, self.cfg.phase);
        let walk = self.walk * self.cfg.diurnal_mean_weight * 0.25;
        let bursts: f64 = self.bursts.iter().map(|b| b.weight).sum();
        self.weight = (diurnal + walk + bursts).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> LinkLoadModel {
        LinkLoadModel::new(LoadModelConfig::default(), MasterSeed(seed), "test")
    }

    #[test]
    fn weight_is_nonnegative_over_a_day() {
        let mut m = model(1);
        let tick = m.tick();
        let mut t = SimTime::ZERO;
        for _ in 0..(86_400 / tick.as_secs()) {
            t += tick;
            m.advance_to(t);
            assert!(m.weight() >= 0.0, "weight went negative at {t}");
            assert!(m.weight().is_finite());
        }
    }

    #[test]
    fn deterministic_replay() {
        let mut a = model(7);
        let mut b = model(7);
        let tick = a.tick();
        let mut t = SimTime::ZERO;
        for _ in 0..500 {
            t += tick;
            a.advance_to(t);
            b.advance_to(t);
            assert_eq!(a.weight(), b.weight());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = model(1);
        let mut b = model(2);
        let tick = a.tick();
        let mut t = SimTime::ZERO;
        let mut diffs = 0;
        for _ in 0..200 {
            t += tick;
            a.advance_to(t);
            b.advance_to(t);
            if (a.weight() - b.weight()).abs() > 1e-9 {
                diffs += 1;
            }
        }
        assert!(diffs > 100);
    }

    #[test]
    fn diurnal_daytime_exceeds_night() {
        // Average weight over midday hours should exceed overnight hours.
        let mut m = LinkLoadModel::new(
            LoadModelConfig {
                walk_sigma: 0.0,
                burst_weight: 0.0,
                ..LoadModelConfig::default()
            },
            MasterSeed(3),
            "diurnal",
        );
        let tick = m.tick();
        let mut night = (0.0, 0u32);
        let mut day = (0.0, 0u32);
        let mut t = SimTime::ZERO;
        for _ in 0..(86_400 / tick.as_secs()) {
            t += tick;
            m.advance_to(t);
            let hour = (t.as_secs() % 86_400) / 3_600;
            if (1..=4).contains(&hour) {
                night = (night.0 + m.weight(), night.1 + 1);
            } else if (12..=15).contains(&hour) {
                day = (day.0 + m.weight(), day.1 + 1);
            }
        }
        let night_avg = night.0 / night.1 as f64;
        let day_avg = day.0 / day.1 as f64;
        assert!(
            day_avg > 2.0 * night_avg,
            "day {day_avg} vs night {night_avg}"
        );
    }

    #[test]
    fn bursts_raise_weight_sometimes() {
        // With bursts enabled, the max weight over two days should clearly
        // exceed the diurnal ceiling.
        let cfg = LoadModelConfig::default();
        let ceiling = cfg.diurnal_mean_weight * 1.6;
        let mut m = LinkLoadModel::new(cfg, MasterSeed(11), "bursty");
        let tick = m.tick();
        let mut t = SimTime::ZERO;
        let mut max_w: f64 = 0.0;
        for _ in 0..(2 * 86_400 / tick.as_secs()) {
            t += tick;
            m.advance_to(t);
            max_w = max_w.max(m.weight());
        }
        assert!(max_w > ceiling, "max {max_w} ceiling {ceiling}");
    }

    #[test]
    fn profile_interpolation_is_continuous() {
        let p = DiurnalProfile::business_hours();
        let mut prev = p.at(SimTime::ZERO, SimDuration::ZERO);
        for s in (60..86_400).step_by(60) {
            let cur = p.at(SimTime::from_secs(s), SimDuration::ZERO);
            assert!(
                (cur - prev).abs() < 0.05,
                "profile jumped {prev} -> {cur} at {s}s"
            );
            prev = cur;
        }
    }

    #[test]
    fn flat_profile_is_flat() {
        let p = DiurnalProfile::flat(0.8);
        for h in 0..48 {
            assert!((p.at(SimTime::from_secs(h * 1800), SimDuration::ZERO) - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_shifts_profile() {
        let p = DiurnalProfile::business_hours();
        let noon = SimTime::from_secs(12 * 3_600);
        let shifted = p.at(noon, SimDuration::from_hours(12));
        let unshifted = p.at(noon, SimDuration::ZERO);
        // Midnight load (shifted) is far below noon load.
        assert!(shifted < 0.5 * unshifted);
    }
}
