//! A sorted-vector map for hot, mostly-monotonic keyed state.
//!
//! The replay engine's per-flow state lives in maps keyed by monotonic
//! counters (flow ids, inflight transfer ids). A `BTreeMap` gives the
//! deterministic ascending iteration the tidy rules demand, but pays
//! node allocation and pointer chasing on every touch of the hot loop.
//! [`VecMap`] keeps the same contract — unique keys, ascending
//! iteration order, `O(log n)` lookup — in one contiguous allocation:
//! a `Vec<(K, V)>` sorted by key with binary-search lookup and an
//! append fast path for keys larger than the current maximum (the
//! *only* case the engines generate, making inserts amortised `O(1)`).
//!
//! Removal is `Vec::remove` (ordered, `O(n)`), not `swap_remove`: order
//! is the determinism contract, and the tidy `vec-swap-remove` rule
//! bans the tempting wrong call in simulation crates. For replay-sized
//! flow tables the memmove is cheaper than the `BTreeMap` rebalance it
//! replaces.

/// A map from ordered keys to values, stored as a key-sorted vector.
///
/// Drop-in for the subset of the `BTreeMap` API the simulation engines
/// use. Iteration order is ascending by key, always.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for VecMap<K, V> {
    fn default() -> Self {
        VecMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord, V> VecMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Position of `key` if present, else where it would insert.
    fn find(&self, key: &K) -> Result<usize, usize> {
        // Fast path: at or past the maximum (monotonic workloads).
        match self.entries.last() {
            None => Err(0),
            Some((last, _)) if *last < *key => Err(self.entries.len()),
            Some((last, _)) if *last == *key => Ok(self.entries.len() - 1),
            _ => self.entries.binary_search_by(|(k, _)| k.cmp(key)),
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_ok()
    }

    /// Borrow the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.find(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutably borrow the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.find(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Insert `key → value`, returning the previous value if the key
    /// was present. Keys above the current maximum append in `O(1)`.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.find(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Remove `key`, returning its value if present. Keeps the
    /// remaining entries in ascending order (ordered removal, not
    /// `swap_remove` — iteration order is the determinism contract).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.find(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterate `(&key, &value)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterate values mutably, in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        self.entries.iter_mut().map(|(_, v)| v)
    }
}

impl<K: Ord, V> std::ops::Index<&K> for VecMap<K, V> {
    type Output = V;

    fn index(&self, key: &K) -> &V {
        match self.get(key) {
            Some(v) => v,
            None => panic!("VecMap: key not present"),
        }
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for VecMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut m = VecMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a VecMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        fn split<K, V>(e: &(K, V)) -> (&K, &V) {
            (&e.0, &e.1)
        }
        self.entries
            .iter()
            .map(split as fn(&'a (K, V)) -> (&'a K, &'a V))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = VecMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(2u64, "b"), None);
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(3, "c"), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m[&2], "b");
        assert!(m.contains_key(&3));
        assert!(!m.contains_key(&4));
        assert_eq!(m.insert(2, "B"), Some("b"));
        assert_eq!(m.remove(&2), Some("B"));
        assert_eq!(m.remove(&2), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_ascending_regardless_of_insert_order() {
        let m: VecMap<u64, u64> = [(5, 50), (1, 10), (3, 30), (2, 20)].into_iter().collect();
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), [1, 2, 3, 5]);
        assert_eq!(m.values().copied().collect::<Vec<_>>(), [10, 20, 30, 50]);
        let pairs: Vec<_> = (&m).into_iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, [(1, 10), (2, 20), (3, 30), (5, 50)]);
    }

    #[test]
    fn monotonic_append_and_interior_removal() {
        let mut m = VecMap::new();
        for i in 0..100u64 {
            m.insert(i, i * 2);
        }
        // Interior removals keep order.
        m.remove(&10);
        m.remove(&90);
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys.len(), 98);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(m.get(&10), None);
        assert_eq!(m.get(&11), Some(&22));
    }

    #[test]
    fn values_mut_and_clear() {
        let mut m: VecMap<u64, u64> = (0..5).map(|i| (i, i)).collect();
        for v in m.values_mut() {
            *v += 100;
        }
        assert_eq!(m[&4], 104);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get_mut(&0), None);
    }

    #[test]
    fn matches_btreemap_on_a_mixed_workload() {
        use std::collections::BTreeMap;
        let mut v: VecMap<u64, u64> = VecMap::new();
        let mut b: BTreeMap<u64, u64> = BTreeMap::new();
        // Deterministic mixed ops: inserts (mostly monotonic), updates,
        // removals.
        let mut key = 0u64;
        for step in 0u64..500 {
            match step % 7 {
                0..=3 => {
                    key += 1 + step % 3;
                    v.insert(key, step);
                    b.insert(key, step);
                }
                4 => {
                    let k = key / 2;
                    v.insert(k, step);
                    b.insert(k, step);
                }
                5 => {
                    let k = step % (key + 1);
                    assert_eq!(v.remove(&k), b.remove(&k));
                }
                _ => {
                    let k = step % (key + 1);
                    assert_eq!(v.get(&k), b.get(&k));
                }
            }
        }
        let vs: Vec<_> = v.iter().map(|(k, val)| (*k, *val)).collect();
        let bs: Vec<_> = b.iter().map(|(k, val)| (*k, *val)).collect();
        assert_eq!(vs, bs);
    }
}
