//! Bulk-data flows and the TCP window model.
//!
//! A [`Flow`] is a fluid approximation of one logical transfer: `streams`
//! parallel TCP connections carrying `bytes` from source to sink along a
//! fixed route. Its instantaneous rate is the minimum of
//!
//! * its **fair share** of every traversed link (see [`crate::fair`]),
//! * its **window cap** `streams * window / rtt`, where `window` ramps
//!   through slow start (doubling each RTT) from [`TcpParams::init_window`]
//!   up to the negotiated buffer size, and
//! * an optional **external cap** (storage-system throughput at either
//!   endpoint, set by `wanpred-gridftp`).
//!
//! The window ramp is what makes small transfers see much lower end-to-end
//! bandwidth than large ones — the effect behind the paper's file-size
//! classification (§4.3) and behind NWS's 64 KB probes under-reporting
//! GridFTP throughput (Figures 1–2).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId};

/// Identifier of an active flow within the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u64);

/// TCP parameters for a flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpParams {
    /// Negotiated socket buffer per stream, in bytes; the steady-state
    /// congestion window cannot exceed this.
    pub buffer_bytes: u64,
    /// Initial congestion window per stream, in bytes (classically
    /// 2 segments).
    pub init_window: u64,
    /// Maximum segment size in bytes (used only to sanity-bound windows).
    pub mss: u64,
}

impl TcpParams {
    /// 2001-era defaults: 16 KB socket buffers, 2-segment initial window.
    /// This is what an untuned NWS probe gets.
    pub fn untuned() -> Self {
        TcpParams {
            buffer_bytes: 16 * 1024,
            init_window: 2 * 1460,
            mss: 1460,
        }
    }

    /// Hand-tuned wide-area settings as in the paper's experiments
    /// (`RTT * bottleneck bandwidth` rule; the paper used 1 MB).
    pub fn tuned_1mb() -> Self {
        TcpParams {
            buffer_bytes: 1024 * 1024,
            init_window: 2 * 1460,
            mss: 1460,
        }
    }
}

impl Default for TcpParams {
    fn default() -> Self {
        TcpParams::untuned()
    }
}

/// Specification of a transfer handed to the engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Number of parallel TCP streams (GridFTP parallelism). Weight in the
    /// fair-share computation.
    pub streams: u32,
    /// Per-stream TCP parameters.
    pub tcp: TcpParams,
    /// External rate cap in bytes/sec (storage system, NIC); infinity if
    /// unconstrained.
    pub external_cap: f64,
}

impl FlowSpec {
    /// Convenience constructor with no external cap.
    pub fn new(from: NodeId, to: NodeId, bytes: u64, streams: u32, tcp: TcpParams) -> Self {
        assert!(streams > 0, "a flow needs at least one stream");
        FlowSpec {
            from,
            to,
            bytes,
            streams,
            tcp,
            external_cap: f64::INFINITY,
        }
    }
}

/// Internal state of an active flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// The immutable spec.
    pub spec: FlowSpec,
    /// Route links (resolved at admission).
    pub links: Vec<LinkId>,
    /// Path round-trip time (resolved at admission).
    pub rtt: SimDuration,
    /// Current per-stream congestion window in bytes.
    pub window: u64,
    /// Remaining payload bytes (fractional to avoid rounding drift during
    /// fluid integration).
    pub remaining: f64,
    /// Time the flow was admitted.
    pub started: SimTime,
    /// Current allocated rate in bytes/sec (set by the solver).
    pub rate: f64,
    /// External cap (mutable: storage contention changes it mid-flight).
    pub external_cap: f64,
    /// Queueing-delay inflation of the base RTT (>= 1), set by the
    /// network from the background load along the path. Window-limited
    /// flows slow down when the path is busy even without losing their
    /// fair share — this is what gives small-probe measurements their
    /// diurnal texture.
    pub queue_factor: f64,
}

impl Flow {
    /// Create the admission-time state for a spec.
    pub fn admit(spec: FlowSpec, links: Vec<LinkId>, rtt: SimDuration, now: SimTime) -> Self {
        let window = spec
            .tcp
            .init_window
            .min(spec.tcp.buffer_bytes)
            .max(spec.tcp.mss);
        let remaining = spec.bytes as f64;
        let external_cap = spec.external_cap;
        Flow {
            spec,
            links,
            rtt,
            window,
            remaining,
            started: now,
            rate: 0.0,
            external_cap,
            queue_factor: 1.0,
        }
    }

    /// The flow's current self-imposed rate cap in bytes/sec:
    /// `min(streams * window / rtt, external_cap)`.
    pub fn rate_cap(&self) -> f64 {
        let rtt_s = self.rtt.as_secs_f64().max(1e-6) * self.queue_factor.max(1.0);
        let win_cap = self.spec.streams as f64 * self.window as f64 / rtt_s;
        win_cap.min(self.external_cap)
    }

    /// Whether the window has fully ramped to the buffer limit.
    pub fn window_saturated(&self) -> bool {
        self.window >= self.spec.tcp.buffer_bytes
    }

    /// Double the per-stream window (one slow-start round), saturating at
    /// the buffer size. Returns true if the window changed.
    pub fn ramp_window(&mut self) -> bool {
        if self.window_saturated() {
            return false;
        }
        self.window = (self.window * 2).min(self.spec.tcp.buffer_bytes);
        true
    }

    /// Number of slow-start doublings from the initial window to the
    /// buffer limit: how many ramp events the engine must schedule.
    pub fn ramp_steps(&self) -> u32 {
        let mut w = self.window.max(1);
        let mut steps = 0;
        while w < self.spec.tcp.buffer_bytes {
            w *= 2;
            steps += 1;
        }
        steps
    }

    /// Payload fraction already delivered, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.spec.bytes == 0 {
            1.0
        } else {
            1.0 - self.remaining / self.spec.bytes as f64
        }
    }
}

/// Completion report delivered to the owning agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowDone {
    /// The completed flow's id.
    pub id: FlowId,
    /// Admission time.
    pub started: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Mean end-to-end rate in bytes/sec over the flow's lifetime
    /// (`bytes / (finished - started)`), matching the paper's
    /// `BW = File size / Transfer Time` definition.
    pub mean_rate: f64,
}

/// Failure report delivered to the owning agent when a flow is killed by
/// fault injection (connection reset, server crash) before completing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowFailed {
    /// The failed flow's id.
    pub id: FlowId,
    /// Admission time.
    pub started: SimTime,
    /// Time of the failure.
    pub failed: SimTime,
    /// Payload size in bytes the flow was carrying.
    pub bytes: u64,
    /// Bytes actually delivered before the failure (fluid estimate,
    /// rounded down).
    pub delivered_bytes: u64,
    /// Fraction of the payload delivered, in `[0, 1]`.
    pub delivered_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(bytes: u64, streams: u32, tcp: TcpParams) -> Flow {
        Flow::admit(
            FlowSpec::new(NodeId(0), NodeId(1), bytes, streams, tcp),
            vec![LinkId(0)],
            SimDuration::from_millis(50),
            SimTime::ZERO,
        )
    }

    #[test]
    fn initial_window_cap_is_small() {
        let f = flow(1 << 30, 1, TcpParams::untuned());
        // 2920 bytes / 50 ms = 58.4 KB/s initially.
        assert!((f.rate_cap() - 2920.0 / 0.05).abs() < 1.0);
    }

    #[test]
    fn ramped_window_cap_hits_buffer_limit() {
        let mut f = flow(1 << 30, 1, TcpParams::untuned());
        while f.ramp_window() {}
        // 16 KB / 50 ms = 320 KB/s: the sub-0.3 MB/s NWS ceiling from
        // Figures 1-2.
        assert!((f.rate_cap() - 16384.0 / 0.05).abs() < 1.0);
        assert!(f.window_saturated());
    }

    #[test]
    fn parallel_streams_multiply_cap() {
        let mut f = flow(1 << 30, 8, TcpParams::tuned_1mb());
        while f.ramp_window() {}
        // 8 * 1 MB / 50 ms = 160 MB/s >> any testbed link: share-limited.
        assert!(f.rate_cap() > 1.5e8);
    }

    #[test]
    fn external_cap_binds() {
        let mut f = flow(1 << 30, 8, TcpParams::tuned_1mb());
        while f.ramp_window() {}
        f.external_cap = 4e7;
        assert_eq!(f.rate_cap(), 4e7);
    }

    #[test]
    fn ramp_steps_counts_doublings() {
        let f = flow(1 << 30, 1, TcpParams::untuned());
        // 2920 -> 5840 -> 11680 -> 16384(capped): 3 steps.
        assert_eq!(f.ramp_steps(), 3);
        let g = flow(1 << 30, 1, TcpParams::tuned_1mb());
        // 2920 * 2^k >= 1 MiB at k = 9.
        assert_eq!(g.ramp_steps(), 9);
    }

    #[test]
    fn ramp_saturates_exactly_at_buffer() {
        let mut f = flow(1 << 30, 1, TcpParams::untuned());
        for _ in 0..10 {
            f.ramp_window();
        }
        assert_eq!(f.window, 16 * 1024);
        assert!(!f.ramp_window());
    }

    #[test]
    fn progress_tracks_remaining() {
        let mut f = flow(1000, 1, TcpParams::untuned());
        assert_eq!(f.progress(), 0.0);
        f.remaining = 250.0;
        assert!((f.progress() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_flow_is_complete() {
        let f = flow(0, 1, TcpParams::untuned());
        assert_eq!(f.progress(), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_streams_rejected() {
        let _ = FlowSpec::new(NodeId(0), NodeId(1), 1, 0, TcpParams::untuned());
    }
}
