//! Deterministic random-number plumbing.
//!
//! Every stochastic component in the simulator (load models, workload
//! generators, burst processes) draws from a stream derived from a single
//! campaign seed plus a component label, so that adding a new component or
//! reordering initialization does not perturb the draws seen by existing
//! components. Reproducibility is a hard requirement: the evaluation
//! harness replays identical campaigns when comparing predictors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A master seed for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MasterSeed(pub u64);

impl MasterSeed {
    /// Derive an independent RNG for a named component.
    ///
    /// The derivation hashes the label into the seed with an FNV-1a style
    /// mix, so distinct labels yield decorrelated streams while the same
    /// `(seed, label)` pair always yields the same stream.
    pub fn derive(self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.derive_seed(label))
    }

    /// Derive a sub-seed (for components that themselves need to spawn
    /// further streams, e.g. one per link).
    pub fn derive_seed(self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.0.rotate_left(17);
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Final avalanche (splitmix64 finalizer) so short labels still
        // produce well-spread seeds.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    /// Derive a child master seed, for hierarchical components.
    pub fn child(self, label: &str) -> MasterSeed {
        MasterSeed(self.derive_seed(label))
    }
}

/// Sample from a bounded Pareto distribution.
///
/// Used for heavy-tailed burst durations in the cross-traffic model:
/// Internet flow lifetimes are famously heavy-tailed ("mice and
/// elephants"), which is the very effect the paper's file-size
/// classification leans on.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse-CDF of the Pareto truncated to [lo, hi].
    let x = (-(u * (1.0 - la / ha) - 1.0) / la).powf(-1.0 / alpha);
    x.clamp(lo, hi)
}

/// Sample an exponential inter-arrival time with the given mean.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Sample a standard normal via Box-Muller (avoids a rand_distr dependency
/// in this crate; callers needing many variates should cache pairs, but the
/// load models draw sparsely).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_label_same_stream() {
        let s = MasterSeed(42);
        let mut a = s.derive("link.anl-lbl");
        let mut b = s.derive("link.anl-lbl");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let s = MasterSeed(42);
        let mut a = s.derive("link.anl-lbl");
        let mut b = s.derive("link.anl-isi");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be decorrelated");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = MasterSeed(1).derive("x");
        let mut b = MasterSeed(2).derive("x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn child_seed_is_stable() {
        assert_eq!(
            MasterSeed(7).child("campaign.august").0,
            MasterSeed(7).child("campaign.august").0
        );
        assert_ne!(
            MasterSeed(7).child("campaign.august").0,
            MasterSeed(7).child("campaign.december").0
        );
    }

    #[test]
    fn bounded_pareto_in_range_and_heavy_tailed() {
        let mut rng = MasterSeed(9).derive("pareto");
        let mut xs = Vec::with_capacity(4000);
        for _ in 0..4000 {
            let x = bounded_pareto(&mut rng, 1.2, 1.0, 1000.0);
            assert!((1.0..=1000.0).contains(&x));
            xs.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        // Heavy tail: mean well above median.
        assert!(mean > 2.0 * median, "mean {mean} median {median}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = MasterSeed(9).derive("exp");
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = MasterSeed(11).derive("norm");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
