//! Network topology: nodes, unidirectional links, and static routes.
//!
//! The testbed in the paper is three sites (ANL, ISI, LBL) with two wide
//! area paths; this module is nevertheless a general directed-graph
//! topology so larger Grid configurations can be expressed (the replica
//! broker examples use more sites).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Identifier of a node (host or site gateway) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A node in the topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name, e.g. `"anl"` or `"dpsslx04.lbl.gov"`.
    pub name: String,
}

/// A unidirectional link with a fixed capacity and propagation delay.
///
/// Capacity is in **bytes per second**. Background (cross-traffic) load on
/// the link is modelled separately (see [`crate::load`]) as a competing
/// weight in the fair-share computation, not as a capacity reduction, so
/// that a transfer using more parallel streams claims a larger share —
/// exactly the GridFTP parallelism effect the paper's logs exhibit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Human-readable name, e.g. `"anl->lbl"`.
    pub name: String,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Capacity in bytes/second.
    pub capacity_bps: f64,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

impl Link {
    /// One-way delay in seconds.
    pub fn delay_secs(&self) -> f64 {
        self.delay.as_secs_f64()
    }
}

/// A static route: the ordered list of links a flow traverses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Links from source to destination, in traversal order.
    pub links: Vec<LinkId>,
}

/// The full network graph plus a static routing table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    routes: BTreeMap<(NodeId, NodeId), Route>,
}

/// Errors raised while building or querying a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A route referenced a link that does not exist.
    UnknownLink(LinkId),
    /// A route's links are not contiguous from source to destination.
    BrokenRoute {
        /// The source node of the attempted route.
        from: NodeId,
        /// The destination node of the attempted route.
        to: NodeId,
    },
    /// No route between the queried pair.
    NoRoute(NodeId, NodeId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link {l}"),
            TopologyError::BrokenRoute { from, to } => {
                write!(f, "route {from}->{to} is not contiguous")
            }
            TopologyError::NoRoute(a, b) => write!(f, "no route {a}->{b}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { name: name.into() });
        id
    }

    /// Add a unidirectional link and return its id.
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        to: NodeId,
        capacity_bps: f64,
        delay: SimDuration,
    ) -> Result<LinkId, TopologyError> {
        self.node(from)?;
        self.node(to)?;
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "link capacity must be positive"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            name: name.into(),
            from,
            to,
            capacity_bps,
            delay,
        });
        Ok(id)
    }

    /// Add a bidirectional link as two unidirectional links `(fwd, rev)`
    /// with identical capacity and delay.
    pub fn add_duplex_link(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        capacity_bps: f64,
        delay: SimDuration,
    ) -> Result<(LinkId, LinkId), TopologyError> {
        let fwd = self.add_link(format!("{name}:fwd"), a, b, capacity_bps, delay)?;
        let rev = self.add_link(format!("{name}:rev"), b, a, capacity_bps, delay)?;
        Ok((fwd, rev))
    }

    /// Register a static route between two nodes, validating contiguity.
    pub fn add_route(
        &mut self,
        from: NodeId,
        to: NodeId,
        links: Vec<LinkId>,
    ) -> Result<(), TopologyError> {
        if links.is_empty() {
            return Err(TopologyError::BrokenRoute { from, to });
        }
        let mut at = from;
        for &lid in &links {
            let link = self.link(lid)?;
            if link.from != at {
                return Err(TopologyError::BrokenRoute { from, to });
            }
            at = link.to;
        }
        if at != to {
            return Err(TopologyError::BrokenRoute { from, to });
        }
        self.routes.insert((from, to), Route { links });
        Ok(())
    }

    /// Look up a node.
    pub fn node(&self, id: NodeId) -> Result<&Node, TopologyError> {
        self.nodes
            .get(id.0 as usize)
            .ok_or(TopologyError::UnknownNode(id))
    }

    /// Look up a link.
    pub fn link(&self, id: LinkId) -> Result<&Link, TopologyError> {
        self.links
            .get(id.0 as usize)
            .ok_or(TopologyError::UnknownLink(id))
    }

    /// Look up the static route between two nodes.
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<&Route, TopologyError> {
        self.routes
            .get(&(from, to))
            .ok_or(TopologyError::NoRoute(from, to))
    }

    /// Round-trip time along a route and back, assuming the reverse route
    /// exists; falls back to twice the forward one-way delay otherwise.
    /// This is the RTT the TCP model uses for window/throughput limits.
    pub fn rtt(&self, from: NodeId, to: NodeId) -> Result<SimDuration, TopologyError> {
        let fwd = self.one_way_delay(from, to)?;
        match self.one_way_delay(to, from) {
            Ok(rev) => Ok(fwd + rev),
            Err(TopologyError::NoRoute(..)) => Ok(fwd * 2),
            Err(e) => Err(e),
        }
    }

    /// Sum of propagation delays along the forward route.
    pub fn one_way_delay(&self, from: NodeId, to: NodeId) -> Result<SimDuration, TopologyError> {
        let route = self.route(from, to)?;
        let mut d = SimDuration::ZERO;
        for &lid in &route.links {
            d += self.link(lid)?.delay;
        }
        Ok(d)
    }

    /// Minimum link capacity (bytes/sec) along the forward route: the
    /// path's bottleneck bandwidth, as iperf would report it unloaded.
    pub fn bottleneck_bps(&self, from: NodeId, to: NodeId) -> Result<f64, TopologyError> {
        let route = self.route(from, to)?;
        let mut min = f64::INFINITY;
        for &lid in &route.links {
            min = min.min(self.link(lid)?.capacity_bps);
        }
        Ok(min)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterate over all links with their ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Iterate over all nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Find a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, NodeId, NodeId, NodeId, LinkId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let ab = t
            .add_link("a->b", a, b, 10e6, SimDuration::from_millis(10))
            .unwrap();
        let bc = t
            .add_link("b->c", b, c, 5e6, SimDuration::from_millis(20))
            .unwrap();
        t.add_route(a, c, vec![ab, bc]).unwrap();
        (t, a, b, c, ab, bc)
    }

    #[test]
    fn route_validation_accepts_contiguous() {
        let (t, a, _, c, ..) = line3();
        assert_eq!(t.route(a, c).unwrap().links.len(), 2);
    }

    #[test]
    fn route_validation_rejects_broken() {
        let (mut t, a, _, c, ab, bc) = line3();
        // Reversed order is not contiguous.
        assert_eq!(
            t.add_route(a, c, vec![bc, ab]),
            Err(TopologyError::BrokenRoute { from: a, to: c })
        );
        // Route that stops early.
        assert_eq!(
            t.add_route(a, c, vec![ab]),
            Err(TopologyError::BrokenRoute { from: a, to: c })
        );
        // Empty route.
        assert_eq!(
            t.add_route(a, c, vec![]),
            Err(TopologyError::BrokenRoute { from: a, to: c })
        );
    }

    #[test]
    fn bottleneck_and_delay() {
        let (t, a, _, c, ..) = line3();
        assert_eq!(t.bottleneck_bps(a, c).unwrap(), 5e6);
        assert_eq!(t.one_way_delay(a, c).unwrap(), SimDuration::from_millis(30));
        // No reverse route: rtt falls back to 2x forward delay.
        assert_eq!(t.rtt(a, c).unwrap(), SimDuration::from_millis(60));
    }

    #[test]
    fn rtt_uses_reverse_route_when_present() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let (fwd, rev) = t
            .add_duplex_link("ab", a, b, 1e6, SimDuration::from_millis(25))
            .unwrap();
        t.add_route(a, b, vec![fwd]).unwrap();
        t.add_route(b, a, vec![rev]).unwrap();
        assert_eq!(t.rtt(a, b).unwrap(), SimDuration::from_millis(50));
    }

    #[test]
    fn unknown_lookups_error() {
        let (t, a, ..) = line3();
        assert!(matches!(
            t.link(LinkId(99)),
            Err(TopologyError::UnknownLink(_))
        ));
        assert!(matches!(
            t.node(NodeId(99)),
            Err(TopologyError::UnknownNode(_))
        ));
        assert!(matches!(t.route(a, a), Err(TopologyError::NoRoute(..))));
    }

    #[test]
    fn node_by_name() {
        let (t, a, ..) = line3();
        assert_eq!(t.node_by_name("a"), Some(a));
        assert_eq!(t.node_by_name("zzz"), None);
    }

    #[test]
    fn duplex_creates_two_links() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let (f, r) = t
            .add_duplex_link("ab", a, b, 1e6, SimDuration::from_millis(1))
            .unwrap();
        assert_eq!(t.link(f).unwrap().from, a);
        assert_eq!(t.link(r).unwrap().from, b);
        assert_eq!(t.link_count(), 2);
    }
}
