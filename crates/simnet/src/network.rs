//! Network state: active flows over the topology, background load per
//! link, and the fluid rate solution.
//!
//! The [`Network`] owns the topology, one [`LinkLoadModel`] per link, and
//! the set of in-flight flows. Whenever the flow population or any
//! background weight changes, rates are re-solved with the weighted
//! max-min allocator; between changes, flows drain linearly, so the next
//! completion time is exact.

use crate::fair::{solve, FairFlow};
use crate::flow::{Flow, FlowDone, FlowFailed, FlowId, FlowSpec};
use crate::index::VecMap;
use crate::load::{LinkLoadModel, LoadModelConfig};
use crate::rng::MasterSeed;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, Topology, TopologyError};

/// RTT inflation per unit of competing background weight on the busiest
/// link of a flow's path (queueing delay; see [`Network::resolve`]).
pub const QUEUE_DELAY_PER_WEIGHT: f64 = 0.015;

/// Upper bound on the RTT inflation factor.
pub const QUEUE_FACTOR_MAX: f64 = 2.5;

/// Floor on a link's effective capacity in bytes/sec. The max-min solver
/// requires strictly positive capacities, so an outage clamps the link
/// here instead of zero: flows on it stall (their ETA recedes past any
/// horizon) and recover when the link comes back.
pub const OUTAGE_CAPACITY_FLOOR: f64 = 1e-3;

/// The live network: topology + load + flows.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    loads: Vec<LinkLoadModel>,
    flows: VecMap<FlowId, Flow>,
    next_id: u64,
    /// Time to which flow byte-counts have been integrated.
    integrated_to: SimTime,
    /// Rates are stale and must be re-solved before use.
    dirty: bool,
    /// Per-link outage flag (fault injection): an out link's effective
    /// capacity is clamped to [`OUTAGE_CAPACITY_FLOOR`].
    outages: Vec<bool>,
    /// Per-link capacity-degradation factor in `(0, 1]` (fault
    /// injection); 1.0 means healthy.
    degrade: Vec<f64>,
}

impl Network {
    /// Build a network over `topo`, instantiating one background-load
    /// model per link from `load_cfgs` (parallel to the link array) and
    /// the master seed.
    pub fn new(topo: Topology, load_cfgs: Vec<LoadModelConfig>, seed: MasterSeed) -> Self {
        assert_eq!(
            load_cfgs.len(),
            topo.link_count(),
            "one load config per link"
        );
        let loads = load_cfgs
            .into_iter()
            .zip(topo.links())
            .map(|(cfg, (_, link))| LinkLoadModel::new(cfg, seed, &link.name))
            .collect();
        let n_links = topo.link_count();
        Network {
            topo,
            loads,
            flows: VecMap::new(),
            next_id: 0,
            integrated_to: SimTime::ZERO,
            dirty: true,
            outages: vec![false; n_links],
            degrade: vec![1.0; n_links],
        }
    }

    /// Build with the same load config on every link (tests, simple
    /// scenarios).
    pub fn with_uniform_load(topo: Topology, cfg: LoadModelConfig, seed: MasterSeed) -> Self {
        let cfgs = vec![cfg; topo.link_count()];
        Network::new(topo, cfgs, seed)
    }

    /// Read access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Current background weight on a link.
    pub fn link_weight(&self, link: LinkId) -> f64 {
        self.loads[link.0 as usize].weight()
    }

    /// The background-load tick interval (uniform across links by
    /// construction of the engine's tick event).
    pub fn load_tick(&self) -> SimDuration {
        self.loads
            .iter()
            .map(|l| l.tick())
            .min()
            .unwrap_or(SimDuration::from_secs(60))
    }

    /// Admit a flow at time `now`. Bytes start moving immediately (the
    /// caller models any connection-establishment latency before calling).
    pub fn start_flow(&mut self, spec: FlowSpec, now: SimTime) -> Result<FlowId, TopologyError> {
        self.integrate_to(now);
        let route = self.topo.route(spec.from, spec.to)?.clone();
        let rtt = self.topo.rtt(spec.from, spec.to)?;
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let flow = Flow::admit(spec, route.links, rtt, now);
        self.flows.insert(id, flow);
        self.dirty = true;
        Ok(id)
    }

    /// Access an active flow.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(&id)
    }

    /// Delivered fraction of an in-flight flow at `now`, without
    /// disturbing it. Byte counts are only current as of the last
    /// integration, so this integrates to `now` first — a plain
    /// [`Network::flow`] read between events can be stale. Returns
    /// `None` for unknown (or already finished) flows.
    pub fn flow_progress(&mut self, id: FlowId, now: SimTime) -> Option<f64> {
        self.integrate_to(now);
        self.flows.get(&id).map(|f| f.progress().clamp(0.0, 1.0))
    }

    /// Double a flow's congestion window (one slow-start round). No-op for
    /// finished or unknown flows. Returns whether anything changed.
    pub fn ramp_flow_window(&mut self, id: FlowId, now: SimTime) -> bool {
        self.integrate_to(now);
        if let Some(f) = self.flows.get_mut(&id) {
            if f.ramp_window() {
                self.dirty = true;
                return true;
            }
        }
        false
    }

    /// Update a flow's external (storage) rate cap.
    pub fn set_external_cap(&mut self, id: FlowId, cap: f64, now: SimTime) {
        self.integrate_to(now);
        if let Some(f) = self.flows.get_mut(&id) {
            if (f.external_cap - cap).abs() > f64::EPSILON {
                f.external_cap = cap;
                self.dirty = true;
            }
        }
    }

    /// Mark a link as down (`out = true`) or restored (`out = false`).
    /// While down, the link's effective capacity is
    /// [`OUTAGE_CAPACITY_FLOOR`], stalling every flow that traverses it.
    pub fn set_link_outage(&mut self, link: LinkId, out: bool, now: SimTime) {
        self.integrate_to(now);
        let slot = &mut self.outages[link.0 as usize];
        if *slot != out {
            *slot = out;
            self.dirty = true;
        }
    }

    /// Set a link's capacity-degradation factor (1.0 restores full
    /// capacity). Factors are clamped to `(0, 1]`; the effective capacity
    /// never drops below [`OUTAGE_CAPACITY_FLOOR`].
    pub fn set_link_degradation(&mut self, link: LinkId, factor: f64, now: SimTime) {
        self.integrate_to(now);
        let factor = factor.clamp(0.0, 1.0);
        let slot = &mut self.degrade[link.0 as usize];
        if (*slot - factor).abs() > f64::EPSILON {
            *slot = factor;
            self.dirty = true;
        }
    }

    /// The link's current effective-capacity factor in `[0, 1]`: 0 while
    /// the link is out, its degradation factor otherwise.
    pub fn link_capacity_factor(&self, link: LinkId) -> f64 {
        if self.outages[link.0 as usize] {
            0.0
        } else {
            self.degrade[link.0 as usize]
        }
    }

    /// Effective capacity of link index `l` in bytes/sec, after outage
    /// and degradation, floored so the solver stays well-posed.
    fn effective_capacity(&self, l: usize, nominal: f64) -> f64 {
        let factor = if self.outages[l] {
            0.0
        } else {
            self.degrade[l]
        };
        (nominal * factor).max(OUTAGE_CAPACITY_FLOOR)
    }

    /// Ids of active flows whose route traverses `link`, ascending.
    pub fn flows_on_link(&self, link: LinkId) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|(_, f)| f.links.contains(&link))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Kill an in-flight flow (fault injection), producing the failure
    /// report delivered to its owner. Returns `None` for unknown flows.
    pub fn fail_flow(&mut self, id: FlowId, now: SimTime) -> Option<FlowFailed> {
        self.integrate_to(now);
        let f = self.flows.remove(&id)?;
        self.dirty = true;
        let fraction = f.progress().clamp(0.0, 1.0);
        let delivered = (f.spec.bytes as f64 - f.remaining).max(0.0);
        Some(FlowFailed {
            id,
            started: f.started,
            failed: now,
            bytes: f.spec.bytes,
            delivered_bytes: (delivered.floor() as u64).min(f.spec.bytes),
            delivered_fraction: fraction,
        })
    }

    /// Advance background load models to `t` and mark rates stale if any
    /// foreground flow is active.
    pub fn load_tick_to(&mut self, t: SimTime) {
        self.integrate_to(t);
        for l in &mut self.loads {
            l.advance_to(t);
        }
        if !self.flows.is_empty() {
            self.dirty = true;
        }
    }

    /// Re-solve rates if stale.
    pub fn resolve(&mut self) {
        if !self.dirty {
            return;
        }
        // VecMap keys iterate in ascending flow-id order (and flow ids
        // are handed out monotonically, so admission is an O(1) append),
        // keeping the solve order deterministic by construction.
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();

        // Queueing delay: background load along a path inflates the
        // effective RTT seen by its flows, which lowers window-limited
        // rate caps (share-limited bulk flows are unaffected). The factor
        // is linear in the heaviest competing weight on the path, capped.
        for f in self.flows.values_mut() {
            let w_max = f
                .links
                .iter()
                .map(|l| self.loads[l.0 as usize].weight())
                .fold(0.0f64, f64::max);
            f.queue_factor = (1.0 + QUEUE_DELAY_PER_WEIGHT * w_max).min(QUEUE_FACTOR_MAX);
        }

        let n_links = self.topo.link_count();
        let mut capacities = Vec::with_capacity(n_links);
        for (l, (_, link)) in self.topo.links().enumerate() {
            capacities.push(self.effective_capacity(l, link.capacity_bps));
        }

        let mut fair_flows = Vec::with_capacity(ids.len() + n_links);
        for id in &ids {
            let f = &self.flows[id];
            fair_flows.push(FairFlow {
                weight: f.spec.streams as f64,
                cap: f.rate_cap(),
                links: f.links.iter().map(|l| l.0 as usize).collect(),
            });
        }
        // Background pseudo-flows: one per link with the load model's
        // weight, uncapped, confined to that link.
        for l in 0..n_links {
            let w = self.loads[l].weight();
            if w > 1e-9 {
                fair_flows.push(FairFlow {
                    weight: w,
                    cap: f64::INFINITY,
                    links: vec![l],
                });
            }
        }

        let rates = solve(&capacities, &fair_flows);
        for (i, id) in ids.iter().enumerate() {
            self.flows.get_mut(id).expect("flow exists").rate = rates[i];
        }
        self.dirty = false;
    }

    /// Integrate flow progress (linear drain at current rates) up to `t`.
    fn integrate_to(&mut self, t: SimTime) {
        if t <= self.integrated_to {
            return;
        }
        let dt = (t - self.integrated_to).as_secs_f64();
        if !self.flows.is_empty() {
            debug_assert!(!self.dirty, "integrating with stale rates");
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.integrated_to = t;
    }

    /// Earliest completion among active flows at current rates, if any.
    /// Requires rates to be fresh ([`Network::resolve`] first).
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        assert!(!self.dirty, "resolve before querying completions");
        let mut best: Option<(SimTime, FlowId)> = None;
        for (&id, f) in &self.flows {
            let eta = if f.remaining <= 0.0 {
                self.integrated_to
            } else if f.rate > OUTAGE_CAPACITY_FLOOR {
                self.integrated_to + SimDuration::from_secs_f64(f.remaining / f.rate)
            } else {
                // Stalled (rate 0, or pinned at the outage floor): no
                // completion until rates change.
                continue;
            };
            match best {
                Some((t, bid)) if (t, bid) <= (eta, id) => {}
                _ => best = Some((eta, id)),
            }
        }
        best
    }

    /// Remove a completed flow at time `now`, producing its report.
    ///
    /// # Panics
    /// Panics if the flow still has bytes remaining beyond the fluid
    /// tolerance — that indicates the engine retired it early.
    pub fn finish_flow(&mut self, id: FlowId, now: SimTime) -> FlowDone {
        self.integrate_to(now);
        let f = self.flows.remove(&id).expect("finishing unknown flow");
        // Completion instants are rounded to the microsecond grid, so up to
        // rate * 0.5us of payload may appear outstanding; 4 KiB comfortably
        // covers any testbed rate while still catching real early retirement.
        assert!(
            f.remaining <= 4096.0,
            "flow {id:?} retired with {} bytes left",
            f.remaining
        );
        self.dirty = true;
        let elapsed = now.saturating_since(f.started).as_secs_f64();
        let mean_rate = if elapsed > 0.0 {
            f.spec.bytes as f64 / elapsed
        } else {
            f64::INFINITY
        };
        FlowDone {
            id,
            started: f.started,
            finished: now,
            bytes: f.spec.bytes,
            mean_rate,
        }
    }

    /// Abort a flow (connection failure injection). Returns the fraction
    /// of the payload that had been delivered.
    pub fn abort_flow(&mut self, id: FlowId, now: SimTime) -> Option<f64> {
        self.integrate_to(now);
        let f = self.flows.remove(&id)?;
        self.dirty = true;
        Some(f.progress())
    }

    /// Time to which flow byte counts are integrated (mostly for tests).
    pub fn integrated_to(&self) -> SimTime {
        self.integrated_to
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::TcpParams;
    use crate::topology::NodeId;

    fn quiet_cfg() -> LoadModelConfig {
        LoadModelConfig {
            diurnal_mean_weight: 0.0,
            walk_sigma: 0.0,
            burst_weight: 0.0,
            ..LoadModelConfig::default()
        }
    }

    fn two_node_net(capacity: f64) -> (Network, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let (fwd, rev) = t
            .add_duplex_link("ab", a, b, capacity, SimDuration::from_millis(25))
            .unwrap();
        t.add_route(a, b, vec![fwd]).unwrap();
        t.add_route(b, a, vec![rev]).unwrap();
        (
            Network::with_uniform_load(t, quiet_cfg(), MasterSeed(1)),
            a,
            b,
        )
    }

    fn big_window() -> TcpParams {
        TcpParams {
            buffer_bytes: 1 << 24,
            init_window: 1 << 24,
            mss: 1460,
        }
    }

    #[test]
    fn lone_flow_drains_at_capacity() {
        let (mut net, a, b) = two_node_net(1e6);
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 2_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        let (eta, done_id) = net.next_completion().unwrap();
        assert_eq!(done_id, id);
        assert!((eta.as_secs_f64() - 2.0).abs() < 1e-6, "{eta}");
        let done = net.finish_flow(id, eta);
        assert!((done.mean_rate - 1e6).abs() < 1.0);
    }

    #[test]
    fn flow_progress_integrates_to_now() {
        let (mut net, a, b) = two_node_net(1e6);
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 2_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        // A stale read through `flow()` still shows 0 delivered; the
        // integrating sampler reports the fluid truth at t=1s (half done).
        let t = SimTime::from_secs(1);
        assert_eq!(net.flow(id).map(|f| f.progress()), Some(0.0));
        let p = net.flow_progress(id, t).unwrap();
        assert!((p - 0.5).abs() < 1e-9, "{p}");
        // Sampling is non-destructive: the flow still completes on time.
        let (eta, done_id) = net.next_completion().unwrap();
        assert_eq!(done_id, id);
        assert!((eta.as_secs_f64() - 2.0).abs() < 1e-6, "{eta}");
        assert!(net.flow_progress(FlowId(9999), t).is_none());
    }

    #[test]
    fn window_limited_flow_is_slower() {
        let (mut net, a, b) = two_node_net(1e8);
        // 16 KB window, 50 ms RTT -> 320 KB/s regardless of the fat link.
        let mut tcp = TcpParams::untuned();
        tcp.init_window = tcp.buffer_bytes; // skip slow start for this test
        let id = net
            .start_flow(FlowSpec::new(a, b, 320_000, 1, tcp), SimTime::ZERO)
            .unwrap();
        net.resolve();
        let (eta, _) = net.next_completion().unwrap();
        assert!((eta.as_secs_f64() - 0.97).abs() < 0.05, "{eta}");
        net.finish_flow(id, eta);
    }

    #[test]
    fn two_flows_share_then_second_speeds_up() {
        let (mut net, a, b) = two_node_net(1e6);
        let f1 = net
            .start_flow(
                FlowSpec::new(a, b, 1_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        let f2 = net
            .start_flow(
                FlowSpec::new(a, b, 1_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        // Each gets 0.5 MB/s; first completion at t=2s.
        let (eta1, first) = net.next_completion().unwrap();
        assert!((eta1.as_secs_f64() - 2.0).abs() < 1e-6);
        assert!(first == f1 || first == f2);
        net.finish_flow(first, eta1);
        net.resolve();
        // Remaining flow now gets the whole link; it had 0 bytes left?
        // No: it also drained 1 MB/2 = it had exactly the same size, so it
        // finishes at the same instant.
        let (eta2, second) = net.next_completion().unwrap();
        assert_eq!(eta2, eta1);
        assert_ne!(second, first);
        let done = net.finish_flow(second, eta2);
        assert!((done.mean_rate - 0.5e6).abs() < 1.0);
    }

    #[test]
    fn weighted_flows_split_proportionally() {
        let (mut net, a, b) = two_node_net(9e6);
        let f8 = net
            .start_flow(
                FlowSpec::new(a, b, 8_000_000, 8, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        let f1 = net
            .start_flow(
                FlowSpec::new(a, b, 1_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        // Shares 8 MB/s and 1 MB/s: both finish at t=1s.
        let (eta, _) = net.next_completion().unwrap();
        assert!((eta.as_secs_f64() - 1.0).abs() < 1e-6);
        let _ = (f8, f1);
    }

    #[test]
    fn external_cap_mid_flight_slows_completion() {
        let (mut net, a, b) = two_node_net(1e6);
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 1_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        // At t=0.5s, half the bytes are gone; cap the rest at 0.25 MB/s.
        let half = SimTime::from_secs_f64(0.5);
        net.set_external_cap(id, 0.25e6, half);
        net.resolve();
        let (eta, _) = net.next_completion().unwrap();
        assert!((eta.as_secs_f64() - 2.5).abs() < 1e-6, "{eta}");
    }

    #[test]
    fn ramp_window_affects_rate() {
        let (mut net, a, b) = two_node_net(1e8);
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 1 << 26, 1, TcpParams::untuned()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        let r0 = net.flow(id).unwrap().rate;
        net.ramp_flow_window(id, SimTime::from_millis_t(10));
        net.resolve();
        let r1 = net.flow(id).unwrap().rate;
        assert!(r1 > 1.9 * r0, "{r0} -> {r1}");
    }

    #[test]
    fn abort_reports_progress() {
        let (mut net, a, b) = two_node_net(1e6);
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 1_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        let p = net
            .abort_flow(id, SimTime::from_secs_f64(0.25))
            .expect("flow existed");
        assert!((p - 0.25).abs() < 1e-6);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn stalled_flow_yields_no_completion() {
        let (mut net, a, b) = two_node_net(1e6);
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 1_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.set_external_cap(id, 0.0, SimTime::ZERO);
        net.resolve();
        assert!(net.next_completion().is_none());
    }

    #[test]
    fn background_weight_reduces_share() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t
            .add_link("ab", a, b, 12e6, SimDuration::from_millis(25))
            .unwrap();
        t.add_route(a, b, vec![l]).unwrap();
        let cfg = LoadModelConfig {
            diurnal_mean_weight: 4.0,
            profile: crate::load::DiurnalProfile::flat(1.0),
            walk_sigma: 0.0,
            burst_weight: 0.0,
            ..LoadModelConfig::default()
        };
        let mut net = Network::with_uniform_load(t, cfg, MasterSeed(1));
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 8_000_000, 8, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        // 8 streams vs background weight 4 on 12 MB/s: share = 8 MB/s.
        let r = net.flow(id).unwrap().rate;
        assert!((r - 8e6).abs() < 1.0, "rate {r}");
    }
}

// Small test-only convenience.
#[cfg(test)]
impl SimTime {
    fn from_millis_t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1_000)
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::flow::TcpParams;
    use crate::load::LoadModelConfig;
    use crate::topology::NodeId;

    fn quiet_cfg() -> LoadModelConfig {
        LoadModelConfig {
            diurnal_mean_weight: 0.0,
            walk_sigma: 0.0,
            burst_weight: 0.0,
            ..LoadModelConfig::default()
        }
    }

    fn net() -> (Network, NodeId, NodeId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t
            .add_link("ab", a, b, 1e6, SimDuration::from_millis(25))
            .unwrap();
        t.add_route(a, b, vec![l]).unwrap();
        (
            Network::with_uniform_load(t, quiet_cfg(), MasterSeed(1)),
            a,
            b,
            l,
        )
    }

    fn big_window() -> TcpParams {
        TcpParams {
            buffer_bytes: 1 << 24,
            init_window: 1 << 24,
            mss: 1460,
        }
    }

    #[test]
    fn outage_stalls_then_recovery_restores_rate() {
        let (mut net, a, b, l) = net();
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 1_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        assert!((net.flow(id).unwrap().rate - 1e6).abs() < 1.0);
        net.set_link_outage(l, true, SimTime::from_secs_f64(0.5));
        net.resolve();
        // Effectively stalled: no completion at a ~0 rate.
        assert!(net.flow(id).unwrap().rate <= OUTAGE_CAPACITY_FLOOR);
        assert!(net.next_completion().is_none());
        assert_eq!(net.link_capacity_factor(l), 0.0);
        net.set_link_outage(l, false, SimTime::from_secs(10));
        net.resolve();
        assert!((net.flow(id).unwrap().rate - 1e6).abs() < 1.0);
        assert_eq!(net.link_capacity_factor(l), 1.0);
        // 0.5 MB drained before the outage, none during: 0.5s to go.
        let (eta, _) = net.next_completion().unwrap();
        assert!((eta.as_secs_f64() - 10.5).abs() < 1e-3, "{eta}");
    }

    #[test]
    fn degradation_scales_capacity() {
        let (mut net, a, b, l) = net();
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 1_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.set_link_degradation(l, 0.25, SimTime::ZERO);
        net.resolve();
        assert!((net.flow(id).unwrap().rate - 0.25e6).abs() < 1.0);
        assert_eq!(net.link_capacity_factor(l), 0.25);
        net.set_link_degradation(l, 1.0, SimTime::ZERO);
        net.resolve();
        assert!((net.flow(id).unwrap().rate - 1e6).abs() < 1.0);
    }

    #[test]
    fn fail_flow_reports_delivered_bytes() {
        let (mut net, a, b, l) = net();
        let id = net
            .start_flow(
                FlowSpec::new(a, b, 1_000_000, 1, big_window()),
                SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        assert_eq!(net.flows_on_link(l), vec![id]);
        let failed = net
            .fail_flow(id, SimTime::from_secs_f64(0.25))
            .expect("flow existed");
        assert_eq!(failed.bytes, 1_000_000);
        assert_eq!(failed.delivered_bytes, 250_000);
        assert!((failed.delivered_fraction - 0.25).abs() < 1e-9);
        assert_eq!(net.active_flows(), 0);
        assert!(net.fail_flow(id, SimTime::from_secs(1)).is_none());
    }
}

#[cfg(test)]
mod queue_tests {
    use super::*;
    use crate::flow::TcpParams;
    use crate::load::{DiurnalProfile, LoadModelConfig};
    use crate::rng::MasterSeed;
    use crate::time::SimDuration;
    use crate::topology::Topology;

    /// A window-limited probe's rate drops under background load via the
    /// queueing-delay factor, even though its fair share is untouched.
    #[test]
    fn queue_factor_slows_window_limited_flows() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t
            .add_link("ab", a, b, 100e6, SimDuration::from_millis(25))
            .unwrap();
        t.add_route(a, b, vec![l]).unwrap();
        let cfg = LoadModelConfig {
            diurnal_mean_weight: 20.0,
            profile: DiurnalProfile::flat(1.0),
            walk_sigma: 0.0,
            burst_weight: 0.0,
            ..LoadModelConfig::default()
        };
        let mut net = Network::with_uniform_load(t, cfg, MasterSeed(1));
        let mut tcp = TcpParams::untuned();
        tcp.init_window = tcp.buffer_bytes;
        let id = net
            .start_flow(
                crate::flow::FlowSpec::new(a, b, 1 << 24, 1, tcp),
                crate::time::SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        let r = net.flow(id).unwrap().rate;
        // Unloaded cap: 16384/0.05 = 327.7 KB/s; with W=20 the factor is
        // 1.3, so ~252 KB/s.
        let expect = 16_384.0 / 0.05 / (1.0 + QUEUE_DELAY_PER_WEIGHT * 20.0);
        assert!((r - expect).abs() < 1.0, "rate {r} expected {expect}");
    }

    /// The factor never exceeds its cap.
    #[test]
    fn queue_factor_saturates() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t
            .add_link("ab", a, b, 100e6, SimDuration::from_millis(25))
            .unwrap();
        t.add_route(a, b, vec![l]).unwrap();
        let cfg = LoadModelConfig {
            diurnal_mean_weight: 10_000.0,
            profile: DiurnalProfile::flat(1.0),
            walk_sigma: 0.0,
            burst_weight: 0.0,
            ..LoadModelConfig::default()
        };
        let mut net = Network::with_uniform_load(t, cfg, MasterSeed(1));
        let mut tcp = TcpParams::untuned();
        tcp.init_window = tcp.buffer_bytes;
        let id = net
            .start_flow(
                crate::flow::FlowSpec::new(a, b, 1 << 24, 1, tcp),
                crate::time::SimTime::ZERO,
            )
            .unwrap();
        net.resolve();
        assert!((net.flow(id).unwrap().queue_factor - QUEUE_FACTOR_MAX).abs() < 1e-12);
    }
}
