//! # wanpred-simnet
//!
//! A fluid-flow discrete-event simulator for wide-area bulk data
//! transfers. This is the testbed substrate for the `wanpred` workspace,
//! standing in for the ANL–ISI–LBL wide-area network of *Vazhkudai,
//! Schopf & Foster, "Predicting the Performance of Wide Area Data
//! Transfers" (IPPS 2002)*.
//!
//! ## Model
//!
//! * **Topology** ([`topology`]): nodes and unidirectional links with
//!   capacity and propagation delay; static routes.
//! * **Flows** ([`flow`]): a transfer is a fluid flow of `n` parallel TCP
//!   streams. Its rate is capped by the TCP window (`n * window / RTT`,
//!   with slow-start doubling each RTT up to the socket-buffer size), by
//!   external limits (storage systems), and by its fair share of each
//!   traversed link.
//! * **Fair sharing** ([`fair`]): weighted max-min allocation; a flow's
//!   weight is its stream count, so GridFTP-style parallelism claims a
//!   proportionally larger share against competing traffic.
//! * **Cross traffic** ([`load`]): per-link stochastic competing weight —
//!   diurnal profile + mean-reverting random walk + heavy-tailed bursts.
//! * **Engine** ([`engine`]): agents (workload drivers, servers, probes)
//!   react to timers and flow completions in deterministic event order.
//!
//! ## Example
//!
//! ```
//! use wanpred_simnet::prelude::*;
//!
//! // Two sites joined by a 12 MB/s, 25 ms link.
//! let mut topo = Topology::new();
//! let anl = topo.add_node("anl");
//! let lbl = topo.add_node("lbl");
//! let (fwd, rev) = topo
//!     .add_duplex_link("anl-lbl", anl, lbl, 12e6, SimDuration::from_millis(25))
//!     .unwrap();
//! topo.add_route(anl, lbl, vec![fwd]).unwrap();
//! topo.add_route(lbl, anl, vec![rev]).unwrap();
//!
//! let net = Network::with_uniform_load(topo, LoadModelConfig::default(), MasterSeed(42));
//! let mut engine = Engine::new(net);
//! engine.run_until(SimTime::from_secs(3600));
//! assert_eq!(engine.now(), SimTime::from_secs(3600));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod fair;
pub mod fault;
pub mod flow;
pub mod index;
pub mod load;
pub mod network;
pub mod rng;
pub mod time;
pub mod topology;
pub mod trace;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::engine::{Agent, AgentId, Ctx, Engine, TimerTag};
    pub use crate::fault::{FaultAction, FaultConfig, FaultSchedule, TimedFault};
    pub use crate::flow::{FlowDone, FlowFailed, FlowId, FlowSpec, TcpParams};
    pub use crate::index::VecMap;
    pub use crate::load::{DiurnalProfile, LinkLoadModel, LoadModelConfig};
    pub use crate::network::Network;
    pub use crate::rng::MasterSeed;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{LinkId, NodeId, Topology, TopologyError};
    pub use crate::trace::{LinkSample, LinkTracer};
}
