//! Fixed-point simulation time.
//!
//! All simulator clocks are kept in integer **microseconds** so that event
//! ordering is exact and replays are bit-reproducible. Floating-point clocks
//! accumulate drift that makes two runs of the same seeded campaign diverge,
//! which would break the determinism contract tested throughout this
//! workspace.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulation clock, in microseconds since simulation
/// epoch (time zero of the run).
///
/// Campaign drivers map the simulation epoch to a wall-clock Unix timestamp
/// (see `wanpred-testbed`); within the simulator only relative time matters.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant, used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds since the simulation epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole seconds since the simulation epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite
    /// input: simulation time never runs backwards.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid sim time {s}");
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds since the simulation epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the simulation epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Seconds since the simulation epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`. Saturates at zero rather than
    /// panicking so callers comparing unordered instants get a sane span.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier` is after `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration, used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * MICROS_PER_SEC)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400 * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite
    /// input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True when this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float, rounding to the nearest
    /// microsecond. Used when scaling model intervals by random factors.
    pub fn mul_f64(self, k: f64) -> Self {
        assert!(k.is_finite() && k >= 0.0, "invalid scale {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("sim time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("sim time underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("sim time underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(1).as_secs(), 3_600);
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        let d = t - SimTime::from_secs(10);
        assert_eq!(d.as_micros(), 500_000);
        assert_eq!((d * 4).as_secs(), 2);
        assert_eq!((d / 5).as_micros(), 100_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a).as_secs(), 1);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn float_conversions_round() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        let t = SimTime::from_secs_f64(0.25);
        assert_eq!(t.as_micros(), 250_000);
    }

    #[test]
    fn mul_f64_rounds_to_nearest() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(0.26).as_micros(), 3);
        assert_eq!(d.mul_f64(0.0).as_micros(), 0);
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(5),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
