//! The discrete-event engine and agent model.
//!
//! Simulation logic lives in **agents** (workload drivers, servers,
//! probes). Agents react to three stimuli — simulation start, timers they
//! set, and completions of flows they started — and act through the
//! [`Ctx`] handle (set timers, start/abort flows, adjust caps). The engine
//! interleaves agent events with the fluid network's internally generated
//! events (background-load ticks, TCP slow-start window ramps, flow
//! completions) in global timestamp order.
//!
//! Determinism: ties in the event queue are broken by insertion sequence,
//! all randomness is owned by the agents/models themselves, and the fluid
//! network integrates exactly between events, so a run is a pure function
//! of `(topology, load configs, agents, seed)`.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use wanpred_obs::{names, ObsSink};

use crate::fault::{FaultAction, FaultSchedule};
use crate::flow::{FlowDone, FlowFailed, FlowId, FlowSpec};
use crate::network::Network;
use crate::time::{SimDuration, SimTime};
use crate::topology::TopologyError;
use crate::trace::LinkTracer;

/// Identifier of an agent registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub usize);

/// A caller-chosen tag distinguishing an agent's timers.
pub type TimerTag = u64;

/// Behaviour plugged into the engine.
///
/// All methods have empty defaults so simple agents implement only what
/// they need.
pub trait Agent {
    /// Called once when the simulation starts (time zero) or, for agents
    /// added mid-run, never — add agents before calling [`Engine::run_until`].
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: TimerTag) {}

    /// A flow started through [`Ctx::start_flow`] finished draining.
    fn on_flow_complete(&mut self, _ctx: &mut Ctx<'_>, _done: FlowDone) {}

    /// A flow started through [`Ctx::start_flow`] was torn down by an
    /// injected fault (connection reset) before completing. The default
    /// ignores the event — the flow is simply gone.
    fn on_flow_failed(&mut self, _ctx: &mut Ctx<'_>, _failed: FlowFailed) {}

    /// Downcasting support so drivers can retrieve results after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    LoadTick,
    Timer { agent: AgentId, tag: TimerTag },
    Ramp { flow: FlowId },
    Fault(FaultAction),
}

// Degradation factors are finite by construction (drawn from a bounded
// range), so the reflexive-equality marker is sound despite the f64.
impl Eq for EventKind {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The handle through which an agent acts on the simulation.
pub struct Ctx<'a> {
    now: SimTime,
    agent: AgentId,
    network: &'a mut Network,
    queue: &'a mut BinaryHeap<Reverse<Event>>,
    seq: &'a mut u64,
    flow_owner: &'a mut Vec<(FlowId, AgentId)>,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the agent being dispatched.
    pub fn agent_id(&self) -> AgentId {
        self.agent
    }

    /// Read access to the network (topology, link weights).
    pub fn network(&self) -> &Network {
        self.network
    }

    /// Arrange for [`Agent::on_timer`] to fire after `delay` with `tag`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        let ev = Event {
            at: self.now + delay,
            seq: bump(self.seq),
            kind: EventKind::Timer {
                agent: self.agent,
                tag,
            },
        };
        self.queue.push(Reverse(ev));
    }

    /// Start a flow owned by this agent; slow-start window-ramp events are
    /// scheduled automatically, one per RTT, until the window saturates.
    /// Completion is delivered to [`Agent::on_flow_complete`].
    pub fn start_flow(&mut self, spec: FlowSpec) -> Result<FlowId, TopologyError> {
        let id = self.network.start_flow(spec, self.now)?;
        let flow = self.network.flow(id).expect("just started");
        let rtt = flow.rtt;
        let steps = flow.ramp_steps();
        for k in 1..=steps {
            let ev = Event {
                at: self.now + rtt * u64::from(k),
                seq: bump(self.seq),
                kind: EventKind::Ramp { flow: id },
            };
            self.queue.push(Reverse(ev));
        }
        self.flow_owner.push((id, self.agent));
        Ok(id)
    }

    /// Sample the delivered fraction of an in-flight flow without
    /// disturbing it (progress monitoring). Integrates the fluid model to
    /// the current time first, so the answer is exact at `now`. Returns
    /// `None` if the flow already finished.
    pub fn flow_progress(&mut self, id: FlowId) -> Option<f64> {
        self.network.flow_progress(id, self.now)
    }

    /// Abort one of this agent's flows; returns delivered fraction, or
    /// `None` if the flow already finished.
    pub fn abort_flow(&mut self, id: FlowId) -> Option<f64> {
        let p = self.network.abort_flow(id, self.now);
        self.flow_owner.retain(|(f, _)| *f != id);
        p
    }

    /// Update the external (storage) rate cap on a flow.
    pub fn set_external_cap(&mut self, id: FlowId, cap: f64) {
        self.network.set_external_cap(id, cap, self.now);
    }
}

fn bump(seq: &mut u64) -> u64 {
    let s = *seq;
    *seq += 1;
    s
}

/// Per-`run_until` metric buffer: the event loop tallies into plain
/// integers and vecs, and one batched flush pays the sink's mutex once.
#[derive(Default)]
struct RunTally {
    events: u64,
    flows_completed: u64,
    load_ticks: u64,
    timers: u64,
    faults: u64,
    flow_durations: Vec<u64>,
    flow_bytes: Vec<u64>,
}

impl RunTally {
    fn flush(&mut self, obs: &ObsSink) {
        obs.inc_by(names::SIMNET_ENGINE_EVENTS, self.events);
        obs.inc_by(names::SIMNET_FLOWS_COMPLETED, self.flows_completed);
        obs.inc_by(names::SIMNET_ENGINE_LOAD_TICKS, self.load_ticks);
        obs.inc_by(names::SIMNET_ENGINE_TIMERS, self.timers);
        obs.inc_by(names::SIMNET_ENGINE_FAULTS, self.faults);
        obs.observe_many(names::SIMNET_FLOW_DURATION_US, &self.flow_durations);
        obs.observe_many(names::SIMNET_FLOW_BYTES, &self.flow_bytes);
    }
}

/// The simulation engine.
pub struct Engine {
    time: SimTime,
    network: Network,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    agents: Vec<Option<Box<dyn Agent>>>,
    flow_owner: Vec<(FlowId, AgentId)>,
    started: bool,
    tracer: Option<LinkTracer>,
    events_processed: u64,
    obs: ObsSink,
}

impl Engine {
    /// Create an engine over a network. The first background-load tick is
    /// scheduled immediately.
    pub fn new(network: Network) -> Self {
        let mut queue = BinaryHeap::new();
        let tick = network.load_tick();
        queue.push(Reverse(Event {
            at: SimTime::ZERO + tick,
            seq: 0,
            kind: EventKind::LoadTick,
        }));
        Engine {
            time: SimTime::ZERO,
            network,
            queue,
            seq: 1,
            agents: Vec::new(),
            flow_owner: Vec::new(),
            started: false,
            tracer: None,
            events_processed: 0,
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink. Scheduler-loop counters and flow
    /// outcome histograms are emitted through it; the default null sink
    /// makes each emission a single branch.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Register an agent. Must be called before the first `run_until`.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        assert!(!self.started, "add agents before running");
        let id = AgentId(self.agents.len());
        self.agents.push(Some(agent));
        id
    }

    /// Inject a fault schedule: every action is queued at its scheduled
    /// time and applied to the network (outages, degradations) or to the
    /// affected flows' owners (kills) as the run reaches it. May be
    /// called multiple times; schedules accumulate. Must be called
    /// before the events' times are reached to take effect.
    pub fn inject_faults(&mut self, schedule: &FaultSchedule) {
        for ev in schedule.events() {
            let e = Event {
                at: ev.at,
                seq: bump(&mut self.seq),
                kind: EventKind::Fault(ev.action),
            };
            self.queue.push(Reverse(e));
        }
    }

    /// Attach a link tracer sampling background weights on every load tick.
    pub fn set_tracer(&mut self, tracer: LinkTracer) {
        self.tracer = Some(tracer);
    }

    /// Detach and return the tracer.
    pub fn take_tracer(&mut self) -> Option<LinkTracer> {
        self.tracer.take()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Read access to the network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Total events processed so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Borrow a registered agent, downcast to its concrete type.
    pub fn agent<T: Agent + 'static>(&self, id: AgentId) -> Option<&T> {
        self.agents
            .get(id.0)?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutably borrow a registered agent, downcast to its concrete type.
    pub fn agent_mut<T: Agent + 'static>(&mut self, id: AgentId) -> Option<&mut T> {
        self.agents
            .get_mut(id.0)?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Run the simulation until `until` (inclusive of events at `until`).
    /// May be called repeatedly to advance in stages.
    pub fn run_until(&mut self, until: SimTime) {
        if !self.started {
            self.started = true;
            for i in 0..self.agents.len() {
                self.dispatch(AgentId(i), Dispatch::Start);
            }
        }
        // Hot-loop metrics are buffered locally and flushed in one batch
        // after the loop: a mutex acquisition per event would dominate the
        // sink's cost budget. Counters and histograms merge commutatively,
        // so deferred emission cannot change the exported snapshot.
        let mut tally = RunTally::default();
        loop {
            self.network.resolve();
            let next_event = self.queue.peek().map(|Reverse(e)| e.at);
            let next_done = self.network.next_completion();

            // Pick whichever happens first; events win ties so that load
            // ticks and ramps at time T are reflected in completions at T.
            let done_first = match (next_event, &next_done) {
                (Some(ev), Some((eta, _))) => eta < &ev,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };

            if done_first {
                let (eta, id) = next_done.expect("checked above");
                if eta > until {
                    break;
                }
                self.time = eta;
                let done = self.network.finish_flow(id, eta);
                self.events_processed += 1;
                tally.events += 1;
                tally.flows_completed += 1;
                if self.obs.is_enabled() {
                    tally
                        .flow_durations
                        .push(done.finished.saturating_since(done.started).as_micros());
                    tally.flow_bytes.push(done.bytes);
                }
                let owner = self
                    .flow_owner
                    .iter()
                    .find(|(f, _)| *f == id)
                    .map(|(_, a)| *a)
                    .expect("completed flow has an owner");
                self.flow_owner.retain(|(f, _)| *f != id);
                self.dispatch(owner, Dispatch::FlowDone(done));
            } else {
                let at = next_event.expect("checked above");
                if at > until {
                    break;
                }
                let Reverse(ev) = self.queue.pop().expect("peeked");
                self.time = ev.at;
                self.events_processed += 1;
                tally.events += 1;
                match ev.kind {
                    EventKind::LoadTick => {
                        tally.load_ticks += 1;
                        self.network.load_tick_to(ev.at);
                        if let Some(tr) = &mut self.tracer {
                            tr.sample(ev.at, &self.network);
                        }
                        let tick = self.network.load_tick();
                        self.queue.push(Reverse(Event {
                            at: ev.at + tick,
                            seq: bump(&mut self.seq),
                            kind: EventKind::LoadTick,
                        }));
                    }
                    EventKind::Ramp { flow } => {
                        self.network.ramp_flow_window(flow, ev.at);
                    }
                    EventKind::Timer { agent, tag } => {
                        tally.timers += 1;
                        self.dispatch(agent, Dispatch::Timer(tag));
                    }
                    EventKind::Fault(action) => {
                        tally.faults += 1;
                        self.apply_fault(action, ev.at);
                    }
                }
            }
        }
        if self.obs.is_enabled() {
            tally.flush(&self.obs);
        }
        // Settle the clock at the horizon so subsequent stages resume from
        // `until` even if the queue ran dry earlier.
        if self.time < until {
            self.time = until;
        }
    }

    fn apply_fault(&mut self, action: FaultAction, at: SimTime) {
        match action {
            FaultAction::LinkDown(l) => self.network.set_link_outage(l, true, at),
            FaultAction::LinkUp(l) => self.network.set_link_outage(l, false, at),
            FaultAction::DegradeStart(l, f) => self.network.set_link_degradation(l, f, at),
            FaultAction::DegradeEnd(l) => self.network.set_link_degradation(l, 1.0, at),
            FaultAction::KillFlows(l) => {
                // Deterministic victim order: ascending flow id.
                let victims = self.network.flows_on_link(l);
                for id in victims {
                    let Some(failed) = self.network.fail_flow(id, at) else {
                        continue;
                    };
                    self.obs.inc(names::SIMNET_FLOWS_FAILED);
                    let owner = self
                        .flow_owner
                        .iter()
                        .find(|(f, _)| *f == id)
                        .map(|(_, a)| *a);
                    self.flow_owner.retain(|(f, _)| *f != id);
                    if let Some(owner) = owner {
                        self.dispatch(owner, Dispatch::FlowFailed(failed));
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, id: AgentId, what: Dispatch) {
        let mut agent = self.agents[id.0].take().expect("agent re-entered");
        {
            let mut ctx = Ctx {
                now: self.time,
                agent: id,
                network: &mut self.network,
                queue: &mut self.queue,
                seq: &mut self.seq,
                flow_owner: &mut self.flow_owner,
            };
            match what {
                Dispatch::Start => agent.on_start(&mut ctx),
                Dispatch::Timer(tag) => agent.on_timer(&mut ctx, tag),
                Dispatch::FlowDone(done) => agent.on_flow_complete(&mut ctx, done),
                Dispatch::FlowFailed(failed) => agent.on_flow_failed(&mut ctx, failed),
            }
        }
        self.agents[id.0] = Some(agent);
    }
}

enum Dispatch {
    Start,
    Timer(TimerTag),
    FlowDone(FlowDone),
    FlowFailed(FlowFailed),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::TcpParams;
    use crate::load::LoadModelConfig;
    use crate::rng::MasterSeed;
    use crate::topology::{NodeId, Topology};

    fn quiet_cfg() -> LoadModelConfig {
        LoadModelConfig {
            diurnal_mean_weight: 0.0,
            walk_sigma: 0.0,
            burst_weight: 0.0,
            ..LoadModelConfig::default()
        }
    }

    fn net(capacity: f64) -> (Network, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let (fwd, rev) = t
            .add_duplex_link("ab", a, b, capacity, SimDuration::from_millis(25))
            .unwrap();
        t.add_route(a, b, vec![fwd]).unwrap();
        t.add_route(b, a, vec![rev]).unwrap();
        (
            Network::with_uniform_load(t, quiet_cfg(), MasterSeed(1)),
            a,
            b,
        )
    }

    /// Agent that starts one transfer at t=1s and records the completion.
    struct OneShot {
        from: NodeId,
        to: NodeId,
        bytes: u64,
        tcp: TcpParams,
        done: Option<FlowDone>,
    }

    impl Agent for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: TimerTag) {
            ctx.start_flow(FlowSpec::new(self.from, self.to, self.bytes, 1, self.tcp))
                .unwrap();
        }
        fn on_flow_complete(&mut self, _ctx: &mut Ctx<'_>, done: FlowDone) {
            self.done = Some(done);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn one_shot_transfer_completes_with_slow_start() {
        let (network, a, b) = net(1e8);
        let mut eng = Engine::new(network);
        let tcp = TcpParams::untuned(); // 16 KB buffer, 50 ms RTT
        let id = eng.add_agent(Box::new(OneShot {
            from: a,
            to: b,
            bytes: 64 * 1024,
            tcp,
            done: None,
        }));
        eng.run_until(SimTime::from_secs(120));
        let agent = eng.agent::<OneShot>(id).unwrap();
        let done = agent.done.as_ref().expect("transfer finished");
        assert_eq!(done.bytes, 64 * 1024);
        let secs = done.finished.saturating_since(done.started).as_secs_f64();
        // Slow start: 2.9k@58KB/s for 50ms... roughly 5-7 RTTs; the exact
        // fluid number: windows 2920,5840,11680,16384 bytes per RTT period.
        assert!(secs > 0.15 && secs < 0.6, "took {secs}s");
        // Mean rate well under the fully ramped 320 KB/s ceiling.
        assert!(done.mean_rate < 320_000.0, "rate {}", done.mean_rate);
    }

    #[test]
    fn large_transfer_approaches_window_ceiling() {
        let (network, a, b) = net(1e8);
        let mut eng = Engine::new(network);
        let id = eng.add_agent(Box::new(OneShot {
            from: a,
            to: b,
            bytes: 32 * 1024 * 1024,
            tcp: TcpParams::untuned(),
            done: None,
        }));
        eng.run_until(SimTime::from_secs(600));
        let done = eng.agent::<OneShot>(id).unwrap().done.clone().unwrap();
        // 32 MB at ~320 KB/s is ~105 s; slow start adds little.
        assert!(
            (done.mean_rate - 320_000.0).abs() < 15_000.0,
            "rate {}",
            done.mean_rate
        );
    }

    /// Agent that fires a sequence of timers and records their times.
    struct TimerChain {
        fired: Vec<(SimTime, TimerTag)>,
    }

    impl Agent for TimerChain {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_secs(5), 1);
            ctx.set_timer(SimDuration::from_secs(2), 2);
            ctx.set_timer(SimDuration::from_secs(2), 3);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
            self.fired.push((ctx.now(), tag));
            if tag == 1 {
                ctx.set_timer(SimDuration::from_secs(1), 4);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_in_order_with_fifo_ties() {
        let (network, ..) = net(1e6);
        let mut eng = Engine::new(network);
        let id = eng.add_agent(Box::new(TimerChain { fired: Vec::new() }));
        eng.run_until(SimTime::from_secs(10));
        let fired = &eng.agent::<TimerChain>(id).unwrap().fired;
        let tags: Vec<TimerTag> = fired.iter().map(|(_, t)| *t).collect();
        assert_eq!(tags, vec![2, 3, 1, 4]);
        assert_eq!(fired[0].0, SimTime::from_secs(2));
        assert_eq!(fired[2].0, SimTime::from_secs(5));
        assert_eq!(fired[3].0, SimTime::from_secs(6));
    }

    #[test]
    fn run_until_is_resumable() {
        let (network, ..) = net(1e6);
        let mut eng = Engine::new(network);
        let id = eng.add_agent(Box::new(TimerChain { fired: Vec::new() }));
        eng.run_until(SimTime::from_secs(3));
        assert_eq!(eng.agent::<TimerChain>(id).unwrap().fired.len(), 2);
        assert_eq!(eng.now(), SimTime::from_secs(3));
        eng.run_until(SimTime::from_secs(10));
        assert_eq!(eng.agent::<TimerChain>(id).unwrap().fired.len(), 4);
    }

    #[test]
    fn deterministic_replay_of_whole_engine() {
        fn run() -> Vec<(SimTime, TimerTag)> {
            let (network, a, b) = net(5e6);
            let mut eng = Engine::new(network);
            let t1 = eng.add_agent(Box::new(OneShot {
                from: a,
                to: b,
                bytes: 10_000_000,
                tcp: TcpParams::tuned_1mb(),
                done: None,
            }));
            let t2 = eng.add_agent(Box::new(TimerChain { fired: Vec::new() }));
            eng.run_until(SimTime::from_secs(60));
            let mut out = eng.agent::<TimerChain>(t2).unwrap().fired.clone();
            let d = eng.agent::<OneShot>(t1).unwrap().done.clone().unwrap();
            out.push((d.finished, 999));
            out
        }
        assert_eq!(run(), run());
    }

    /// Agent that starts one flow at t=0 and records both outcomes.
    struct Watcher {
        from: NodeId,
        to: NodeId,
        bytes: u64,
        done: Option<FlowDone>,
        failed: Option<FlowFailed>,
    }

    impl Agent for Watcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let tcp = TcpParams {
                buffer_bytes: 1 << 24,
                init_window: 1 << 24,
                mss: 1460,
            };
            ctx.start_flow(FlowSpec::new(self.from, self.to, self.bytes, 1, tcp))
                .unwrap();
        }
        fn on_flow_complete(&mut self, _ctx: &mut Ctx<'_>, done: FlowDone) {
            self.done = Some(done);
        }
        fn on_flow_failed(&mut self, _ctx: &mut Ctx<'_>, failed: FlowFailed) {
            self.failed = Some(failed);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn outage_window_delays_completion() {
        use crate::fault::{FaultAction, FaultSchedule, TimedFault};
        let (network, a, b) = net(1e6);
        let link = network.topology().route(a, b).unwrap().links[0];
        let mut eng = Engine::new(network);
        let id = eng.add_agent(Box::new(Watcher {
            from: a,
            to: b,
            bytes: 1_000_000,
            done: None,
            failed: None,
        }));
        // Down for [0.5s, 5.5s]: the 1s transfer stretches to ~6s.
        eng.inject_faults(&FaultSchedule::from_events(vec![
            TimedFault {
                at: SimTime::from_secs_f64(0.5),
                action: FaultAction::LinkDown(link),
            },
            TimedFault {
                at: SimTime::from_secs_f64(5.5),
                action: FaultAction::LinkUp(link),
            },
        ]));
        eng.run_until(SimTime::from_secs(30));
        let done = eng.agent::<Watcher>(id).unwrap().done.clone().unwrap();
        assert!(
            (done.finished.as_secs_f64() - 6.0).abs() < 0.01,
            "finished {}",
            done.finished
        );
    }

    #[test]
    fn kill_dispatches_on_flow_failed() {
        use crate::fault::{FaultAction, FaultSchedule, TimedFault};
        let (network, a, b) = net(1e6);
        let link = network.topology().route(a, b).unwrap().links[0];
        let mut eng = Engine::new(network);
        let id = eng.add_agent(Box::new(Watcher {
            from: a,
            to: b,
            bytes: 1_000_000,
            done: None,
            failed: None,
        }));
        eng.inject_faults(&FaultSchedule::from_events(vec![TimedFault {
            at: SimTime::from_secs_f64(0.25),
            action: FaultAction::KillFlows(link),
        }]));
        eng.run_until(SimTime::from_secs(30));
        let w = eng.agent::<Watcher>(id).unwrap();
        assert!(w.done.is_none(), "flow must not complete");
        let failed = w.failed.clone().expect("failure delivered");
        assert!((failed.delivered_fraction - 0.25).abs() < 1e-6);
        assert_eq!(failed.failed, SimTime::from_secs_f64(0.25));
        assert_eq!(eng.network().active_flows(), 0);
    }

    #[test]
    fn two_agents_share_the_link() {
        let (network, a, b) = net(2e6);
        let mut eng = Engine::new(network);
        let tcp = TcpParams {
            buffer_bytes: 1 << 24,
            init_window: 1 << 24,
            mss: 1460,
        };
        let mk = |bytes| {
            Box::new(OneShot {
                from: a,
                to: b,
                bytes,
                tcp,
                done: None,
            })
        };
        let i1 = eng.add_agent(mk(2_000_000));
        let i2 = eng.add_agent(mk(2_000_000));
        eng.run_until(SimTime::from_secs(30));
        let d1 = eng.agent::<OneShot>(i1).unwrap().done.clone().unwrap();
        let d2 = eng.agent::<OneShot>(i2).unwrap().done.clone().unwrap();
        // Both start at t=1, share 2 MB/s -> each ~1 MB/s -> done at t=3.
        assert!((d1.finished.as_secs_f64() - 3.0).abs() < 0.01, "{d1:?}");
        assert!((d2.finished.as_secs_f64() - 3.0).abs() < 0.01);
    }
}
