//! Link-state tracing for diagnostics and figure generation.
//!
//! A [`LinkTracer`] samples background weights and aggregate foreground
//! rate on every load tick; the testbed harness uses it to sanity-check
//! the cross-traffic calibration behind Figures 1–2.

use serde::{Deserialize, Serialize};

use crate::network::Network;
use crate::time::SimTime;
use crate::topology::LinkId;

/// One sample of a link's state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSample {
    /// Sample time.
    pub at: SimTime,
    /// Background competing weight at the sample time.
    pub weight: f64,
    /// Effective-capacity factor from fault injection: 1.0 healthy,
    /// `(0, 1)` degraded, 0.0 while the link is out.
    pub capacity_factor: f64,
}

/// Records per-link background-weight samples over a run.
#[derive(Debug, Default)]
pub struct LinkTracer {
    links: Vec<LinkId>,
    samples: Vec<Vec<LinkSample>>,
}

impl LinkTracer {
    /// Trace the given links.
    pub fn new(links: Vec<LinkId>) -> Self {
        let samples = links.iter().map(|_| Vec::new()).collect();
        LinkTracer { links, samples }
    }

    /// Record a sample for every traced link (called by the engine on
    /// load ticks).
    pub fn sample(&mut self, at: SimTime, net: &Network) {
        for (i, &l) in self.links.iter().enumerate() {
            self.samples[i].push(LinkSample {
                at,
                weight: net.link_weight(l),
                capacity_factor: net.link_capacity_factor(l),
            });
        }
    }

    /// Samples collected for a link, if traced.
    pub fn samples(&self, link: LinkId) -> Option<&[LinkSample]> {
        let i = self.links.iter().position(|&l| l == link)?;
        Some(&self.samples[i])
    }

    /// Summary statistics `(min, mean, max)` of the traced weight.
    pub fn weight_stats(&self, link: LinkId) -> Option<(f64, f64, f64)> {
        let s = self.samples(link)?;
        if s.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for x in s {
            min = min.min(x.weight);
            max = max.max(x.weight);
            sum += x.weight;
        }
        Some((min, sum / s.len() as f64, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::load::LoadModelConfig;
    use crate::network::Network;
    use crate::rng::MasterSeed;
    use crate::time::SimDuration;
    use crate::topology::Topology;

    #[test]
    fn tracer_collects_samples_on_ticks() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t
            .add_link("ab", a, b, 1e6, SimDuration::from_millis(10))
            .unwrap();
        t.add_route(a, b, vec![l]).unwrap();
        let net = Network::with_uniform_load(t, LoadModelConfig::default(), MasterSeed(5));
        let tick = net.load_tick();
        let mut eng = Engine::new(net);
        eng.set_tracer(LinkTracer::new(vec![l]));
        eng.run_until(SimTime::ZERO + tick * 10);
        let tracer = eng.take_tracer().unwrap();
        let samples = tracer.samples(l).unwrap();
        assert_eq!(samples.len(), 10);
        let (min, mean, max) = tracer.weight_stats(l).unwrap();
        assert!(min <= mean && mean <= max);
        assert!(min >= 0.0);
    }

    #[test]
    fn untraced_link_returns_none() {
        let tracer = LinkTracer::new(vec![LinkId(0)]);
        assert!(tracer.samples(LinkId(7)).is_none());
        assert!(tracer.weight_stats(LinkId(0)).is_none()); // no samples yet
    }
}
