//! Weighted max-min fair bandwidth allocation with per-flow rate caps.
//!
//! The fluid model assigns every active flow a transmission rate by
//! **weighted progressive filling**: conceptually, every flow's rate rises
//! proportionally to its weight until either (a) some link it traverses is
//! saturated, freezing every flow crossing that link, or (b) the flow hits
//! its own rate cap (TCP window limit or storage-system limit). This is the
//! classical fluid approximation of TCP fair sharing; a GridFTP transfer
//! with `n` parallel streams is a flow of weight `n`, and background cross
//! traffic on a link is a pseudo-flow whose weight comes from the link's
//! [`crate::load::LinkLoadModel`].
//!
//! The solver is exact (no iteration-to-convergence): each round freezes at
//! least one flow or saturates at least one link, so it terminates in at
//! most `flows + links` rounds.

/// One flow presented to the solver.
#[derive(Debug, Clone)]
pub struct FairFlow {
    /// Relative weight (e.g. number of parallel TCP streams). Must be > 0.
    pub weight: f64,
    /// Upper bound on the flow's rate in bytes/sec (window limit, storage
    /// limit). Use `f64::INFINITY` for uncapped flows.
    pub cap: f64,
    /// Indices (into the solver's link array) of the links this flow
    /// traverses.
    pub links: Vec<usize>,
}

/// Solve the weighted max-min allocation.
///
/// `link_capacity[l]` is the capacity of link `l` in bytes/sec. Returns the
/// allocated rate for each flow, in input order.
///
/// # Panics
/// Panics if any weight is non-positive, any capacity is non-positive, or a
/// flow references an out-of-range link.
pub fn solve(link_capacity: &[f64], flows: &[FairFlow]) -> Vec<f64> {
    for f in flows {
        assert!(f.weight > 0.0 && f.weight.is_finite(), "bad weight");
        assert!(f.cap >= 0.0, "bad cap");
        for &l in &f.links {
            assert!(l < link_capacity.len(), "flow references unknown link");
        }
    }
    for &c in link_capacity {
        assert!(c > 0.0 && c.is_finite(), "bad link capacity");
    }

    let n = flows.len();
    let mut rate = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    // Remaining capacity per link after subtracting frozen flows.
    let mut remaining: Vec<f64> = link_capacity.to_vec();
    // Sum of active weights per link.
    let mut active_weight = vec![0.0f64; link_capacity.len()];
    for f in flows {
        for &l in &f.links {
            active_weight[l] += f.weight;
        }
    }

    // Flows with a zero cap freeze immediately at rate 0.
    for (i, f) in flows.iter().enumerate() {
        // tidy: allow(float-eq): caps are set to exactly 0.0 to freeze a flow; no arithmetic precedes this
        if f.cap == 0.0 {
            frozen[i] = true;
            for &l in &f.links {
                active_weight[l] -= f.weight;
            }
        }
    }

    let mut active_count = frozen.iter().filter(|f| !**f).count();
    // Global fill level: every active flow currently has rate weight * t.
    let mut t = 0.0f64;

    while active_count > 0 {
        // Next level at which a link saturates.
        let mut t_next = f64::INFINITY;
        for (l, &cap) in link_capacity.iter().enumerate() {
            let _ = cap;
            if active_weight[l] > 1e-12 {
                let tl = t + (remaining[l] - active_weight[l] * t).max(0.0) / active_weight[l];
                // remaining[l] already excludes frozen flows; active flows
                // currently consume active_weight[l] * t of it.
                t_next = t_next.min(tl);
            }
        }
        // Next level at which an active flow hits its cap.
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] && f.cap.is_finite() {
                t_next = t_next.min(f.cap / f.weight);
            }
        }
        if !t_next.is_finite() {
            // No constraint binds the remaining flows (cannot happen if
            // every flow traverses at least one link, which Network
            // guarantees). Freeze at current level defensively.
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    rate[i] = f.weight * t;
                    frozen[i] = true;
                }
            }
            break;
        }

        t = t_next.max(t);

        // Freeze flows that hit their cap at this level.
        let mut newly_frozen = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] && f.cap.is_finite() && f.cap / f.weight <= t + 1e-12 {
                newly_frozen.push((i, f.cap));
            }
        }
        // Freeze flows on links saturated at this level.
        for (l, &cap) in link_capacity.iter().enumerate() {
            let _ = cap;
            if active_weight[l] > 1e-12 {
                let used_if = active_weight[l] * t;
                if used_if + 1e-9 * link_capacity[l] >= remaining[l] {
                    for (i, f) in flows.iter().enumerate() {
                        if !frozen[i] && f.links.contains(&l) {
                            let r = f.weight * t;
                            if !newly_frozen.iter().any(|(j, _)| *j == i) {
                                newly_frozen.push((i, r));
                            }
                        }
                    }
                }
            }
        }
        if newly_frozen.is_empty() {
            // Numerical corner: force-freeze the flow closest to its
            // constraint to guarantee progress.
            let mut best: Option<(usize, f64)> = None;
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    let r = (f.weight * t).min(f.cap);
                    if best.is_none() {
                        best = Some((i, r));
                    }
                }
            }
            if let Some(b) = best {
                newly_frozen.push(b);
            }
        }
        for (i, r) in newly_frozen {
            if frozen[i] {
                continue;
            }
            frozen[i] = true;
            active_count -= 1;
            rate[i] = r.min(flows[i].cap);
            for &l in &flows[i].links {
                active_weight[l] -= flows[i].weight;
                remaining[l] -= rate[i];
                if remaining[l] < 0.0 {
                    remaining[l] = 0.0;
                }
            }
        }
    }

    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(weight: f64, cap: f64, links: &[usize]) -> FairFlow {
        FairFlow {
            weight,
            cap,
            links: links.to_vec(),
        }
    }

    #[test]
    fn single_flow_gets_link_capacity() {
        let r = solve(&[10.0], &[flow(1.0, f64::INFINITY, &[0])]);
        assert!((r[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_flow_respects_cap() {
        let r = solve(&[10.0], &[flow(1.0, 3.0, &[0])]);
        assert!((r[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn equal_weights_split_evenly() {
        let r = solve(
            &[12.0],
            &[
                flow(1.0, f64::INFINITY, &[0]),
                flow(1.0, f64::INFINITY, &[0]),
                flow(1.0, f64::INFINITY, &[0]),
            ],
        );
        for x in r {
            assert!((x - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn weights_bias_the_split() {
        // 8-stream transfer vs background weight 4 on a 12 MB/s link:
        // transfer gets 8/12 of capacity = 8 MB/s.
        let r = solve(
            &[12e6],
            &[
                flow(8.0, f64::INFINITY, &[0]),
                flow(4.0, f64::INFINITY, &[0]),
            ],
        );
        assert!((r[0] - 8e6).abs() < 1.0, "{r:?}");
        assert!((r[1] - 4e6).abs() < 1.0);
    }

    #[test]
    fn capped_flow_releases_capacity_to_others() {
        // Flow 0 capped at 2; flow 1 picks up the rest.
        let r = solve(
            &[12.0],
            &[flow(1.0, 2.0, &[0]), flow(1.0, f64::INFINITY, &[0])],
        );
        assert!((r[0] - 2.0).abs() < 1e-9);
        assert!((r[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn multi_link_bottleneck() {
        // Flow crosses links of capacity 10 and 4: bottlenecked at 4.
        let r = solve(&[10.0, 4.0], &[flow(1.0, f64::INFINITY, &[0, 1])]);
        assert!((r[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn classic_max_min_example() {
        // Two links cap 10. Flow A crosses both; flows B and C cross one
        // each. Max-min: A=5, B=5, C=5.
        let r = solve(
            &[10.0, 10.0],
            &[
                flow(1.0, f64::INFINITY, &[0, 1]),
                flow(1.0, f64::INFINITY, &[0]),
                flow(1.0, f64::INFINITY, &[1]),
            ],
        );
        assert!((r[0] - 5.0).abs() < 1e-9, "{r:?}");
        assert!((r[1] - 5.0).abs() < 1e-9);
        assert!((r[2] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_freeing_raises_others() {
        // Link 0 cap 6 shared by A (weight 1, also crosses link 1) and B.
        // Link 1 cap 100 shared by A and C. A and B freeze at 3 on link 0,
        // C then gets 97.
        let r = solve(
            &[6.0, 100.0],
            &[
                flow(1.0, f64::INFINITY, &[0, 1]),
                flow(1.0, f64::INFINITY, &[0]),
                flow(1.0, f64::INFINITY, &[1]),
            ],
        );
        assert!((r[0] - 3.0).abs() < 1e-9, "{r:?}");
        assert!((r[1] - 3.0).abs() < 1e-9);
        assert!((r[2] - 97.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cap_flow_gets_zero() {
        let r = solve(
            &[10.0],
            &[flow(1.0, 0.0, &[0]), flow(1.0, f64::INFINITY, &[0])],
        );
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert!(solve(&[10.0], &[]).is_empty());
        let r = solve(&[], &[]);
        assert!(r.is_empty());
    }

    #[test]
    fn no_link_overcommitted_stress() {
        // Random-ish deterministic configuration; verify feasibility and
        // work conservation on the bottleneck.
        let caps = [5.0, 7.0, 3.0, 11.0];
        let flows = vec![
            flow(2.0, 4.0, &[0, 1]),
            flow(1.0, f64::INFINITY, &[1, 2]),
            flow(3.0, 6.5, &[2, 3]),
            flow(1.5, f64::INFINITY, &[0, 3]),
            flow(8.0, f64::INFINITY, &[1]),
        ];
        let r = solve(&caps, &flows);
        let mut used = [0.0f64; 4];
        for (f, &rt) in flows.iter().zip(&r) {
            assert!(rt >= 0.0 && rt <= f.cap + 1e-9);
            for &l in &f.links {
                used[l] += rt;
            }
        }
        for (l, &u) in used.iter().enumerate() {
            assert!(u <= caps[l] + 1e-6, "link {l} overcommitted: {u}");
        }
    }
}
