//! Property-based tests for the weighted max-min fair allocator.
//!
//! Invariants checked on random configurations:
//! 1. Feasibility: no link is allocated beyond its capacity.
//! 2. Cap respect: no flow exceeds its own rate cap.
//! 3. Non-negativity of every rate.
//! 4. Work conservation: on every bottleneck link, unused capacity implies
//!    every flow crossing it is limited elsewhere (cap or another link).
//! 5. Weighted fairness: two flows sharing identical routes and both
//!    bottlenecked there get rates proportional to their weights.

use proptest::prelude::*;
use wanpred_simnet::fair::{solve, FairFlow};

fn arb_config() -> impl Strategy<Value = (Vec<f64>, Vec<FairFlow>)> {
    // 1..=5 links, 1..=8 flows each over a random non-empty link subset.
    let links = prop::collection::vec(1.0f64..1e9, 1..=5);
    links.prop_flat_map(|caps| {
        let n_links = caps.len();
        let flow = (
            0.5f64..16.0,                  // weight
            prop::option::of(1.0f64..2e9), // cap (None = inf)
            prop::collection::btree_set(0..n_links, 1..=n_links),
        )
            .prop_map(|(weight, cap, links)| FairFlow {
                weight,
                cap: cap.unwrap_or(f64::INFINITY),
                links: links.into_iter().collect(),
            });
        (Just(caps), prop::collection::vec(flow, 1..=8))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn allocation_is_feasible_and_work_conserving((caps, flows) in arb_config()) {
        let rates = solve(&caps, &flows);
        prop_assert_eq!(rates.len(), flows.len());

        // (3) non-negative, (2) cap respect
        for (f, &r) in flows.iter().zip(&rates) {
            prop_assert!(r >= 0.0, "negative rate {}", r);
            prop_assert!(r <= f.cap * (1.0 + 1e-9) + 1e-9, "rate {} over cap {}", r, f.cap);
        }

        // (1) feasibility per link
        let mut used = vec![0.0f64; caps.len()];
        for (f, &r) in flows.iter().zip(&rates) {
            for &l in &f.links {
                used[l] += r;
            }
        }
        for (l, (&u, &c)) in used.iter().zip(&caps).enumerate() {
            prop_assert!(u <= c * (1.0 + 1e-6) + 1e-6, "link {} over: {} > {}", l, u, c);
        }

        // (4) work conservation: if a flow is strictly below its cap and
        // below its weighted share on *every* link it crosses, some link it
        // crosses must be (numerically) saturated. Weaker practical check:
        // every flow is either at cap or crosses at least one nearly
        // saturated link.
        for (f, &r) in flows.iter().zip(&rates) {
            if f.cap.is_finite() && r >= f.cap * (1.0 - 1e-6) {
                continue; // cap-limited
            }
            let saturated = f.links.iter().any(|&l| used[l] >= caps[l] * (1.0 - 1e-6));
            prop_assert!(saturated, "flow under cap but no saturated link (r={}, cap={})", r, f.cap);
        }
    }

    #[test]
    fn identical_route_rates_proportional_to_weights(
        cap in 10.0f64..1e6,
        w1 in 0.5f64..8.0,
        w2 in 0.5f64..8.0,
    ) {
        let flows = vec![
            FairFlow { weight: w1, cap: f64::INFINITY, links: vec![0] },
            FairFlow { weight: w2, cap: f64::INFINITY, links: vec![0] },
        ];
        let r = solve(&[cap], &flows);
        // Both bottlenecked on the same single link: exact proportionality
        // and full utilization.
        prop_assert!((r[0] + r[1] - cap).abs() < cap * 1e-9);
        prop_assert!((r[0] / r[1] - w1 / w2).abs() < 1e-6, "{:?} vs {}/{}", r, w1, w2);
    }

    #[test]
    fn adding_a_competitor_never_helps(
        cap in 10.0f64..1e6,
        w in 0.5f64..8.0,
        wc in 0.5f64..8.0,
    ) {
        let alone = solve(&[cap], &[FairFlow { weight: w, cap: f64::INFINITY, links: vec![0] }]);
        let shared = solve(&[cap], &[
            FairFlow { weight: w, cap: f64::INFINITY, links: vec![0] },
            FairFlow { weight: wc, cap: f64::INFINITY, links: vec![0] },
        ]);
        prop_assert!(shared[0] <= alone[0] * (1.0 + 1e-9));
    }

    #[test]
    fn tightening_a_cap_never_raises_own_rate(
        cap in 10.0f64..1e6,
        flow_cap in 1.0f64..1e6,
    ) {
        let loose = solve(&[cap], &[FairFlow { weight: 1.0, cap: f64::INFINITY, links: vec![0] }]);
        let tight = solve(&[cap], &[FairFlow { weight: 1.0, cap: flow_cap, links: vec![0] }]);
        prop_assert!(tight[0] <= loose[0] * (1.0 + 1e-9));
        prop_assert!((tight[0] - flow_cap.min(cap)).abs() < 1e-6);
    }
}
