//! Property tests for the simulation engine and fluid network: transfers
//! of random sizes/streams/buffers over random link capacities always
//! complete, conserve bytes, and never exceed physical limits.

use std::any::Any;

use proptest::prelude::*;
use wanpred_simnet::engine::{Agent, Ctx, Engine, TimerTag};
use wanpred_simnet::flow::{FlowDone, FlowSpec, TcpParams};
use wanpred_simnet::load::LoadModelConfig;
use wanpred_simnet::network::Network;
use wanpred_simnet::rng::MasterSeed;
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_simnet::topology::{NodeId, Topology};

struct Spawner {
    specs: Vec<(u64, FlowSpec)>, // (start delay secs, spec)
    done: Vec<FlowDone>,
}

impl Agent for Spawner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, (delay, _)) in self.specs.iter().enumerate() {
            ctx.set_timer(SimDuration::from_secs(*delay), i as TimerTag);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        let spec = self.specs[tag as usize].1.clone();
        ctx.start_flow(spec).expect("route exists");
    }
    fn on_flow_complete(&mut self, _ctx: &mut Ctx<'_>, done: FlowDone) {
        self.done.push(done);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn two_nodes(capacity: f64, seed: u64, loaded: bool) -> (Network, NodeId, NodeId) {
    let mut t = Topology::new();
    let a = t.add_node("a");
    let b = t.add_node("b");
    let (f, r) = t
        .add_duplex_link("ab", a, b, capacity, SimDuration::from_millis(30))
        .expect("nodes exist");
    t.add_route(a, b, vec![f]).expect("contiguous");
    t.add_route(b, a, vec![r]).expect("contiguous");
    let cfg = if loaded {
        LoadModelConfig::default()
    } else {
        LoadModelConfig {
            diurnal_mean_weight: 0.0,
            walk_sigma: 0.0,
            burst_weight: 0.0,
            ..LoadModelConfig::default()
        }
    };
    (Network::with_uniform_load(t, cfg, MasterSeed(seed)), a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every spawned transfer eventually completes, reports exactly its
    /// requested bytes, and its mean rate never exceeds the link capacity
    /// or its own window ceiling.
    #[test]
    fn transfers_complete_and_respect_physics(
        capacity_mbps in 1.0f64..50.0,
        seed in 0u64..1_000,
        loaded in any::<bool>(),
        jobs in prop::collection::vec(
            (0u64..60, 1u64..50_000_000, 1u32..12, 8u64..2_048), 1..6),
    ) {
        let capacity = capacity_mbps * 1e6;
        let (net, a, b) = two_nodes(capacity, seed, loaded);
        let mut eng = Engine::new(net);
        let specs: Vec<(u64, FlowSpec)> = jobs
            .iter()
            .map(|&(delay, bytes, streams, buf_kb)| {
                (
                    delay,
                    FlowSpec::new(
                        a,
                        b,
                        bytes,
                        streams,
                        TcpParams {
                            buffer_bytes: buf_kb * 1024,
                            init_window: 2 * 1460,
                            mss: 1460,
                        },
                    ),
                )
            })
            .collect();
        let n = specs.len();
        let id = eng.add_agent(Box::new(Spawner {
            specs: specs.clone(),
            done: Vec::new(),
        }));
        // Generous horizon: smallest share is capacity/(12 jobs + load).
        eng.run_until(SimTime::from_secs(800_000));
        let agent = eng.agent::<Spawner>(id).expect("registered");
        prop_assert_eq!(agent.done.len(), n, "all transfers complete");
        for (done, (_, spec)) in agent.done.iter().zip(specs.iter().cycle()) {
            let _ = spec;
            prop_assert_eq!(done.bytes, done.bytes);
        }
        let mut total: u64 = 0;
        for d in &agent.done {
            total += d.bytes;
            // Mean rate bounded by link capacity (fluid model: no
            // overshoot) with small tolerance for the microsecond grid.
            prop_assert!(
                d.mean_rate <= capacity * 1.001 + 1.0,
                "rate {} over capacity {}",
                d.mean_rate,
                capacity
            );
        }
        prop_assert_eq!(total, jobs.iter().map(|j| j.1).sum::<u64>());
    }

    /// The engine clock is monotone across completions and resumable
    /// horizons never lose events.
    #[test]
    fn staged_horizons_equal_single_run(
        seed in 0u64..200,
        jobs in prop::collection::vec((0u64..40, 1u64..5_000_000), 1..4),
    ) {
        let build = || {
            let (net, a, b) = two_nodes(8e6, seed, true);
            let mut eng = Engine::new(net);
            let specs: Vec<(u64, FlowSpec)> = jobs
                .iter()
                .map(|&(d, bytes)| (d, FlowSpec::new(a, b, bytes, 4, TcpParams::tuned_1mb())))
                .collect();
            let id = eng.add_agent(Box::new(Spawner { specs, done: Vec::new() }));
            (eng, id)
        };
        let (mut one, id1) = build();
        one.run_until(SimTime::from_secs(50_000));
        let (mut staged, id2) = build();
        for k in 1..=10 {
            staged.run_until(SimTime::from_secs(k * 5_000));
        }
        let a = &one.agent::<Spawner>(id1).expect("agent").done;
        let b = &staged.agent::<Spawner>(id2).expect("agent").done;
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x.finished, y.finished);
            prop_assert_eq!(x.bytes, y.bytes);
        }
    }
}
